//! Baseline policies from the paper's evaluation (§V-A-3) and extra
//! ablations.
//!
//! * **Myopic-Fixed (MF)** — splits the budget evenly: every slot may
//!   spend `C/T`, unused allowance is wasted.
//! * **Myopic-Adaptive (MA)** — re-spreads what is left:
//!   `b_t = (C − spent)/(T − t)`.
//!
//! Both solve the same per-slot problem as OSCAR but with the plain
//! log-utility objective (no queue price) and the slot budget as a hard
//! packing constraint; allocation is greedy (with a budget cap, greedy
//! marginal-gain allocation is the natural myopic optimizer).
//!
//! [`MinimalRandomPolicy`] (random route, one channel per edge) is an
//! extra lower-bound ablation not in the paper.

use qdn_net::routes::{CandidateRoutes, RouteLimits};
use qdn_net::QdnNetwork;
use serde::{Deserialize, Serialize};

use crate::allocation::AllocationMethod;
use crate::engine::{decide, EngineState, SlotDecisionRequest};
use crate::policy::{PolicyDiagnostics, RoutingPolicy};
use crate::problem::PerSlotContext;
use crate::route_selection::RouteSelector;
use crate::types::{Decision, SlotState};

/// How a myopic policy splits the total budget across slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetSplit {
    /// `b_t = C/T` (Myopic-Fixed).
    Fixed,
    /// `b_t = (C − spent)/(T − t)` (Myopic-Adaptive).
    Adaptive,
}

/// Configuration of a myopic baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MyopicConfig {
    /// Budget split mode.
    pub split: BudgetSplit,
    /// Total budget `C`.
    pub total_budget: f64,
    /// Horizon `T`.
    pub horizon: u64,
    /// Candidate route limits.
    pub route_limits: RouteLimits,
    /// Route-selection strategy (same default as OSCAR for a fair
    /// comparison).
    pub selector: RouteSelector,
    /// Optional end-to-end fidelity target (§III-C extension), applied
    /// identically to OSCAR's so comparisons stay fair.
    pub fidelity_target: Option<f64>,
}

impl MyopicConfig {
    /// Paper defaults with the chosen split.
    pub fn paper_default(split: BudgetSplit) -> Self {
        MyopicConfig {
            split,
            total_budget: 5000.0,
            horizon: 200,
            route_limits: RouteLimits::paper_default(),
            selector: RouteSelector::default(),
            fidelity_target: None,
        }
    }

    /// Returns a copy with a different budget (Fig. 5 sweep).
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.total_budget = budget;
        self
    }
}

/// The MF/MA baseline policy.
#[derive(Debug)]
pub struct MyopicPolicy {
    config: MyopicConfig,
    state: EngineState,
    spent: u64,
}

impl MyopicPolicy {
    /// Creates the policy.
    pub fn new(config: MyopicConfig) -> Self {
        let state = EngineState::new(config.route_limits);
        MyopicPolicy {
            config,
            state,
            spent: 0,
        }
    }

    /// Myopic-Fixed with paper defaults.
    pub fn fixed() -> Self {
        Self::new(MyopicConfig::paper_default(BudgetSplit::Fixed))
    }

    /// Myopic-Adaptive with paper defaults.
    pub fn adaptive() -> Self {
        Self::new(MyopicConfig::paper_default(BudgetSplit::Adaptive))
    }

    /// Budget units spent so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// This slot's spending allowance `b_t`.
    fn slot_budget(&self, t: u64) -> u64 {
        let remaining = (self.config.total_budget - self.spent as f64).max(0.0);
        match self.config.split {
            BudgetSplit::Fixed => {
                let per_slot = self.config.total_budget / self.config.horizon as f64;
                per_slot.floor().min(remaining) as u64
            }
            BudgetSplit::Adaptive => {
                let slots_left = self.config.horizon.saturating_sub(t).max(1);
                (remaining / slots_left as f64).floor() as u64
            }
        }
    }
}

impl RoutingPolicy for MyopicPolicy {
    fn name(&self) -> String {
        match self.config.split {
            BudgetSplit::Fixed => "MF".into(),
            BudgetSplit::Adaptive => "MA".into(),
        }
    }

    fn decide(
        &mut self,
        network: &QdnNetwork,
        slot: &SlotState,
        rng: &mut dyn rand::Rng,
    ) -> Decision {
        let budget = self.slot_budget(slot.t());
        let ctx = PerSlotContext::myopic(network, slot.snapshot(), budget);
        let decision = decide(
            &mut self.state,
            SlotDecisionRequest {
                network,
                requests: slot.requests(),
                ctx: &ctx,
                selector: &self.config.selector,
                allocation: &AllocationMethod::Greedy,
                fidelity_target: self.config.fidelity_target,
                rng,
            },
        );
        self.spent += decision.total_cost();
        decision
    }

    fn reset(&mut self) {
        self.spent = 0;
        self.state.reset();
    }

    fn diagnostics(&self) -> PolicyDiagnostics {
        PolicyDiagnostics {
            virtual_queue: None,
            budget_spent: Some(self.spent),
            churn: Some(self.state.churn_diagnostics()),
        }
    }
}

/// Lower-bound ablation: a uniformly random candidate route and the
/// minimum one channel per edge.
#[derive(Debug)]
pub struct MinimalRandomPolicy {
    state: EngineState,
    spent: u64,
}

impl MinimalRandomPolicy {
    /// Creates the policy with the given route limits.
    pub fn new(route_limits: RouteLimits) -> Self {
        MinimalRandomPolicy {
            state: EngineState::new(route_limits),
            spent: 0,
        }
    }
}

impl Default for MinimalRandomPolicy {
    fn default() -> Self {
        Self::new(RouteLimits::paper_default())
    }
}

impl RoutingPolicy for MinimalRandomPolicy {
    fn name(&self) -> String {
        "Random-Min".into()
    }

    fn decide(
        &mut self,
        network: &QdnNetwork,
        slot: &SlotState,
        rng: &mut dyn rand::Rng,
    ) -> Decision {
        let ctx = PerSlotContext::oscar(network, slot.snapshot(), 1.0, 0.0);
        let decision = decide(
            &mut self.state,
            SlotDecisionRequest {
                network,
                requests: slot.requests(),
                ctx: &ctx,
                selector: &RouteSelector::Random,
                allocation: &AllocationMethod::Minimal,
                fidelity_target: None,
                rng,
            },
        );
        self.spent += decision.total_cost();
        decision
    }

    fn reset(&mut self) {
        self.spent = 0;
        self.state.reset();
    }

    fn diagnostics(&self) -> PolicyDiagnostics {
        PolicyDiagnostics {
            virtual_queue: None,
            budget_spent: Some(self.spent),
            churn: Some(self.state.churn_diagnostics()),
        }
    }
}

/// An offline "hindsight" baseline: given the *entire* request trace in
/// advance, split the budget across slots in proportion to each slot's
/// mandatory cost (the hop count of every request's shortest candidate
/// route), then solve each slot myopically under that pre-planned budget.
///
/// This approximates the offline optimum `OPT` of Theorem 2 — it knows
/// the whole workload, which no online policy can — and is used by the
/// test suite to measure OSCAR's empirical optimality gap. Not part of
/// the paper's evaluation.
#[derive(Debug)]
pub struct OraclePolicy {
    slot_budgets: Vec<u64>,
    state: EngineState,
    selector: RouteSelector,
    spent: u64,
}

impl OraclePolicy {
    /// Plans per-slot budgets from a known request trace.
    ///
    /// Slot `t`'s weight is `Σ_φ hops(shortest route of φ)` — its minimum
    /// possible spend; the budget is distributed proportionally (floored,
    /// with the remainder given to the heaviest slots), so heavier slots
    /// get proportionally more room exactly where a myopic split wastes
    /// or starves.
    pub fn plan(
        network: &qdn_net::QdnNetwork,
        trace: &[Vec<qdn_net::SdPair>],
        total_budget: f64,
        route_limits: RouteLimits,
        selector: RouteSelector,
    ) -> Self {
        let mut routes = CandidateRoutes::new(route_limits);
        let weights: Vec<u64> = trace
            .iter()
            .map(|requests| {
                requests
                    .iter()
                    .map(|&p| {
                        routes
                            .routes(network, p)
                            .first()
                            .map_or(0, |r| r.hops() as u64)
                    })
                    .sum()
            })
            .collect();
        let total_weight: u64 = weights.iter().sum();
        let mut slot_budgets: Vec<u64> = if total_weight == 0 {
            vec![0; trace.len()]
        } else {
            weights
                .iter()
                .map(|&w| ((total_budget * w as f64) / total_weight as f64).floor() as u64)
                .collect()
        };
        // Hand the flooring remainder to the heaviest slots, one unit each.
        let assigned: u64 = slot_budgets.iter().sum();
        let mut remainder = (total_budget.floor() as u64).saturating_sub(assigned);
        let mut order: Vec<usize> = (0..trace.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
        if !order.is_empty() && total_weight > 0 {
            let mut cursor = 0usize;
            while remainder > 0 {
                slot_budgets[order[cursor % order.len()]] += 1;
                cursor += 1;
                remainder -= 1;
            }
        }
        OraclePolicy {
            slot_budgets,
            // Keep the candidates warmed during planning.
            state: EngineState::with_routes(routes),
            selector,
            spent: 0,
        }
    }

    /// The pre-planned budget of slot `t` (0 past the planned horizon).
    pub fn slot_budget(&self, t: u64) -> u64 {
        self.slot_budgets.get(t as usize).copied().unwrap_or(0)
    }
}

impl RoutingPolicy for OraclePolicy {
    fn name(&self) -> String {
        "Oracle".into()
    }

    fn decide(
        &mut self,
        network: &QdnNetwork,
        slot: &SlotState,
        rng: &mut dyn rand::Rng,
    ) -> Decision {
        let budget = self.slot_budget(slot.t());
        let ctx = PerSlotContext::myopic(network, slot.snapshot(), budget);
        let decision = decide(
            &mut self.state,
            SlotDecisionRequest {
                network,
                requests: slot.requests(),
                ctx: &ctx,
                selector: &self.selector,
                allocation: &AllocationMethod::Greedy,
                fidelity_target: None,
                rng,
            },
        );
        self.spent += decision.total_cost();
        decision
    }

    fn reset(&mut self) {
        self.spent = 0;
        self.state.reset();
    }

    fn diagnostics(&self) -> PolicyDiagnostics {
        PolicyDiagnostics {
            virtual_queue: None,
            budget_spent: Some(self.spent),
            churn: Some(self.state.churn_diagnostics()),
        }
    }
}

/// A budget-oblivious throughput maximizer: every slot it solves the
/// plain proportional-fairness objective (`V = 1`, price `0`) with *no*
/// spending cap, so greedy allocation saturates the network's capacity.
///
/// This models the throughput-maximization literature the paper contrasts
/// itself against (§I-A): entanglement performance is excellent, but the
/// user's budget is ignored entirely — the `budget_violation` bench shows
/// it overshooting `C` by an order of magnitude where OSCAR lands within
/// a few percent. Not one of the paper's evaluated baselines; shipped as
/// the "what if we ignore cost" ablation.
#[derive(Debug)]
pub struct ThroughputGreedyPolicy {
    state: EngineState,
    selector: RouteSelector,
    spent: u64,
}

impl ThroughputGreedyPolicy {
    /// Creates the policy with the given route limits.
    pub fn new(route_limits: RouteLimits, selector: RouteSelector) -> Self {
        ThroughputGreedyPolicy {
            state: EngineState::new(route_limits),
            selector,
            spent: 0,
        }
    }

    /// Budget units spent so far (it will be a lot).
    pub fn spent(&self) -> u64 {
        self.spent
    }
}

impl Default for ThroughputGreedyPolicy {
    fn default() -> Self {
        Self::new(RouteLimits::paper_default(), RouteSelector::default())
    }
}

impl RoutingPolicy for ThroughputGreedyPolicy {
    fn name(&self) -> String {
        "Throughput-Greedy".into()
    }

    fn decide(
        &mut self,
        network: &QdnNetwork,
        slot: &SlotState,
        rng: &mut dyn rand::Rng,
    ) -> Decision {
        // Price 0 and no slot budget: the objective is strictly increasing
        // in every n_e, so allocation fills the capacity constraints.
        let ctx = PerSlotContext::oscar(network, slot.snapshot(), 1.0, 0.0);
        let decision = decide(
            &mut self.state,
            SlotDecisionRequest {
                network,
                requests: slot.requests(),
                ctx: &ctx,
                selector: &self.selector,
                allocation: &AllocationMethod::Greedy,
                fidelity_target: None,
                rng,
            },
        );
        self.spent += decision.total_cost();
        decision
    }

    fn reset(&mut self) {
        self.spent = 0;
        self.state.reset();
    }

    fn diagnostics(&self) -> PolicyDiagnostics {
        PolicyDiagnostics {
            virtual_queue: None,
            budget_spent: Some(self.spent),
            churn: Some(self.state.churn_diagnostics()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_net::workload::{UniformWorkload, Workload};
    use qdn_net::{CapacitySnapshot, NetworkConfig};
    use rand::SeedableRng;

    fn setup() -> (QdnNetwork, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
        (net, rng)
    }

    #[test]
    fn names() {
        assert_eq!(MyopicPolicy::fixed().name(), "MF");
        assert_eq!(MyopicPolicy::adaptive().name(), "MA");
        assert_eq!(MinimalRandomPolicy::default().name(), "Random-Min");
        assert_eq!(
            ThroughputGreedyPolicy::default().name(),
            "Throughput-Greedy"
        );
    }

    #[test]
    fn throughput_greedy_outspends_and_outperforms_myopics() {
        let (net, mut rng) = setup();
        let mut tg = ThroughputGreedyPolicy::default();
        let mut mf = MyopicPolicy::fixed();
        let mut wl = UniformWorkload::paper_default();
        let mut utility_tg = 0.0;
        let mut utility_mf = 0.0;
        for t in 0..30 {
            let requests = wl.requests(t, &net, &mut rng);
            let slot_a = SlotState::new(t, requests.clone(), CapacitySnapshot::full(&net));
            let slot_b = SlotState::new(t, requests, CapacitySnapshot::full(&net));
            utility_tg += tg.decide(&net, &slot_a, &mut rng).utility(&net);
            utility_mf += mf.decide(&net, &slot_b, &mut rng).utility(&net);
        }
        // Unlimited spending buys utility ...
        assert!(
            utility_tg > utility_mf,
            "TG {utility_tg:.2} should beat MF {utility_mf:.2} on raw utility"
        );
        // ... at a budget-oblivious price: allocation saturates the
        // capacity along every chosen route, spending well past MF's
        // 25-unit/slot allowance (the binding constraints are the routes'
        // own capacities, not the network total; the exact ratio varies
        // with the workload draw, so the margin is conservative).
        assert!(
            tg.spent() as f64 > 1.3 * 25.0 * 30.0,
            "TG spent {} — expected well beyond the myopic allowance",
            tg.spent()
        );
    }

    #[test]
    fn throughput_greedy_reset_clears_spend() {
        let (net, mut rng) = setup();
        let mut tg = ThroughputGreedyPolicy::default();
        let mut wl = UniformWorkload::paper_default();
        let requests = wl.requests(0, &net, &mut rng);
        let slot = SlotState::new(0, requests, CapacitySnapshot::full(&net));
        let _ = tg.decide(&net, &slot, &mut rng);
        assert!(tg.spent() > 0);
        tg.reset();
        assert_eq!(tg.spent(), 0);
        assert_eq!(tg.diagnostics().budget_spent, Some(0));
    }

    #[test]
    fn fixed_budget_respected_every_slot() {
        let (net, mut rng) = setup();
        let mut policy = MyopicPolicy::fixed();
        let mut wl = UniformWorkload::paper_default();
        for t in 0..30 {
            let requests = wl.requests(t, &net, &mut rng);
            let slot = SlotState::new(t, requests, CapacitySnapshot::full(&net));
            let d = policy.decide(&net, &slot, &mut rng);
            assert!(
                d.total_cost() <= 25,
                "slot {t}: MF spent {} > 25",
                d.total_cost()
            );
        }
    }

    #[test]
    fn total_budget_never_exceeded() {
        let (net, mut rng) = setup();
        for mut policy in [MyopicPolicy::fixed(), MyopicPolicy::adaptive()] {
            let mut wl = UniformWorkload::paper_default();
            for t in 0..200 {
                let requests = wl.requests(t, &net, &mut rng);
                let slot = SlotState::new(t, requests, CapacitySnapshot::full(&net));
                let _ = policy.decide(&net, &slot, &mut rng);
            }
            assert!(
                policy.spent() <= 5000,
                "{} spent {} > 5000",
                policy.name(),
                policy.spent()
            );
        }
    }

    #[test]
    fn adaptive_redistributes_unused_budget() {
        let (net, mut rng) = setup();
        let mut ma = MyopicPolicy::adaptive();
        // Several empty slots: MA's allowance should grow past 25.
        for t in 0..10 {
            let slot = SlotState::new(t, vec![], CapacitySnapshot::full(&net));
            let _ = ma.decide(&net, &slot, &mut rng);
        }
        assert_eq!(ma.spent(), 0);
        let b = ma.slot_budget(10);
        assert!(
            b > 25,
            "MA allowance after idle slots should exceed 25, got {b}"
        );
        // MF never grows.
        let mf = MyopicPolicy::fixed();
        assert_eq!(mf.slot_budget(10), 25);
    }

    #[test]
    fn adaptive_allowance_shrinks_when_overspent() {
        let (net, mut rng) = setup();
        let mut ma = MyopicPolicy::adaptive();
        let mut wl = UniformWorkload::paper_default();
        // Run most of the horizon, then check the allowance stays sane.
        for t in 0..190 {
            let requests = wl.requests(t, &net, &mut rng);
            let slot = SlotState::new(t, requests, CapacitySnapshot::full(&net));
            let _ = ma.decide(&net, &slot, &mut rng);
        }
        let remaining = 5000u64.saturating_sub(ma.spent());
        assert!(ma.slot_budget(190) <= remaining.max(1));
    }

    #[test]
    fn minimal_random_allocates_one_per_edge() {
        let (net, mut rng) = setup();
        let mut policy = MinimalRandomPolicy::default();
        let mut wl = UniformWorkload::paper_default();
        let requests = wl.requests(0, &net, &mut rng);
        let slot = SlotState::new(0, requests, CapacitySnapshot::full(&net));
        let d = policy.decide(&net, &slot, &mut rng);
        for a in d.assignments() {
            assert!(a.allocation.iter().all(|&n| n == 1));
        }
    }

    #[test]
    fn reset_clears_spending() {
        let (net, mut rng) = setup();
        let mut policy = MyopicPolicy::adaptive();
        let mut wl = UniformWorkload::paper_default();
        let requests = wl.requests(0, &net, &mut rng);
        let slot = SlotState::new(0, requests, CapacitySnapshot::full(&net));
        let _ = policy.decide(&net, &slot, &mut rng);
        policy.reset();
        assert_eq!(policy.spent(), 0);
        assert_eq!(policy.diagnostics().budget_spent, Some(0));
    }

    fn sample_trace(
        net: &QdnNetwork,
        rng: &mut rand::rngs::StdRng,
        slots: u64,
    ) -> Vec<Vec<qdn_net::SdPair>> {
        let mut wl = UniformWorkload::paper_default();
        (0..slots).map(|t| wl.requests(t, net, rng)).collect()
    }

    #[test]
    fn oracle_plans_proportional_budgets() {
        let (net, mut rng) = setup();
        let trace = sample_trace(&net, &mut rng, 20);
        let total = 500.0;
        let oracle = OraclePolicy::plan(
            &net,
            &trace,
            total,
            RouteLimits::paper_default(),
            RouteSelector::default(),
        );
        let planned: u64 = (0..20).map(|t| oracle.slot_budget(t)).sum();
        assert_eq!(planned, 500, "plan must hand out the whole budget");
        assert_eq!(oracle.slot_budget(99), 0, "past the horizon: nothing");
    }

    #[test]
    fn oracle_never_exceeds_total_budget() {
        let (net, mut rng) = setup();
        let trace = sample_trace(&net, &mut rng, 30);
        let total = 750.0;
        let mut oracle = OraclePolicy::plan(
            &net,
            &trace,
            total,
            RouteLimits::paper_default(),
            RouteSelector::default(),
        );
        for (t, requests) in trace.iter().enumerate() {
            let slot = SlotState::new(t as u64, requests.clone(), CapacitySnapshot::full(&net));
            let d = oracle.decide(&net, &slot, &mut rng);
            assert!(d.total_cost() <= oracle.slot_budget(t as u64));
        }
        assert!(oracle.diagnostics().budget_spent.unwrap() as f64 <= total);
    }

    #[test]
    fn oracle_empty_trace_spends_nothing() {
        let (net, _) = setup();
        let oracle = OraclePolicy::plan(
            &net,
            &[],
            100.0,
            RouteLimits::paper_default(),
            RouteSelector::default(),
        );
        assert_eq!(oracle.slot_budget(0), 0);
        assert_eq!(oracle.name(), "Oracle");
    }

    #[test]
    fn oracle_beats_fixed_split_on_bursty_trace() {
        // A trace with idle slots and one heavy slot: the oracle gives the
        // heavy slot the budget MF would waste on the idle ones.
        let (net, mut rng) = setup();
        let mut wl = UniformWorkload::new(5, 5);
        let heavy = wl.requests(0, &net, &mut rng);
        let mut trace: Vec<Vec<qdn_net::SdPair>> = vec![vec![]; 9];
        trace.push(heavy);
        let total = 250.0; // MF would give 25/slot; oracle ~250 to slot 9
        let mut oracle = OraclePolicy::plan(
            &net,
            &trace,
            total,
            RouteLimits::paper_default(),
            RouteSelector::default(),
        );
        assert!(oracle.slot_budget(9) > 200);

        let mut mf = MyopicPolicy::new(MyopicConfig {
            total_budget: total,
            horizon: 10,
            ..MyopicConfig::paper_default(BudgetSplit::Fixed)
        });
        let mut utility_oracle = 0.0;
        let mut utility_mf = 0.0;
        for (t, requests) in trace.iter().enumerate() {
            let slot = SlotState::new(t as u64, requests.clone(), CapacitySnapshot::full(&net));
            utility_oracle += oracle.decide(&net, &slot, &mut rng).utility(&net);
            utility_mf += mf.decide(&net, &slot, &mut rng).utility(&net);
        }
        assert!(
            utility_oracle > utility_mf,
            "oracle {utility_oracle:.3} should beat MF {utility_mf:.3} on bursty demand"
        );
    }
}
