//! The paper's theoretical bounds (Prop. 2, Theorem 1, Theorem 2,
//! Assumption 1), as executable calculators.
//!
//! The experiment harness evaluates these alongside the simulations so
//! EXPERIMENTS.md can report both the measured behaviour and the analytic
//! guarantees it must respect. All logarithms are natural, matching the
//! proportional-fairness objective `log P` in Eq. 3.

use serde::{Deserialize, Serialize};

/// System parameters entering the bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundParams {
    /// Lyapunov weight `V`.
    pub v: f64,
    /// Maximum SD pairs per slot `F`.
    pub f: usize,
    /// Maximum route length `L` (hops).
    pub l: usize,
    /// Minimum per-channel success probability `p_min` over the edges.
    pub p_min: f64,
    /// Total budget `C`.
    pub budget: f64,
    /// Horizon `T`.
    pub horizon: u64,
    /// Initial virtual queue `q0`.
    pub q0: f64,
    /// Largest possible per-slot cost `c_max` (e.g. `F·L·max_e W_e`).
    pub c_max: f64,
}

impl BoundParams {
    /// Per-slot budget allowance `C/T`.
    pub fn allowance(&self) -> f64 {
        self.budget / self.horizon as f64
    }
}

/// Prop. 2's rounding sub-optimality gap
/// `Δ = V·F·L·ln(2 − p_min)`.
///
/// # Example
///
/// ```
/// use qdn_core::theory::delta_bound;
///
/// let delta = delta_bound(2500.0, 5, 8, 0.55);
/// assert!(delta > 0.0);
/// // log(2 - 0.55) = log(1.45) ~ 0.3716
/// assert!((delta - 2500.0 * 40.0 * 1.45f64.ln()).abs() < 1e-9);
/// ```
pub fn delta_bound(v: f64, f: usize, l: usize, p_min: f64) -> f64 {
    v * (f * l) as f64 * (2.0 - p_min).ln()
}

/// The drift constant `B`: a bound on `½(c_t − C/T)²`.
///
/// The worst case is either spending nothing (`c_t = 0`) or spending the
/// maximum (`c_t = c_max`), so `B = ½·max(C/T, c_max − C/T)²`.
pub fn b_constant(c_max: f64, allowance: f64) -> f64 {
    let dev = allowance.max((c_max - allowance).abs());
    0.5 * dev * dev
}

/// Theorem 1: bound on the time-averaged budget violation
/// `(1/T)·Σ_t c_t − C/T ≤ sqrt(q0²/T² + 2D/T) − q0/T` with
/// `D = Δ + B − V·F·L·ln(p_min)`.
///
/// # Example
///
/// ```
/// use qdn_core::theory::{theorem1_violation_bound, BoundParams};
///
/// let params = BoundParams {
///     v: 2500.0, f: 5, l: 8, p_min: 0.55,
///     budget: 5000.0, horizon: 200, q0: 10.0, c_max: 5.0 * 8.0 * 8.0,
/// };
/// let bound = theorem1_violation_bound(&params);
/// assert!(bound > 0.0); // finite-T violation allowance
/// ```
pub fn theorem1_violation_bound(params: &BoundParams) -> f64 {
    let delta = delta_bound(params.v, params.f, params.l, params.p_min);
    let b = b_constant(params.c_max, params.allowance());
    let d = delta + b - params.v * (params.f * params.l) as f64 * params.p_min.ln();
    let t = params.horizon as f64;
    ((params.q0 * params.q0) / (t * t) + 2.0 * d / t).sqrt() - params.q0 / t
}

/// Theorem 2: bound on the optimality gap of the time-averaged objective,
/// `OPT − (1/T)·Σ_t E[u_t] ≤ (Δ + B)/V + q0²/(2VT)`.
pub fn theorem2_optimality_gap(params: &BoundParams) -> f64 {
    let delta = delta_bound(params.v, params.f, params.l, params.p_min);
    let b = b_constant(params.c_max, params.allowance());
    (delta + b) / params.v + (params.q0 * params.q0) / (2.0 * params.v * params.horizon as f64)
}

/// Assumption 1: the budget suffices for one channel per edge per pair
/// per slot, `C ≥ F·L·T`.
pub fn assumption1_holds(budget: f64, f: usize, l: usize, horizon: u64) -> bool {
    budget >= (f * l) as f64 * horizon as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BoundParams {
        BoundParams {
            v: 2500.0,
            f: 5,
            l: 8,
            p_min: 0.55,
            budget: 5000.0,
            horizon: 200,
            q0: 10.0,
            c_max: 5.0 * 8.0 * 8.0,
        }
    }

    #[test]
    fn delta_positive_and_monotone_in_v() {
        assert!(delta_bound(100.0, 2, 3, 0.5) > 0.0);
        assert!(delta_bound(200.0, 2, 3, 0.5) > delta_bound(100.0, 2, 3, 0.5));
    }

    #[test]
    fn delta_decreases_with_p_min() {
        // Higher p_min -> smaller log(2 - p_min) -> smaller gap.
        assert!(delta_bound(100.0, 2, 3, 0.9) < delta_bound(100.0, 2, 3, 0.1));
    }

    #[test]
    fn b_constant_covers_both_extremes() {
        // c_max far above allowance.
        assert_eq!(b_constant(100.0, 25.0), 0.5 * 75.0 * 75.0);
        // Idle slot deviation dominates.
        assert_eq!(b_constant(10.0, 25.0), 0.5 * 25.0 * 25.0);
    }

    #[test]
    fn theorem1_bound_positive_and_shrinks_with_horizon() {
        let p = params();
        let b_short = theorem1_violation_bound(&p);
        let mut long = p;
        long.horizon = 2000;
        let b_long = theorem1_violation_bound(&long);
        assert!(b_short > 0.0);
        assert!(b_long < b_short, "violation bound must vanish as T grows");
    }

    #[test]
    fn theorem1_bound_decreases_with_q0() {
        let p = params();
        let mut big_q0 = p;
        big_q0.q0 = 1000.0;
        assert!(theorem1_violation_bound(&big_q0) < theorem1_violation_bound(&p));
    }

    #[test]
    fn theorem1_bound_increases_with_v() {
        let p = params();
        let mut big_v = p;
        big_v.v = 10_000.0;
        assert!(theorem1_violation_bound(&big_v) > theorem1_violation_bound(&p));
    }

    #[test]
    fn theorem2_gap_decreases_with_v() {
        let p = params();
        let mut big_v = p;
        big_v.v = 10_000.0;
        assert!(theorem2_optimality_gap(&big_v) < theorem2_optimality_gap(&p));
    }

    #[test]
    fn theorem2_gap_increases_with_q0() {
        let p = params();
        let mut big_q0 = p;
        big_q0.q0 = 500.0;
        assert!(theorem2_optimality_gap(&big_q0) > theorem2_optimality_gap(&p));
    }

    #[test]
    fn assumption1_examples() {
        // Paper defaults: C=5000, F=5, L=8, T=200 -> need 8000 > 5000:
        // Assumption 1 does NOT hold for the worst case F and L; it holds
        // for the *realized* average (|Φ|~3, routes ~2-3 hops).
        assert!(!assumption1_holds(5000.0, 5, 8, 200));
        // F=3, L=4: F·L·T = 2400 <= 5000, so the assumption holds.
        assert!(assumption1_holds(5000.0, 3, 4, 200));
        assert!(assumption1_holds(5000.0, 1, 5, 200));
    }

    #[test]
    fn allowance_computed() {
        assert_eq!(params().allowance(), 25.0);
    }
}
