//! The per-slot problem P2: instance construction and profile evaluation.
//!
//! With routes fixed, P2 is
//!
//! ```text
//! max   V · Σ_φ log P(r(φ), N(r(φ)))  −  q_t · Σ_φ Σ_e n_e(r(φ))
//! s.t.  qubit capacities (Eq. 4), channel capacities (Eq. 5), n_e ≥ 1
//! ```
//!
//! [`PerSlotContext`] translates a route profile into a
//! [`qdn_solve::AllocationInstance`]: one variable per (pair, route-edge),
//! a packing constraint per touched node (capacity `Q_v^t`, members = all
//! variables whose edge is incident to `v` — note `n_e` consumes a qubit
//! at *both* endpoints) and per touched edge (capacity `W_e^t`). An
//! optional per-slot budget (used by the myopic baselines) becomes one
//! more packing constraint over all variables.

use qdn_graph::Path;
use qdn_net::{CapacitySnapshot, QdnNetwork, SdPair};
use qdn_solve::{AllocationInstance, RouteAssembler, SolveError};

use crate::allocation::AllocationMethod;

/// Per-slot problem parameters shared across route-profile evaluations.
#[derive(Debug, Clone, Copy)]
pub struct PerSlotContext<'a> {
    /// The installed network (graph + link models).
    pub network: &'a QdnNetwork,
    /// This slot's available capacities.
    pub snapshot: &'a CapacitySnapshot,
    /// The Lyapunov weight `V` (1.0 for the plain myopic objective).
    pub v_weight: f64,
    /// The per-unit price: the virtual queue `q_t` for OSCAR, 0 for the
    /// baselines.
    pub unit_price: f64,
    /// Optional per-slot budget `b_t` (myopic baselines): total units this
    /// slot must not exceed.
    pub slot_budget: Option<u64>,
}

/// A route profile: for each served pair, which route it uses.
pub type RouteProfile<'a> = [(SdPair, &'a Path)];

/// The evaluation of one route profile: per-route allocations and the P2
/// objective value `f(r, N*(r))`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEvaluation {
    /// `allocations[i]` matches the `i`-th profile entry (channels per
    /// route edge).
    pub allocations: Vec<Vec<u32>>,
    /// The drift-plus-penalty objective value.
    pub objective: f64,
}

impl<'a> PerSlotContext<'a> {
    /// Context for OSCAR's P2 (no slot budget).
    pub fn oscar(
        network: &'a QdnNetwork,
        snapshot: &'a CapacitySnapshot,
        v_weight: f64,
        queue: f64,
    ) -> Self {
        PerSlotContext {
            network,
            snapshot,
            v_weight,
            unit_price: queue,
            slot_budget: None,
        }
    }

    /// Context for the myopic baselines: pure log-utility objective under
    /// a per-slot budget.
    pub fn myopic(
        network: &'a QdnNetwork,
        snapshot: &'a CapacitySnapshot,
        slot_budget: u64,
    ) -> Self {
        PerSlotContext {
            network,
            snapshot,
            v_weight: 1.0,
            unit_price: 0.0,
            slot_budget: Some(slot_budget),
        }
    }

    /// Builds the allocation instance for a fixed route profile.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InfeasibleAtLowerBound`] when the profile
    /// cannot even hold one channel per edge — route selection must treat
    /// such profiles as invalid (objective `−∞`).
    pub fn build_instance(
        &self,
        profile: &RouteProfile<'_>,
    ) -> Result<AllocationInstance, SolveError> {
        let mut asm = RouteAssembler::sized(self.network.node_count(), self.network.edge_count());
        let edges = profile.iter().flat_map(|(_, route)| {
            route.edges().iter().map(|&edge| {
                let (u, v) = self.network.graph().endpoints(edge);
                (edge, u, v, self.network.link(edge).channel_success())
            })
        });
        assemble_instance(
            &mut asm,
            self.snapshot,
            edges,
            self.slot_budget.map(|b| b.min(u32::MAX as u64) as u32),
            self.v_weight,
            self.unit_price,
            None,
        )
    }

    /// Evaluates a route profile: solves the allocation sub-problem with
    /// `method` and returns per-route allocations plus the objective.
    ///
    /// The objective includes the swapping factor of every chosen route —
    /// the paper's "product term in Equation 2" for imperfect swapping.
    /// It is allocation-independent (`swaps(r) · ln q` per route), so it
    /// does not perturb Algorithm 2, but it makes route selection prefer
    /// fewer swaps when swapping is lossy; with the paper's perfect
    /// swapping (`q = 1`) the term vanishes.
    ///
    /// Returns `None` when the profile is infeasible (cannot hold one
    /// channel per edge under this slot's capacities/budget).
    pub fn evaluate(
        &self,
        profile: &RouteProfile<'_>,
        method: &AllocationMethod,
    ) -> Option<ProfileEvaluation> {
        if profile.is_empty() {
            return Some(ProfileEvaluation {
                allocations: Vec::new(),
                objective: 0.0,
            });
        }
        let instance = self.build_instance(profile).ok()?;
        let flat = method.allocate(&instance)?;
        let objective = instance.objective_int(&flat) + self.v_weight * self.swap_ln(profile);

        // Un-flatten per route.
        let mut allocations = Vec::with_capacity(profile.len());
        let mut cursor = 0;
        for (_, route) in profile {
            let hops = route.hops();
            allocations.push(flat[cursor..cursor + hops].to_vec());
            cursor += hops;
        }
        Some(ProfileEvaluation {
            allocations,
            objective,
        })
    }

    /// Evaluates only the objective of a route profile, skipping the
    /// per-route un-flattening (and its `Vec` copies) that
    /// [`PerSlotContext::evaluate`] performs.
    ///
    /// Search loops that merely compare profiles (Gibbs proposals, greedy
    /// coordinate steps, exhaustive enumeration) should prefer this — or,
    /// better, the memoizing [`crate::profile_eval::ProfileEvaluator`].
    ///
    /// Returns `None` exactly when [`PerSlotContext::evaluate`] does.
    pub fn evaluate_objective(
        &self,
        profile: &RouteProfile<'_>,
        method: &AllocationMethod,
    ) -> Option<f64> {
        if profile.is_empty() {
            return Some(0.0);
        }
        let instance = self.build_instance(profile).ok()?;
        let flat = method.allocate(&instance)?;
        Some(instance.objective_int(&flat) + self.v_weight * self.swap_ln(profile))
    }

    /// Total log swap factor of a profile:
    /// `Σ_φ swaps(r(φ)) · ln(swap_success)` (0 under perfect swapping).
    fn swap_ln(&self, profile: &RouteProfile<'_>) -> f64 {
        let q = self.network.swap().success();
        if q >= 1.0 {
            return 0.0;
        }
        let swaps: u64 = profile
            .iter()
            .map(|(_, route)| qdn_physics::swap::SwapModel::swaps_for_hops(route.hops()) as u64)
            .sum();
        swaps as f64 * q.ln()
    }
}

/// Assembles the canonical P2 instance layout from a stream of route
/// edges `(edge, u, v, p)`: variables in stream order, node constraints
/// in first-touch order, then edge constraints in first-touch order,
/// then the optional budget over all variables.
///
/// Since PR 2 this is a thin adapter over the arena-backed
/// [`qdn_solve::RouteAssembler`], which owns the **single** definition
/// of the layout. Both the full-rebuild path
/// ([`PerSlotContext::build_instance`], fresh assembler) and the
/// incremental [`crate::profile_eval::ProfileEvaluator`] (one recycled
/// assembler per slot, per-component sub-instances) stream through it,
/// which — together with the component-wise solvers in `qdn_solve` — is
/// what makes their results bit-identical: a coupling component's
/// sub-instance is structurally the joint instance restricted to it, in
/// the same relative order.
///
/// `keys_out`, when given, receives each constraint's stable identity
/// (node / edge / budget) for the evaluator's dual warm-start store.
pub(crate) fn assemble_instance(
    asm: &mut RouteAssembler,
    snapshot: &CapacitySnapshot,
    edges: impl Iterator<Item = (qdn_graph::EdgeId, qdn_graph::NodeId, qdn_graph::NodeId, f64)>,
    budget: Option<u32>,
    v_weight: f64,
    unit_price: f64,
    keys_out: Option<&mut Vec<u32>>,
) -> Result<AllocationInstance, SolveError> {
    asm.begin();
    for (edge, u, v, p) in edges {
        asm.push_edge(
            edge.index(),
            u.index(),
            v.index(),
            p,
            snapshot.qubits(u),
            snapshot.qubits(v),
            snapshot.channels(edge),
        );
    }
    asm.finish_with_keys(budget, v_weight, unit_price, keys_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_graph::NodeId;
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_physics::link::LinkModel;

    /// Diamond network: 0-1-3 and 0-2-3, all p=0.5.
    fn diamond(qubits: u32, channels: u32) -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(qubits)).collect();
        let l = LinkModel::new(0.5).unwrap();
        b.add_edge(n[0], n[1], channels, l).unwrap();
        b.add_edge(n[1], n[3], channels, l).unwrap();
        b.add_edge(n[0], n[2], channels, l).unwrap();
        b.add_edge(n[2], n[3], channels, l).unwrap();
        b.build()
    }

    fn top_route(net: &QdnNetwork) -> Path {
        Path::from_nodes(net.graph(), vec![NodeId(0), NodeId(1), NodeId(3)]).unwrap()
    }

    #[test]
    fn instance_structure() {
        let net = diamond(10, 5);
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 100.0, 1.0);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let route = top_route(&net);
        let profile = vec![(pair, &route)];
        let inst = ctx.build_instance(&profile).unwrap();
        // Two variables (two edges), constraints: nodes 0,1,3 + edges 0,1.
        assert_eq!(inst.num_vars(), 2);
        assert_eq!(inst.num_constraints(), 5);
        assert_eq!(inst.v_weight(), 100.0);
        assert_eq!(inst.unit_price(), 1.0);
    }

    #[test]
    fn shared_node_capacity_couples_routes() {
        // Two pairs both routed through node 1 with tiny qubit capacity.
        let net = diamond(2, 5);
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 100.0, 0.0);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let route = top_route(&net);
        // Same route twice: node 1 must hold 2 qubits per variable pair...
        // each route needs >= 2 qubits at node 1 (two incident edges), so
        // two copies need 4 > 2 -> infeasible.
        let profile = vec![(pair, &route), (pair, &route)];
        assert!(ctx.build_instance(&profile).is_err());
        assert!(ctx
            .evaluate(&profile, &AllocationMethod::default())
            .is_none());
    }

    #[test]
    fn evaluate_empty_profile() {
        let net = diamond(10, 5);
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 100.0, 1.0);
        let ev = ctx.evaluate(&[], &AllocationMethod::default()).unwrap();
        assert!(ev.allocations.is_empty());
        assert_eq!(ev.objective, 0.0);
    }

    #[test]
    fn evaluate_allocates_every_edge() {
        let net = diamond(10, 5);
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 1000.0, 1.0);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let route = top_route(&net);
        let profile = vec![(pair, &route)];
        let ev = ctx
            .evaluate(&profile, &AllocationMethod::default())
            .unwrap();
        assert_eq!(ev.allocations.len(), 1);
        assert_eq!(ev.allocations[0].len(), 2);
        assert!(ev.allocations[0].iter().all(|&n| n >= 1));
        assert!(ev.objective.is_finite());
    }

    #[test]
    fn budget_constraint_limits_total() {
        let net = diamond(100, 100);
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::myopic(&net, &snap, 3);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let route = top_route(&net);
        let profile = vec![(pair, &route)];
        let ev = ctx.evaluate(&profile, &AllocationMethod::Greedy).unwrap();
        let total: u32 = ev.allocations[0].iter().sum();
        assert!(total <= 3, "budget 3 exceeded: {total}");
        assert!(total >= 2, "route needs at least one channel per edge");
    }

    #[test]
    fn infeasible_budget_detected() {
        let net = diamond(100, 100);
        let snap = CapacitySnapshot::full(&net);
        // Budget 1 < 2 route edges -> infeasible at all-ones.
        let ctx = PerSlotContext::myopic(&net, &snap, 1);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let route = top_route(&net);
        let profile = vec![(pair, &route)];
        assert!(ctx.evaluate(&profile, &AllocationMethod::Greedy).is_none());
    }

    #[test]
    fn lossy_swap_penalizes_profile_objective() {
        use qdn_physics::swap::SwapModel;
        // Same diamond but with a lossy swap model.
        let lossy = {
            let mut b = QdnNetworkBuilder::new();
            let n: Vec<_> = (0..4).map(|_| b.add_node(10)).collect();
            let l = LinkModel::new(0.5).unwrap();
            b.add_edge(n[0], n[1], 5, l).unwrap();
            b.add_edge(n[1], n[3], 5, l).unwrap();
            b.add_edge(n[0], n[2], 5, l).unwrap();
            b.add_edge(n[2], n[3], 5, l).unwrap();
            b.set_swap(SwapModel::new(0.5).unwrap());
            b.build()
        };
        let perfect = diamond(10, 5);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let v = 800.0;
        let objective_of = |net: &QdnNetwork| {
            let snap = CapacitySnapshot::full(net);
            let ctx = PerSlotContext::oscar(net, &snap, v, 1.0);
            let route = top_route(net);
            let profile = vec![(pair, &route)];
            ctx.evaluate(&profile, &AllocationMethod::default())
                .unwrap()
                .objective
        };
        // A 2-hop route has one swap: the objectives differ by exactly
        // V · ln(0.5).
        let gap = objective_of(&perfect) - objective_of(&lossy);
        assert!(
            (gap - v * (2.0f64).ln()).abs() < 1e-9,
            "swap term should shift the objective by V·ln(1/q), got {gap}"
        );
    }

    #[test]
    fn higher_queue_price_reduces_allocation() {
        let net = diamond(12, 8);
        let snap = CapacitySnapshot::full(&net);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let route = top_route(&net);
        let profile = vec![(pair, &route)];
        let cheap = PerSlotContext::oscar(&net, &snap, 1000.0, 0.5)
            .evaluate(&profile, &AllocationMethod::default())
            .unwrap();
        let dear = PerSlotContext::oscar(&net, &snap, 1000.0, 500.0)
            .evaluate(&profile, &AllocationMethod::default())
            .unwrap();
        let cheap_total: u32 = cheap.allocations[0].iter().sum();
        let dear_total: u32 = dear.allocations[0].iter().sum();
        assert!(
            dear_total <= cheap_total,
            "higher price should not allocate more ({dear_total} vs {cheap_total})"
        );
        assert_eq!(dear_total, 2, "huge price pins to the minimum");
    }
}
