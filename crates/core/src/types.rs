//! Slot observations and routing decisions.

use qdn_graph::Path;
use qdn_net::{CapacitySnapshot, QdnNetwork, SdPair};
use serde::{Deserialize, Serialize};

/// Everything a policy observes at the start of a slot (Algorithm 1,
/// line 4: "Observe Φ_t, Q_v^t, W_e^t").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotState {
    t: u64,
    requests: Vec<SdPair>,
    snapshot: CapacitySnapshot,
}

impl SlotState {
    /// Bundles a slot observation.
    pub fn new(t: u64, requests: Vec<SdPair>, snapshot: CapacitySnapshot) -> Self {
        SlotState {
            t,
            requests,
            snapshot,
        }
    }

    /// The slot index `t`.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// The request set `Φ_t`.
    pub fn requests(&self) -> &[SdPair] {
        &self.requests
    }

    /// Available capacities `Q_v^t`, `W_e^t`.
    pub fn snapshot(&self) -> &CapacitySnapshot {
        &self.snapshot
    }
}

/// One served EC request: the chosen route `r_t(φ)` and the allocation
/// `N_t(r_t(φ))` (channels per route edge, in route-edge order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteAssignment {
    /// The SD pair this assignment serves.
    pub pair: SdPair,
    /// The chosen route.
    pub route: Path,
    /// `allocation[i]` channels on `route.edges()[i]`.
    pub allocation: Vec<u32>,
}

impl RouteAssignment {
    /// Creates an assignment.
    ///
    /// # Panics
    ///
    /// Panics if the allocation length does not match the route hop count
    /// or any entry is zero (connectivity requires `n_e ≥ 1`, paper P1).
    pub fn new(pair: SdPair, route: Path, allocation: Vec<u32>) -> Self {
        assert_eq!(
            allocation.len(),
            route.hops(),
            "allocation must cover every route edge"
        );
        assert!(
            allocation.iter().all(|&n| n >= 1),
            "allocations must be positive to keep the route connected"
        );
        RouteAssignment {
            pair,
            route,
            allocation,
        }
    }

    /// Qubit-channel units consumed by this assignment: `Σ_e n_e`.
    pub fn cost(&self) -> u64 {
        self.allocation.iter().map(|&n| n as u64).sum()
    }

    /// End-to-end success probability under `network`'s link models.
    pub fn success_probability(&self, network: &QdnNetwork) -> f64 {
        network.route_success(&self.route, &self.allocation)
    }

    /// Log success probability (one summand of the paper's Eq. 3).
    pub fn log_success(&self, network: &QdnNetwork) -> f64 {
        network.ln_route_success(&self.route, &self.allocation)
    }
}

/// A policy's output for one slot: the served assignments plus any
/// requests it could not serve (no candidate route, or capacity exhausted
/// below the all-ones minimum).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Decision {
    assignments: Vec<RouteAssignment>,
    unserved: Vec<SdPair>,
}

impl Decision {
    /// An empty decision (nothing served).
    pub fn empty() -> Self {
        Decision::default()
    }

    /// Builds a decision from assignments and unserved pairs.
    pub fn new(assignments: Vec<RouteAssignment>, unserved: Vec<SdPair>) -> Self {
        Decision {
            assignments,
            unserved,
        }
    }

    /// The served assignments.
    pub fn assignments(&self) -> &[RouteAssignment] {
        &self.assignments
    }

    /// Requests that were not served this slot.
    pub fn unserved(&self) -> &[SdPair] {
        &self.unserved
    }

    /// Per-slot cost `c_t = Σ_φ Σ_e n_e` (paper's budget meter, Eq. 6).
    pub fn total_cost(&self) -> u64 {
        self.assignments.iter().map(RouteAssignment::cost).sum()
    }

    /// Slot utility `Σ_φ log P` over served pairs (paper Eq. 3 summand).
    pub fn utility(&self, network: &QdnNetwork) -> f64 {
        self.assignments
            .iter()
            .map(|a| a.log_success(network))
            .sum()
    }

    /// Success probabilities of all requests, served or not (unserved
    /// requests count as probability 0 — they certainly fail).
    pub fn success_probabilities(&self, network: &QdnNetwork) -> Vec<f64> {
        let mut probs: Vec<f64> = self
            .assignments
            .iter()
            .map(|a| a.success_probability(network))
            .collect();
        probs.extend(std::iter::repeat_n(0.0, self.unserved.len()));
        probs
    }

    /// Number of requests this decision covers (served + unserved).
    pub fn request_count(&self) -> usize {
        self.assignments.len() + self.unserved.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_graph::NodeId;
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_physics::link::LinkModel;

    fn line_net() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let a = b.add_node(10);
        let m = b.add_node(10);
        let c = b.add_node(10);
        b.add_edge(a, m, 5, LinkModel::new(0.5).unwrap()).unwrap();
        b.add_edge(m, c, 5, LinkModel::new(0.5).unwrap()).unwrap();
        b.build()
    }

    fn assignment(net: &QdnNetwork) -> RouteAssignment {
        let pair = SdPair::new(NodeId(0), NodeId(2)).unwrap();
        let route = Path::from_nodes(net.graph(), vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        RouteAssignment::new(pair, route, vec![2, 1])
    }

    #[test]
    fn slot_state_accessors() {
        let net = line_net();
        let snap = CapacitySnapshot::full(&net);
        let pair = SdPair::new(NodeId(0), NodeId(2)).unwrap();
        let s = SlotState::new(3, vec![pair], snap.clone());
        assert_eq!(s.t(), 3);
        assert_eq!(s.requests(), &[pair]);
        assert_eq!(s.snapshot(), &snap);
    }

    #[test]
    fn assignment_cost_and_probability() {
        let net = line_net();
        let a = assignment(&net);
        assert_eq!(a.cost(), 3);
        let p = a.success_probability(&net);
        assert!((p - (1.0 - 0.25) * 0.5).abs() < 1e-12);
        assert!((a.log_success(&net) - p.ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "allocation must cover")]
    fn assignment_arity_checked() {
        let net = line_net();
        let pair = SdPair::new(NodeId(0), NodeId(2)).unwrap();
        let route = Path::from_nodes(net.graph(), vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let _ = RouteAssignment::new(pair, route, vec![2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn assignment_zero_allocation_rejected() {
        let net = line_net();
        let pair = SdPair::new(NodeId(0), NodeId(2)).unwrap();
        let route = Path::from_nodes(net.graph(), vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let _ = RouteAssignment::new(pair, route, vec![1, 0]);
    }

    #[test]
    fn decision_aggregates() {
        let net = line_net();
        let a = assignment(&net);
        let unserved = SdPair::new(NodeId(1), NodeId(2)).unwrap();
        let d = Decision::new(vec![a.clone()], vec![unserved]);
        assert_eq!(d.total_cost(), 3);
        assert_eq!(d.request_count(), 2);
        let probs = d.success_probabilities(&net);
        assert_eq!(probs.len(), 2);
        assert!(probs[0] > 0.0);
        assert_eq!(probs[1], 0.0);
        assert!((d.utility(&net) - a.log_success(&net)).abs() < 1e-12);
    }

    #[test]
    fn empty_decision() {
        let net = line_net();
        let d = Decision::empty();
        assert_eq!(d.total_cost(), 0);
        assert_eq!(d.utility(&net), 0.0);
        assert!(d.success_probabilities(&net).is_empty());
    }
}
