//! Exact route selection by product-space enumeration (paper Eq. 13).
//!
//! "We perform an exhaustive search on all possible route combinations
//! for the SD pairs in Φ and select the combination with the highest
//! per-slot objective value by applying the qubit allocation algorithm."
//! Effective when `R^F` is small; the general case uses Gibbs sampling.
//!
//! Enumeration runs on the incremental
//! [`ProfileEvaluator`], which suits the odometer
//! walk perfectly: each increment changes a single pair, so only that
//! pair's coupling component is re-solved, and every component's
//! combination is solved at most once over the whole product space.

use crate::allocation::AllocationMethod;
use crate::problem::PerSlotContext;
use crate::profile_eval::{EvalOptions, ProfileEvaluator};
use crate::route_selection::{Candidates, Selection};

/// Enumerates every route combination and returns the best feasible one.
///
/// Returns `None` when *no* combination is feasible under this slot's
/// capacities (the caller then drops requests).
pub fn search(
    ctx: &PerSlotContext<'_>,
    candidates: &[Candidates<'_>],
    method: &AllocationMethod,
    options: EvalOptions,
) -> Option<Selection> {
    let mut evaluator = ProfileEvaluator::new(ctx, candidates, method, options);
    search_with(&mut evaluator, candidates)
}

/// [`search`] over a caller-provided evaluator — the session-threaded
/// entry point ([`crate::route_selection::RouteSelector::select_in`]
/// builds the evaluator from its [`crate::profile_eval::SelectorSession`]
/// so the arena, memos, and λ stores persist across slots).
pub fn search_with(
    evaluator: &mut ProfileEvaluator<'_>,
    candidates: &[Candidates<'_>],
) -> Option<Selection> {
    let mut indices = vec![0usize; candidates.len()];
    let mut best: Option<(Vec<usize>, f64)> = None;
    loop {
        if let Some(objective) = evaluator.evaluate_objective(&indices) {
            if best.as_ref().is_none_or(|(_, b)| objective > *b) {
                best = Some((indices.clone(), objective));
            }
        }
        // Odometer increment over the mixed-radix index vector.
        let mut pos = 0;
        loop {
            if pos == candidates.len() {
                let (indices, _) = best?;
                let evaluation = evaluator
                    .evaluate(&indices)
                    .expect("best profile was feasible when recorded");
                return Some(Selection {
                    indices,
                    evaluation,
                });
            }
            indices[pos] += 1;
            if indices[pos] < candidates[pos].routes.len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route_selection::evaluate_indices;
    use qdn_graph::{NodeId, Path};
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_net::routes::{CandidateRoutes, RouteLimits};
    use qdn_net::{CapacitySnapshot, QdnNetwork, SdPair};
    use qdn_physics::link::LinkModel;

    /// 6-cycle: two disjoint routes between opposite corners.
    fn cycle6() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node(8)).collect();
        let l = LinkModel::new(0.5).unwrap();
        for i in 0..6 {
            b.add_edge(n[i], n[(i + 1) % 6], 4, l).unwrap();
        }
        b.build()
    }

    fn candidates_of(net: &QdnNetwork, pairs: &[SdPair]) -> Vec<(SdPair, Vec<Path>)> {
        let mut cr = CandidateRoutes::new(RouteLimits {
            max_routes: 3,
            max_hops: 6,
        });
        pairs
            .iter()
            .map(|&p| (p, cr.routes(net, p).to_vec()))
            .collect()
    }

    #[test]
    fn enumerates_full_space() {
        let net = cycle6();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 300.0, 0.5);
        let pairs = vec![
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(1), NodeId(4)).unwrap(),
        ];
        let owned = candidates_of(&net, &pairs);
        let cands: Vec<Candidates> = owned
            .iter()
            .map(|(pair, routes)| Candidates {
                pair: *pair,
                routes,
            })
            .collect();
        let best = search(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            EvalOptions::default(),
        )
        .unwrap();

        // Verify optimality against a manual scan.
        let mut manual_best = f64::NEG_INFINITY;
        for i in 0..cands[0].routes.len() {
            for j in 0..cands[1].routes.len() {
                if let Some(ev) =
                    evaluate_indices(&ctx, &cands, &[i, j], &AllocationMethod::default())
                {
                    manual_best = manual_best.max(ev.objective);
                }
            }
        }
        assert!((best.evaluation.objective - manual_best).abs() < 1e-9);
    }

    #[test]
    fn infeasible_everywhere_returns_none() {
        let net = cycle6();
        // Zero out all channel capacity.
        let snap = CapacitySnapshot::clamped(&net, vec![8; 6], vec![0; 6]);
        let ctx = PerSlotContext::oscar(&net, &snap, 300.0, 0.5);
        let pairs = vec![SdPair::new(NodeId(0), NodeId(3)).unwrap()];
        let owned = candidates_of(&net, &pairs);
        let cands: Vec<Candidates> = owned
            .iter()
            .map(|(pair, routes)| Candidates {
                pair: *pair,
                routes,
            })
            .collect();
        assert!(search(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            EvalOptions::default()
        )
        .is_none());
    }
}
