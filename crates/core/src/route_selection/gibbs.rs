//! Gibbs-sampling route selection — the paper's Algorithm 3.
//!
//! Starting from a random route profile, each iteration virtually
//! modifies one randomly chosen SD pair's route, evaluates the per-slot
//! objective via the allocation oracle, and accepts the modification with
//! the logit probability of Eq. 15:
//!
//! ```text
//! P(accept) = 1 / (1 + exp((f_old − f_new)/γ)) = σ((f_new − f_old)/γ)
//! ```
//!
//! (Note: the paper's Algorithm-3 listing and its body text disagree on
//! which branch keeps the old selection; as listed, a *better* proposal
//! would be *less* likely to be accepted. We implement the body text /
//! standard Glauber dynamics, which is also what makes the γ→0 limit
//! converge to the greedy optimum — see DESIGN.md.)
//!
//! All evaluations run through the incremental
//! [`ProfileEvaluator`]: a single-pair proposal
//! re-solves only the coupling component that pair belongs to, and
//! profiles revisited by the chain are served from the memo. The paper's
//! remark 2 observes that spatially disjoint pairs can evolve
//! simultaneously; [`GibbsConfig::parallel_isolated`] enables exactly
//! that — isolated pairs (singleton components) are updated every
//! iteration via memoized local evaluations, while the coupled pairs
//! take turns through the joint evaluation.
//!
//! [`sample_restarts`] runs several independent chains (different seeds)
//! and keeps the best profile; with the `parallel` cargo feature the
//! chains run on `std::thread::scope` threads.

use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::allocation::AllocationMethod;
use crate::problem::PerSlotContext;
use crate::profile_eval::{EvalOptions, ProfileEvaluator, SelectorSession};
use crate::route_selection::{Candidates, Selection};

/// Parameters of the Gibbs sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GibbsConfig {
    /// Number of iterations (the paper loops "until stable"; a fixed
    /// budget with best-profile tracking is the standard finite-time
    /// variant).
    pub iterations: usize,
    /// Exploration temperature γ of Eq. 15 (paper default: 500).
    pub gamma: f64,
    /// Multiplicative per-iteration temperature decay (1.0 = constant γ;
    /// values < 1 anneal toward greedy, improving convergence as the
    /// paper's remark 1 suggests).
    pub gamma_decay: f64,
    /// Evolve provably independent pairs in parallel (paper remark 2).
    pub parallel_isolated: bool,
    /// Random restarts when the initial profile is infeasible.
    pub max_init_attempts: usize,
    /// Independent chains to run (1 = a single chain). With more than
    /// one, [`run`] derives one seed per chain from the caller's RNG and
    /// keeps the best profile across chains via [`sample_restarts`]
    /// (chains run on the shared work-stealing pool under the
    /// `parallel` cargo feature).
    pub restarts: usize,
    /// Iteration budget used instead of `iterations` when the chain was
    /// initialised from a *warm seed profile* (the previous slot's
    /// selection, via [`EvalOptions::warm_profile_seed`] and a
    /// [`SelectorSession`]): a chain that starts at last slot's optimum
    /// only has to repair locally for the drifted price, not mix from a
    /// random profile, so it earns a smaller budget — the adaptive
    /// reconfiguration idea (cf. QuARC) that makes cross-slot seeding a
    /// throughput win and not just a quality hedge. Set equal to
    /// `iterations` to keep the full budget on seeded slots. Ignored
    /// (full `iterations`) whenever no seed engaged — slot 0, fresh
    /// pairs only, or an infeasible seed. **Required since PR 5** — see
    /// MIGRATION.md.
    pub warm_iterations: usize,
    /// Profile-evaluator options (coupling-partition mode and warm
    /// profile seeding). **Required since PR 4/5** — see MIGRATION.md.
    pub evaluator: EvalOptions,
}

impl GibbsConfig {
    /// Floor for the decayed temperature. Long chains with
    /// `gamma_decay < 1` would otherwise drive γ into the subnormal
    /// range and finally to exactly 0, silently flipping
    /// [`acceptance_probability`] into its degenerate hard-0/1 γ = 0
    /// branch mid-run (most visibly: equal-objective proposals go from
    /// 50% acceptance to never accepted). At the floor the sampler is
    /// still effectively greedy for any practical objective difference
    /// — the overflow-guarded sigmoid saturates — but the arithmetic
    /// stays well defined and ties keep their 50% acceptance. Deliberate
    /// greedy configurations are respected: a configured γ ≤ the floor
    /// (including γ = 0) and the degenerate `gamma_decay = 0` both
    /// bypass the clamp — it only guards against gradual multiplicative
    /// underflow.
    pub const GAMMA_FLOOR: f64 = 1e-9;

    /// The paper's configuration: γ = 500, single-pair updates, one
    /// chain. Warm-seeded slots (opt-in via
    /// [`EvalOptions::warm_profile_seed`]) get a quarter of the budget —
    /// local repair from last slot's optimum instead of a full mix.
    pub fn paper_default() -> Self {
        GibbsConfig {
            iterations: 48,
            gamma: 500.0,
            gamma_decay: 1.0,
            parallel_isolated: false,
            max_init_attempts: 8,
            restarts: 1,
            warm_iterations: 12,
            evaluator: EvalOptions::default(),
        }
    }
}

impl Default for GibbsConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Eq. 15 acceptance probability: `σ((f_new − f_old)/γ)`.
pub fn acceptance_probability(f_new: f64, f_old: f64, gamma: f64) -> f64 {
    if gamma <= 0.0 {
        // γ→0 limit: strictly greedy.
        return if f_new > f_old { 1.0 } else { 0.0 };
    }
    let z = (f_old - f_new) / gamma;
    // Guard against overflow for extreme objective differences.
    if z > 700.0 {
        0.0
    } else if z < -700.0 {
        1.0
    } else {
        1.0 / (1.0 + z.exp())
    }
}

/// Runs the configured Gibbs selection: a single chain via [`sample`]
/// when `config.restarts <= 1`, otherwise `config.restarts` independent
/// chains via [`sample_restarts`] with per-chain seeds drawn from `rng`.
///
/// This is the policy-layer entry point (`RouteSelector` dispatches
/// here), so configs can enable multi-chain Gibbs with a single field.
///
/// Returns `None` when no feasible profile could be found at all.
pub fn run(
    ctx: &PerSlotContext<'_>,
    candidates: &[Candidates<'_>],
    method: &AllocationMethod,
    config: &GibbsConfig,
    rng: &mut dyn rand::Rng,
) -> Option<Selection> {
    if config.restarts <= 1 {
        return sample(ctx, candidates, method, config, rng);
    }
    let seeds: Vec<u64> = (0..config.restarts).map(|_| rng.random()).collect();
    sample_restarts(ctx, candidates, method, config, &seeds)
}

/// [`run`] backed by a [`SelectorSession`]: the evaluator recycles the
/// session's arena/memos/λ stores, and — when
/// [`EvalOptions::warm_profile_seed`] is set and the session remembers a
/// previous slot's selection — every chain starts from that profile
/// instead of a random draw (new pairs start on their shortest
/// candidate). With warm seeding off this is bit-identical to [`run`].
pub fn run_in(
    session: &mut SelectorSession,
    ctx: &PerSlotContext<'_>,
    candidates: &[Candidates<'_>],
    method: &AllocationMethod,
    config: &GibbsConfig,
    rng: &mut dyn rand::Rng,
) -> Option<Selection> {
    let seed = config
        .evaluator
        .warm_profile_seed
        .then(|| session.seed_indices(candidates))
        .flatten();
    if config.restarts <= 1 {
        let mut evaluator =
            ProfileEvaluator::new_in(session, ctx, candidates, method, config.evaluator);
        let selection = sample_seeded(&mut evaluator, candidates, config, rng, seed.as_deref());
        evaluator.retire(session);
        return selection;
    }
    let chain_seeds: Vec<u64> = (0..config.restarts).map(|_| rng.random()).collect();
    #[cfg(feature = "parallel")]
    {
        // Chains run on the shared pool with per-chain evaluators (the
        // session buffers cannot be shared mutably across threads), so
        // the session contributes only the starting profile here.
        sample_restarts_seeded(
            ctx,
            candidates,
            method,
            config,
            &chain_seeds,
            seed.as_deref(),
        )
    }
    #[cfg(not(feature = "parallel"))]
    {
        // Serial chains share the session evaluator: every profile any
        // chain (or a previous slot with an identical context) visited
        // is a memo hit for the others.
        use rand::SeedableRng;
        let mut evaluator =
            ProfileEvaluator::new_in(session, ctx, candidates, method, config.evaluator);
        let selection = chain_seeds
            .iter()
            .filter_map(|&chain_seed| {
                let mut chain_rng = rand::rngs::StdRng::seed_from_u64(chain_seed);
                sample_seeded(
                    &mut evaluator,
                    candidates,
                    config,
                    &mut chain_rng,
                    seed.as_deref(),
                )
            })
            .reduce(best_selection);
        evaluator.retire(session);
        selection
    }
}

/// Keeps the better of two chain outcomes (ties keep the earlier one).
fn best_selection(best: Selection, cand: Selection) -> Selection {
    if cand.evaluation.objective > best.evaluation.objective {
        cand
    } else {
        best
    }
}

/// Runs Algorithm 3 and returns the best profile visited.
///
/// Returns `None` when no feasible profile could be found at all (every
/// random initialisation plus the all-shortest profile are infeasible).
pub fn sample(
    ctx: &PerSlotContext<'_>,
    candidates: &[Candidates<'_>],
    method: &AllocationMethod,
    config: &GibbsConfig,
    rng: &mut dyn rand::Rng,
) -> Option<Selection> {
    let mut evaluator = ProfileEvaluator::new(ctx, candidates, method, config.evaluator);
    sample_with(&mut evaluator, candidates, config, rng)
}

/// [`sample`] over a caller-provided evaluator, so several chains (or a
/// surrounding search) can share one memo.
pub fn sample_with(
    evaluator: &mut ProfileEvaluator<'_>,
    candidates: &[Candidates<'_>],
    config: &GibbsConfig,
    rng: &mut dyn rand::Rng,
) -> Option<Selection> {
    sample_seeded(evaluator, candidates, config, rng, None)
}

/// [`sample_with`] with an optional warm starting profile (the previous
/// slot's selection, resolved by
/// [`SelectorSession::seed_indices`]): when given and feasible, the
/// chain starts there instead of drawing random initial profiles. An
/// infeasible seed falls back to the standard initialisation.
pub fn sample_seeded(
    evaluator: &mut ProfileEvaluator<'_>,
    candidates: &[Candidates<'_>],
    config: &GibbsConfig,
    rng: &mut dyn rand::Rng,
    seed: Option<&[usize]>,
) -> Option<Selection> {
    let k = candidates.len();
    if k == 0 {
        return evaluator.evaluate(&[]).map(|evaluation| Selection {
            indices: Vec::new(),
            evaluation,
        });
    }

    // --- Initialisation: the warm seed when given and feasible, then
    // random profiles, then the all-shortest fallback.
    let mut current: Option<(Vec<usize>, f64)> = None;
    let mut seeded = false;
    if let Some(seed) = seed {
        debug_assert_eq!(seed.len(), k);
        if let Some(objective) = evaluator.evaluate_objective(seed) {
            current = Some((seed.to_vec(), objective));
            seeded = true;
        }
    }
    if current.is_none() {
        for _ in 0..config.max_init_attempts.max(1) {
            let indices: Vec<usize> = candidates
                .iter()
                .map(|c| rng.random_range(0..c.routes.len()))
                .collect();
            if let Some(objective) = evaluator.evaluate_objective(&indices) {
                current = Some((indices, objective));
                break;
            }
        }
    }
    if current.is_none() {
        let shortest = vec![0usize; k];
        if let Some(objective) = evaluator.evaluate_objective(&shortest) {
            current = Some((shortest, objective));
        }
    }
    let (mut indices, mut f_cur) = current?;
    let mut best_indices = indices.clone();
    let mut best_f = f_cur;

    // --- Isolated-pair detection for the parallel variant.
    let isolated = if config.parallel_isolated {
        isolated_pairs(candidates)
    } else {
        vec![false; k]
    };
    let coupled: Vec<usize> = (0..k).filter(|&i| !isolated[i]).collect();

    let mut gamma = config.gamma;
    // A chain that starts at the previous slot's optimum only repairs
    // locally; a randomly-initialised chain gets the full mixing budget.
    let budget = if seeded {
        config.warm_iterations
    } else {
        config.iterations
    };
    for _ in 0..budget {
        if config.parallel_isolated {
            // Isolated pairs evolve simultaneously with exact local
            // deltas: their allocation sub-problem is independent of every
            // other pair, so a single-pair evaluation is the true
            // objective contribution. These are memoized per (pair, route)
            // — after one sweep of the chain they are all free.
            for i in 0..k {
                if !isolated[i] {
                    continue;
                }
                if candidates[i].routes.len() < 2 {
                    continue;
                }
                let proposal = propose_different(rng, indices[i], candidates[i].routes.len());
                let (Some(f_old_local), Some(f_new_local)) = (
                    evaluator.evaluate_pair_objective(i, indices[i]),
                    evaluator.evaluate_pair_objective(i, proposal),
                ) else {
                    continue;
                };
                if rng.random_bool(acceptance_probability(f_new_local, f_old_local, gamma)) {
                    f_cur += f_new_local - f_old_local;
                    indices[i] = proposal;
                }
            }
        }

        // One coupled pair evolves via the joint evaluation (all pairs, if
        // the parallel variant is off).
        let chosen = if config.parallel_isolated {
            if coupled.is_empty() {
                None // everything isolated: parallel loop above did the work
            } else {
                Some(coupled[rng.random_range(0..coupled.len())])
            }
        } else {
            Some(rng.random_range(0..k))
        };
        if let Some(i) = chosen {
            if candidates[i].routes.len() >= 2 {
                let old = indices[i];
                let proposal = propose_different(rng, old, candidates[i].routes.len());
                indices[i] = proposal;
                // Declared single-pair move: lets the evaluator's
                // dynamic partition attribute the work to this proposal.
                match evaluator.evaluate_objective_move(&indices, i) {
                    Some(objective) => {
                        if rng.random_bool(acceptance_probability(objective, f_cur, gamma)) {
                            f_cur = objective;
                        } else {
                            indices[i] = old;
                        }
                    }
                    None => indices[i] = old, // infeasible proposal: reject
                }
            }
        }

        // Track the best profile seen.
        if f_cur > best_f {
            best_f = f_cur;
            best_indices = indices.clone();
        }
        gamma = decayed_gamma(gamma, config);
    }

    let evaluation = evaluator
        .evaluate(&best_indices)
        .expect("best profile was feasible when recorded");
    Some(Selection {
        indices: best_indices,
        evaluation,
    })
}

/// Runs one independent chain per seed and returns the best selection
/// (ties keep the earliest seed). With the `parallel` cargo feature the
/// chains run on the shared work-stealing pool
/// ([`threadpool::current`]); results are **bit-identical** to the
/// serial order at every pool width, because each chain is deterministic
/// in its seed and chain outcomes are gathered in chain-index order
/// before the fixed left-to-right [`best_selection`] reduction.
///
/// Returns `None` when every chain fails to find a feasible profile.
pub fn sample_restarts(
    ctx: &PerSlotContext<'_>,
    candidates: &[Candidates<'_>],
    method: &AllocationMethod,
    config: &GibbsConfig,
    seeds: &[u64],
) -> Option<Selection> {
    sample_restarts_seeded(ctx, candidates, method, config, seeds, None)
}

/// [`sample_restarts`] with an optional shared warm starting profile
/// (every chain starts from it; their RNG streams still differ).
pub fn sample_restarts_seeded(
    ctx: &PerSlotContext<'_>,
    candidates: &[Candidates<'_>],
    method: &AllocationMethod,
    config: &GibbsConfig,
    seeds: &[u64],
    profile_seed: Option<&[usize]>,
) -> Option<Selection> {
    #[cfg(feature = "parallel")]
    {
        use rand::SeedableRng;
        // One pool task per chain, each with a fresh per-chain evaluator
        // (memo sharing needs `&mut`; fresh memos change hit rates, not
        // results — a memo is an exact cache). `map_indexed` returns the
        // chain outcomes in chain-index order regardless of execution
        // interleaving, so the reduction below sees the serial order.
        let chains: Vec<Option<Selection>> = threadpool::current().map_indexed(seeds.len(), |i| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seeds[i]);
            let mut evaluator = ProfileEvaluator::new(ctx, candidates, method, config.evaluator);
            sample_seeded(&mut evaluator, candidates, config, &mut rng, profile_seed)
        });
        chains.into_iter().flatten().reduce(best_selection)
    }
    #[cfg(not(feature = "parallel"))]
    {
        sample_restarts_serial(ctx, candidates, method, config, seeds, profile_seed)
    }
}

/// The serial multi-chain path: chains run in seed order sharing one
/// evaluator (every profile any chain has visited is a memo hit for the
/// others). This is the reference trajectory the parallel path must
/// reproduce bit-for-bit; it stays compiled under the `parallel` feature
/// so the equivalence proptest can call it directly.
#[doc(hidden)]
pub fn sample_restarts_serial(
    ctx: &PerSlotContext<'_>,
    candidates: &[Candidates<'_>],
    method: &AllocationMethod,
    config: &GibbsConfig,
    seeds: &[u64],
    profile_seed: Option<&[usize]>,
) -> Option<Selection> {
    use rand::SeedableRng;
    let mut evaluator = ProfileEvaluator::new(ctx, candidates, method, config.evaluator);
    seeds
        .iter()
        .filter_map(|&seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            sample_seeded(&mut evaluator, candidates, config, &mut rng, profile_seed)
        })
        .reduce(best_selection)
}

/// One γ-decay step, clamped at [`GibbsConfig::GAMMA_FLOOR`]. The floor
/// never overrides a *deliberate* route to the greedy γ = 0 branch: a
/// configured starting temperature at or below the floor (including
/// γ = 0) and the degenerate `gamma_decay = 0` (hot start, then instant
/// greedy) both keep their exact semantics — the clamp only guards
/// against gradual multiplicative underflow over long chains.
fn decayed_gamma(gamma: f64, config: &GibbsConfig) -> f64 {
    if config.gamma_decay <= 0.0 {
        return gamma * config.gamma_decay;
    }
    (gamma * config.gamma_decay).max(GibbsConfig::GAMMA_FLOOR.min(config.gamma))
}

/// Uniformly proposes a route index different from `current`.
fn propose_different(rng: &mut dyn rand::Rng, current: usize, len: usize) -> usize {
    debug_assert!(len >= 2);
    let mut idx = rng.random_range(0..len - 1);
    if idx >= current {
        idx += 1;
    }
    idx
}

/// Marks pairs whose candidate routes share no node with any other pair's
/// candidate routes (edge disjointness follows from node disjointness).
///
/// Such pairs' allocation sub-problems decouple exactly, so their Gibbs
/// updates can run concurrently with local evaluations — the paper's
/// remark 2. (The [`ProfileEvaluator`] generalizes the same test into a
/// full partition: a pair is isolated iff its component is a singleton —
/// but this standalone check is kept because it deliberately ignores the
/// slot budget, matching the sampler's historical semantics.)
fn isolated_pairs(candidates: &[Candidates<'_>]) -> Vec<bool> {
    use std::collections::HashSet;
    let unions: Vec<HashSet<qdn_graph::NodeId>> = candidates
        .iter()
        .map(|c| {
            c.routes
                .iter()
                .flat_map(|r| r.nodes().iter().copied())
                .collect()
        })
        .collect();
    (0..candidates.len())
        .map(|i| {
            unions
                .iter()
                .enumerate()
                .all(|(j, other)| j == i || unions[i].is_disjoint(other))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route_selection::exhaustive;
    use qdn_graph::{NodeId, Path};
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_net::routes::{CandidateRoutes, RouteLimits};
    use qdn_net::{CapacitySnapshot, QdnNetwork, SdPair};
    use qdn_physics::link::LinkModel;
    use rand::SeedableRng;

    #[test]
    fn acceptance_probability_properties() {
        // Better proposals are more likely to be accepted.
        assert!(acceptance_probability(0.0, -10.0, 500.0) > 0.5);
        assert!(acceptance_probability(-10.0, 0.0, 500.0) < 0.5);
        // Equal objectives: 50/50.
        assert!((acceptance_probability(5.0, 5.0, 500.0) - 0.5).abs() < 1e-12);
        // γ→0: greedy.
        assert_eq!(acceptance_probability(1.0, 0.0, 0.0), 1.0);
        assert_eq!(acceptance_probability(0.0, 1.0, 0.0), 0.0);
        // Extreme differences don't overflow.
        assert_eq!(acceptance_probability(1e9, 0.0, 1.0), 1.0);
        assert_eq!(acceptance_probability(0.0, 1e9, 1.0), 0.0);
    }

    #[test]
    fn gamma_decay_clamps_at_documented_floor() {
        // Without the clamp, 500 × 0.5^k underflows to subnormals around
        // k ≈ 1080 and to exactly 0 shortly after; a long chain must
        // instead settle at the floor.
        let config = GibbsConfig {
            gamma: 500.0,
            gamma_decay: 0.5,
            ..GibbsConfig::paper_default()
        };
        let mut gamma = config.gamma;
        for _ in 0..100_000 {
            gamma = decayed_gamma(gamma, &config);
            assert!(gamma >= GibbsConfig::GAMMA_FLOOR, "underflowed: {gamma:e}");
            assert!(gamma.is_normal());
        }
        assert_eq!(gamma, GibbsConfig::GAMMA_FLOOR);
        // At the floor, ties keep their 50% acceptance — the behavior
        // the degenerate γ = 0 branch would silently change mid-run.
        assert_eq!(acceptance_probability(5.0, 5.0, gamma), 0.5);
        assert_eq!(acceptance_probability(5.0, 5.0, 0.0), 0.0);

        // Deliberate tiny-γ (and γ = 0 greedy) configurations are
        // respected: the clamp never raises γ above the configured start.
        let greedy = GibbsConfig {
            gamma: 0.0,
            gamma_decay: 0.5,
            ..GibbsConfig::paper_default()
        };
        assert_eq!(decayed_gamma(0.0, &greedy), 0.0);
        let tiny = GibbsConfig {
            gamma: 1e-12,
            gamma_decay: 0.5,
            ..GibbsConfig::paper_default()
        };
        let mut g = tiny.gamma;
        for _ in 0..200 {
            g = decayed_gamma(g, &tiny);
        }
        assert_eq!(g, 1e-12);

        // gamma_decay = 0 is the deliberate hot-start-then-instant-greedy
        // configuration: the floor must not resurrect a temperature.
        let instant_greedy = GibbsConfig {
            gamma: 500.0,
            gamma_decay: 0.0,
            ..GibbsConfig::paper_default()
        };
        assert_eq!(decayed_gamma(500.0, &instant_greedy), 0.0);
        assert_eq!(decayed_gamma(0.0, &instant_greedy), 0.0);
    }

    #[test]
    fn long_annealed_chain_stays_well_defined() {
        // A long aggressively-annealed chain: every acceptance draw must
        // see a valid probability (rng.random_bool panics outside
        // [0, 1]) and the result must dominate the plain greedy limit.
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let config = GibbsConfig {
            iterations: 5_000,
            gamma: 500.0,
            gamma_decay: 0.5, // γ hits the floor within ~40 iterations
            parallel_isolated: false,
            max_init_attempts: 8,
            restarts: 1,
            warm_iterations: 12,
            evaluator: EvalOptions::default(),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let sel = sample(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(sel.evaluation.objective.is_finite());
    }

    #[test]
    fn propose_different_never_repeats() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for len in 2..6usize {
            for cur in 0..len {
                for _ in 0..50 {
                    let p = propose_different(&mut rng, cur, len);
                    assert_ne!(p, cur);
                    assert!(p < len);
                }
            }
        }
    }

    /// Two separate diamonds: pairs are isolated from each other.
    fn two_diamonds() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..8).map(|_| b.add_node(10)).collect();
        let good = LinkModel::new(0.85).unwrap();
        let bad = LinkModel::new(0.25).unwrap();
        // Diamond A over nodes 0..4.
        b.add_edge(n[0], n[1], 5, good).unwrap();
        b.add_edge(n[1], n[3], 5, good).unwrap();
        b.add_edge(n[0], n[2], 5, bad).unwrap();
        b.add_edge(n[2], n[3], 5, bad).unwrap();
        // Diamond B over nodes 4..8.
        b.add_edge(n[4], n[5], 5, good).unwrap();
        b.add_edge(n[5], n[7], 5, good).unwrap();
        b.add_edge(n[4], n[6], 5, bad).unwrap();
        b.add_edge(n[6], n[7], 5, bad).unwrap();
        b.build()
    }

    fn owned_candidates(net: &QdnNetwork, pairs: &[SdPair]) -> Vec<(SdPair, Vec<Path>)> {
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        pairs
            .iter()
            .map(|&p| (p, cr.routes(net, p).to_vec()))
            .collect()
    }

    fn to_cands(owned: &[(SdPair, Vec<Path>)]) -> Vec<Candidates<'_>> {
        owned
            .iter()
            .map(|(pair, routes)| Candidates {
                pair: *pair,
                routes,
            })
            .collect()
    }

    #[test]
    fn isolated_pairs_detected() {
        let net = two_diamonds();
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        assert_eq!(isolated_pairs(&cands), vec![true, true]);

        // Same diamond: overlapping -> not isolated.
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(1), NodeId(2)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        assert_eq!(isolated_pairs(&cands), vec![false, false]);
    }

    #[test]
    fn gibbs_matches_exhaustive_on_small_instance() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let method = AllocationMethod::default();
        let exact = exhaustive::search(&ctx, &cands, &method, EvalOptions::default()).unwrap();

        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let config = GibbsConfig {
            iterations: 80,
            gamma: 100.0,
            gamma_decay: 0.95,
            parallel_isolated: false,
            max_init_attempts: 8,
            restarts: 1,
            warm_iterations: 12,
            evaluator: EvalOptions::default(),
        };
        let gibbs = sample(&ctx, &cands, &method, &config, &mut rng).unwrap();
        assert!(
            gibbs.evaluation.objective >= exact.evaluation.objective - 1e-6,
            "gibbs {} vs exhaustive {}",
            gibbs.evaluation.objective,
            exact.evaluation.objective
        );
    }

    #[test]
    fn parallel_variant_matches_serial_quality() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let method = AllocationMethod::default();
        let exact = exhaustive::search(&ctx, &cands, &method, EvalOptions::default()).unwrap();

        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let config = GibbsConfig {
            iterations: 40,
            gamma: 100.0,
            gamma_decay: 0.9,
            parallel_isolated: true,
            max_init_attempts: 8,
            restarts: 1,
            warm_iterations: 12,
            evaluator: EvalOptions::default(),
        };
        let gibbs = sample(&ctx, &cands, &method, &config, &mut rng).unwrap();
        assert!(
            gibbs.evaluation.objective >= exact.evaluation.objective - 1e-6,
            "parallel gibbs {} vs exhaustive {}",
            gibbs.evaluation.objective,
            exact.evaluation.objective
        );
    }

    #[test]
    fn infeasible_everywhere_returns_none() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::clamped(&net, vec![10; 8], vec![0; 8]);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [SdPair::new(NodeId(0), NodeId(3)).unwrap()];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert!(sample(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            &GibbsConfig::default(),
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn single_route_pairs_are_stable() {
        // With one candidate per pair, Gibbs has nothing to flip and must
        // return that unique profile.
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pair = SdPair::new(NodeId(0), NodeId(1)).unwrap(); // adjacent: 1 direct route first
        let mut cr = CandidateRoutes::new(RouteLimits {
            max_routes: 1,
            max_hops: 4,
        });
        let routes = cr.routes(&net, pair).to_vec();
        assert_eq!(routes.len(), 1);
        let cands = vec![Candidates {
            pair,
            routes: &routes,
        }];
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sel = sample(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            &GibbsConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel.indices, vec![0]);
    }

    #[test]
    fn restarts_return_best_chain() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let method = AllocationMethod::default();
        let config = GibbsConfig {
            iterations: 30,
            gamma: 100.0,
            gamma_decay: 0.9,
            parallel_isolated: false,
            max_init_attempts: 8,
            restarts: 1,
            warm_iterations: 12,
            evaluator: EvalOptions::default(),
        };
        let multi = sample_restarts(&ctx, &cands, &method, &config, &[1, 2, 3, 4]).unwrap();
        // Each individual chain is dominated by the multi-chain best.
        for seed in [1u64, 2, 3, 4] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            if let Some(single) = sample(&ctx, &cands, &method, &config, &mut rng) {
                assert!(multi.evaluation.objective >= single.evaluation.objective - 1e-12);
            }
        }
    }

    #[test]
    fn gibbs_config_serde_round_trip() {
        let cfg = GibbsConfig {
            iterations: 12,
            gamma: 77.5,
            gamma_decay: 0.9,
            parallel_isolated: true,
            max_init_attempts: 3,
            restarts: 4,
            warm_iterations: 12,
            evaluator: EvalOptions::static_partition(),
        };
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("\"restarts\":4"), "{json}");
        assert!(json.contains("\"warm_iterations\":12"), "{json}");
        let back: GibbsConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        // The paper default stays a single chain.
        assert_eq!(GibbsConfig::paper_default().restarts, 1);
        // Loud compat break (PR 5): `warm_iterations` is required.
        let missing = json.replace("\"warm_iterations\":12,", "");
        assert!(serde_json::from_str::<GibbsConfig>(&missing).is_err());
    }

    #[test]
    fn run_dispatches_to_multi_chain() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let method = AllocationMethod::default();
        let config = GibbsConfig {
            iterations: 30,
            gamma: 100.0,
            gamma_decay: 0.9,
            parallel_isolated: false,
            max_init_attempts: 8,
            restarts: 3,
            warm_iterations: 12,
            evaluator: EvalOptions::default(),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let multi = run(&ctx, &cands, &method, &config, &mut rng).unwrap();
        // Multi-chain keeps the best chain: it must dominate a single
        // chain run with each of the seeds the same RNG stream yields.
        let mut seed_rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..config.restarts {
            let seed: u64 = seed_rng.random();
            let mut chain_rng = rand::rngs::StdRng::seed_from_u64(seed);
            if let Some(single) = sample(&ctx, &cands, &method, &config, &mut chain_rng) {
                assert!(multi.evaluation.objective >= single.evaluation.objective - 1e-12);
            }
        }
    }

    #[test]
    fn warm_profile_seed_starts_from_previous_selection() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let method = AllocationMethod::default();
        let config = GibbsConfig {
            iterations: 60,
            evaluator: EvalOptions::warm_seeded(),
            ..GibbsConfig::paper_default()
        };
        let mut session = SelectorSession::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        // Slot 1: a long chain settles on a profile; the session must
        // remember it per pair.
        let mut evaluator =
            ProfileEvaluator::new_in(&mut session, &ctx, &cands, &method, config.evaluator);
        let first = sample_seeded(&mut evaluator, &cands, &config, &mut rng, None).unwrap();
        evaluator.retire(&mut session);
        session.record_selection(&cands, &first.indices);
        assert_eq!(session.remembered_pairs(), 2);
        let seed = session.seed_indices(&cands).unwrap();
        assert_eq!(seed, first.indices);

        // Slot 2, zero-iteration budgets on BOTH paths (a seeded chain
        // runs `warm_iterations`, not `iterations`): the chain can only
        // return its start, which with warm seeding is exactly the
        // previous selection.
        let frozen = GibbsConfig {
            iterations: 0,
            warm_iterations: 0,
            ..config
        };
        let second = run_in(&mut session, &ctx, &cands, &method, &frozen, &mut rng).unwrap();
        assert_eq!(second.indices, first.indices);

        // A pair the session has never seen seeds at its shortest
        // candidate (index 0); remembered pairs keep their route. Two
        // of three pairs remembered = a strict majority, so the seed
        // engages.
        let more_pairs = [
            pairs[0],
            pairs[1],
            SdPair::new(NodeId(1), NodeId(2)).unwrap(), // never selected
        ];
        let more_owned = owned_candidates(&net, &more_pairs);
        let more_cands = to_cands(&more_owned);
        let seed = session.seed_indices(&more_cands).unwrap();
        assert_eq!(seed[0], second.indices[0]);
        assert_eq!(seed[1], second.indices[1]);
        assert_eq!(seed[2], 0);

        // At exactly half coverage (1 of 2 pairs remembered) there is
        // no strict majority and no seed.
        let half_pairs = [pairs[0], more_pairs[2]];
        let half_owned = owned_candidates(&net, &half_pairs);
        let half_cands = to_cands(&half_owned);
        assert!(session.seed_indices(&half_cands).is_none());

        // An empty session (or one whose routes no longer fit) yields no
        // seed at all.
        assert!(SelectorSession::new().seed_indices(&cands).is_none());

        // A slot that selects nothing clears the profile memory: the
        // slot after it must start cold, never from a two-slot-old
        // profile.
        let selector = crate::route_selection::RouteSelector::Gibbs(frozen);
        let starved = CapacitySnapshot::clamped(&net, vec![10; 8], vec![0; 8]);
        let starved_ctx = PerSlotContext::oscar(&net, &starved, 800.0, 1.0);
        assert!(selector
            .select_in(&mut session, &starved_ctx, &cands, &method, &mut rng)
            .is_none());
        assert_eq!(session.remembered_pairs(), 0);
        assert!(session.seed_indices(&cands).is_none());
    }

    #[test]
    fn restarts_handle_infeasible() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::clamped(&net, vec![10; 8], vec![0; 8]);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [SdPair::new(NodeId(0), NodeId(3)).unwrap()];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        assert!(sample_restarts(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            &GibbsConfig::default(),
            &[1, 2]
        )
        .is_none());
    }
}
