//! Route selection for the per-slot problem (paper §IV-B-2).
//!
//! Given candidate sets `R(φ)` and the qubit-allocation oracle
//! (Algorithm 2), route selection picks one route per SD pair to maximize
//! the per-slot objective `f(r, N*(r))`:
//!
//! * [`exhaustive`] — Eq. 13: enumerate the product space (exact, only for
//!   small `F`/`R`),
//! * [`gibbs`] — Algorithm 3: Gibbs sampling with the Eq. 15 acceptance
//!   probability, including the disjoint-pair parallel evolution from the
//!   paper's remark,
//! * [`greedy`] — γ→0 limit: coordinate-wise best-response local search
//!   (an ablation; the paper's remark warns it can stick in local optima).

pub mod exhaustive;
pub mod gibbs;
pub mod greedy;

use qdn_graph::Path;
use qdn_net::SdPair;
use serde::{Deserialize, Serialize};

use crate::allocation::AllocationMethod;
use crate::problem::{PerSlotContext, ProfileEvaluation};
use crate::profile_eval::{EvalOptions, ProfileEvaluator, SelectorSession};

pub use gibbs::GibbsConfig;

/// The candidate routes of one SD pair (non-empty).
#[derive(Debug, Clone)]
pub struct Candidates<'a> {
    /// The SD pair.
    pub pair: SdPair,
    /// Its candidate routes `R(φ)`, ordered by hops.
    pub routes: &'a [Path],
}

/// Route selection outcome: per-pair route indices (into each pair's
/// candidate list) plus the allocation evaluation of that profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// `indices[i]` selects `candidates[i].routes[indices[i]]`.
    pub indices: Vec<usize>,
    /// Allocations and objective for the selected profile.
    pub evaluation: ProfileEvaluation,
}

/// Builds the `(pair, route)` profile described by `indices`.
pub fn profile_of<'a>(candidates: &[Candidates<'a>], indices: &[usize]) -> Vec<(SdPair, &'a Path)> {
    candidates
        .iter()
        .zip(indices)
        .map(|(c, &i)| (c.pair, &c.routes[i]))
        .collect()
}

/// Evaluates the profile described by `indices`; `None` when infeasible.
pub fn evaluate_indices(
    ctx: &PerSlotContext<'_>,
    candidates: &[Candidates<'_>],
    indices: &[usize],
    method: &AllocationMethod,
) -> Option<ProfileEvaluation> {
    let profile = profile_of(candidates, indices);
    ctx.evaluate(&profile, method)
}

/// The route-selection strategy used by a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RouteSelector {
    /// Exact product-space search (Eq. 13), capped at `max_combinations`
    /// profiles; falls back to Gibbs with the given configuration when
    /// the space is larger.
    Exhaustive {
        /// Upper bound on the number of evaluated combinations.
        max_combinations: usize,
        /// Gibbs configuration used when the product space exceeds
        /// `max_combinations` (previously an implicit
        /// `GibbsConfig::default()`).
        fallback: GibbsConfig,
        /// Profile-evaluator options for the enumeration itself (the
        /// Gibbs fallback carries its own). **Required since PR 4** —
        /// see MIGRATION.md.
        evaluator: EvalOptions,
    },
    /// Algorithm 3 (Gibbs sampling).
    Gibbs(GibbsConfig),
    /// Coordinate best-response until stable.
    GreedyLocal {
        /// Maximum full rounds over the pairs.
        max_rounds: usize,
        /// Profile-evaluator options. **Required since PR 4** — see
        /// MIGRATION.md.
        evaluator: EvalOptions,
    },
    /// Always the first (fewest-hops) candidate.
    First,
    /// A uniformly random candidate per pair (ablation).
    Random,
}

impl RouteSelector {
    /// Exhaustive search capped at `max_combinations`, falling back to
    /// the default Gibbs configuration on larger spaces.
    pub fn exhaustive(max_combinations: usize) -> Self {
        RouteSelector::Exhaustive {
            max_combinations,
            fallback: GibbsConfig::default(),
            evaluator: EvalOptions::default(),
        }
    }

    /// Selects routes for every candidate set, or `None` if no feasible
    /// profile was found.
    ///
    /// Builds a throwaway [`SelectorSession`] per call — the
    /// fresh-per-slot path. Online drivers that select every slot should
    /// hold one session for the run and call
    /// [`RouteSelector::select_in`] instead.
    pub fn select(
        &self,
        ctx: &PerSlotContext<'_>,
        candidates: &[Candidates<'_>],
        method: &AllocationMethod,
        rng: &mut dyn rand::Rng,
    ) -> Option<Selection> {
        let mut session = SelectorSession::new();
        self.select_in(&mut session, ctx, candidates, method, rng)
    }

    /// [`RouteSelector::select`] threaded through a slot-spanning
    /// [`SelectorSession`]: the profile evaluator recycles the session's
    /// arena, memos, and λ warm-start stores, and the session records
    /// this slot's selected routes as the next slot's seed. With
    /// `warm_profile_seed` and `warm_start` off, results are
    /// bit-identical to a fresh [`RouteSelector::select`] per slot (the
    /// `session_matches_fresh_per_slot` proptest enforces it); see
    /// [`crate::profile_eval`]'s "Persistent selection sessions" docs
    /// for the invariants.
    pub fn select_in(
        &self,
        session: &mut SelectorSession,
        ctx: &PerSlotContext<'_>,
        candidates: &[Candidates<'_>],
        method: &AllocationMethod,
        rng: &mut dyn rand::Rng,
    ) -> Option<Selection> {
        if candidates.is_empty() {
            // An empty slot serves nothing: the previous profile must
            // not survive it as a "previous slot" seed.
            session.record_selection(&[], &[]);
            return Some(Selection {
                indices: Vec::new(),
                evaluation: ProfileEvaluation {
                    allocations: Vec::new(),
                    objective: 0.0,
                },
            });
        }
        let result = match self {
            RouteSelector::Exhaustive {
                max_combinations,
                fallback,
                evaluator,
            } => {
                let combos: usize = candidates
                    .iter()
                    .map(|c| c.routes.len())
                    .try_fold(1usize, |acc, n| acc.checked_mul(n))
                    .unwrap_or(usize::MAX);
                if combos <= *max_combinations {
                    let mut eval =
                        ProfileEvaluator::new_in(session, ctx, candidates, method, *evaluator);
                    let selection = exhaustive::search_with(&mut eval, candidates);
                    eval.retire(session);
                    selection
                } else {
                    gibbs::run_in(session, ctx, candidates, method, fallback, rng)
                }
            }
            RouteSelector::Gibbs(config) => {
                gibbs::run_in(session, ctx, candidates, method, config, rng)
            }
            RouteSelector::GreedyLocal {
                max_rounds,
                evaluator,
            } => greedy::local_search_in(
                session,
                ctx,
                candidates,
                method,
                *max_rounds,
                *evaluator,
                rng,
            ),
            // First/Random evaluate exactly one profile, so the
            // memoizing evaluator has nothing to amortize — the direct
            // build is cheaper (and bit-identical by construction).
            RouteSelector::First => {
                let indices = vec![0; candidates.len()];
                evaluate_indices(ctx, candidates, &indices, method).map(|evaluation| Selection {
                    indices,
                    evaluation,
                })
            }
            RouteSelector::Random => {
                use rand::RngExt;
                let indices: Vec<usize> = candidates
                    .iter()
                    .map(|c| rng.random_range(0..c.routes.len()))
                    .collect();
                evaluate_indices(ctx, candidates, &indices, method).map(|evaluation| Selection {
                    indices,
                    evaluation,
                })
            }
        };
        // Record what this slot actually selected — including "nothing"
        // on failure, so a later slot can never warm-seed from a
        // profile that is not the immediately preceding selection.
        match &result {
            Some(selection) => session.record_selection(candidates, &selection.indices),
            None => session.record_selection(&[], &[]),
        }
        result
    }

    /// Short label for experiment outputs.
    pub fn label(&self) -> &'static str {
        match self {
            RouteSelector::Exhaustive { .. } => "exhaustive",
            RouteSelector::Gibbs(_) => "gibbs",
            RouteSelector::GreedyLocal { .. } => "greedy-local",
            RouteSelector::First => "first-route",
            RouteSelector::Random => "random",
        }
    }
}

impl Default for RouteSelector {
    fn default() -> Self {
        RouteSelector::Gibbs(GibbsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_graph::NodeId;
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_net::routes::{CandidateRoutes, RouteLimits};
    use qdn_net::{CapacitySnapshot, QdnNetwork};
    use qdn_physics::link::LinkModel;
    use rand::SeedableRng;

    /// Diamond 0-1-3 / 0-2-3 where the top path has much better links, so
    /// the optimal route choice is unambiguous.
    fn asymmetric_diamond() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(12)).collect();
        let good = LinkModel::new(0.9).unwrap();
        let bad = LinkModel::new(0.2).unwrap();
        b.add_edge(n[0], n[1], 6, good).unwrap();
        b.add_edge(n[1], n[3], 6, good).unwrap();
        b.add_edge(n[0], n[2], 6, bad).unwrap();
        b.add_edge(n[2], n[3], 6, bad).unwrap();
        b.build()
    }

    fn routes_for(net: &QdnNetwork, pair: SdPair) -> Vec<Path> {
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        cr.routes(net, pair).to_vec()
    }

    #[test]
    fn all_selectors_pick_feasible_profiles() {
        let net = asymmetric_diamond();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 500.0, 1.0);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let routes = routes_for(&net, pair);
        let cands = vec![Candidates {
            pair,
            routes: &routes,
        }];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for selector in [
            RouteSelector::exhaustive(100),
            RouteSelector::Gibbs(GibbsConfig::default()),
            RouteSelector::GreedyLocal {
                max_rounds: 5,
                evaluator: EvalOptions::default(),
            },
            RouteSelector::First,
            RouteSelector::Random,
        ] {
            let sel = selector
                .select(&ctx, &cands, &AllocationMethod::default(), &mut rng)
                .unwrap_or_else(|| panic!("{} failed", selector.label()));
            assert_eq!(sel.indices.len(), 1);
            assert!(sel.evaluation.objective.is_finite());
        }
    }

    #[test]
    fn optimizing_selectors_find_the_good_route() {
        let net = asymmetric_diamond();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 500.0, 1.0);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let routes = routes_for(&net, pair);
        // Identify which candidate index is the good (0-1-3) route.
        let good_idx = routes
            .iter()
            .position(|r| r.contains_node(NodeId(1)))
            .unwrap();
        let cands = vec![Candidates {
            pair,
            routes: &routes,
        }];
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for selector in [
            RouteSelector::exhaustive(100),
            RouteSelector::Gibbs(GibbsConfig {
                iterations: 60,
                ..GibbsConfig::default()
            }),
            RouteSelector::GreedyLocal {
                max_rounds: 5,
                evaluator: EvalOptions::default(),
            },
        ] {
            let sel = selector
                .select(&ctx, &cands, &AllocationMethod::default(), &mut rng)
                .unwrap();
            assert_eq!(
                sel.indices[0],
                good_idx,
                "{} should pick the high-probability route",
                selector.label()
            );
        }
    }

    #[test]
    fn empty_candidates_trivial_selection() {
        let net = asymmetric_diamond();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 500.0, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sel = RouteSelector::default()
            .select(&ctx, &[], &AllocationMethod::default(), &mut rng)
            .unwrap();
        assert!(sel.indices.is_empty());
        assert_eq!(sel.evaluation.objective, 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> = [
            RouteSelector::exhaustive(1).label(),
            RouteSelector::default().label(),
            RouteSelector::GreedyLocal {
                max_rounds: 1,
                evaluator: EvalOptions::default(),
            }
            .label(),
            RouteSelector::First.label(),
            RouteSelector::Random.label(),
        ]
        .into_iter()
        .collect();
        assert_eq!(labels.len(), 5);
    }
}
