//! Coordinate best-response route selection (the γ→0 limit of Gibbs).
//!
//! Rounds of "for each pair, switch to its best route holding the others
//! fixed" until a full round changes nothing. The paper's remark 1 notes
//! that this pure greedy can get stuck in local optima — which is exactly
//! why Algorithm 3 keeps a positive temperature; this implementation
//! exists as the natural ablation.
//!
//! Coordinate steps evaluate through the incremental
//! [`ProfileEvaluator`]: sweeping pair `i`'s alternatives re-solves only
//! `i`'s coupling component, and the sweep's return to the incumbent
//! profile is a memo hit.

use rand::RngExt;

use crate::allocation::AllocationMethod;
use crate::problem::PerSlotContext;
use crate::profile_eval::{EvalOptions, ProfileEvaluator, SelectorSession};
use crate::route_selection::{Candidates, Selection};

/// Local search over route profiles.
///
/// Starts from a random feasible profile (falling back to all-shortest),
/// then iterates best-response rounds. Returns `None` if no feasible
/// starting profile exists.
pub fn local_search(
    ctx: &PerSlotContext<'_>,
    candidates: &[Candidates<'_>],
    method: &AllocationMethod,
    max_rounds: usize,
    options: EvalOptions,
    rng: &mut dyn rand::Rng,
) -> Option<Selection> {
    let mut evaluator = ProfileEvaluator::new(ctx, candidates, method, options);
    local_search_with(&mut evaluator, candidates, max_rounds, rng, None)
}

/// [`local_search`] backed by a [`SelectorSession`]: the evaluator
/// recycles the session state, and with
/// [`EvalOptions::warm_profile_seed`] set the search starts from the
/// previous slot's selection when the session remembers one (falling
/// back to the standard random/all-shortest initialisation). With warm
/// seeding off this is bit-identical to [`local_search`].
pub fn local_search_in(
    session: &mut SelectorSession,
    ctx: &PerSlotContext<'_>,
    candidates: &[Candidates<'_>],
    method: &AllocationMethod,
    max_rounds: usize,
    options: EvalOptions,
    rng: &mut dyn rand::Rng,
) -> Option<Selection> {
    let seed = options
        .warm_profile_seed
        .then(|| session.seed_indices(candidates))
        .flatten();
    let mut evaluator = ProfileEvaluator::new_in(session, ctx, candidates, method, options);
    let selection = local_search_with(&mut evaluator, candidates, max_rounds, rng, seed.as_deref());
    evaluator.retire(session);
    selection
}

/// The coordinate best-response loop over a caller-provided evaluator
/// and optional warm starting profile.
fn local_search_with(
    evaluator: &mut ProfileEvaluator<'_>,
    candidates: &[Candidates<'_>],
    max_rounds: usize,
    rng: &mut dyn rand::Rng,
    seed: Option<&[usize]>,
) -> Option<Selection> {
    let k = candidates.len();
    if k == 0 {
        return evaluator.evaluate(&[]).map(|evaluation| Selection {
            indices: Vec::new(),
            evaluation,
        });
    }

    // Initial profile: the warm seed when given and feasible, then
    // random, then shortest fallback.
    let mut current: Option<(Vec<usize>, f64)> = None;
    if let Some(seed) = seed {
        debug_assert_eq!(seed.len(), k);
        if let Some(objective) = evaluator.evaluate_objective(seed) {
            current = Some((seed.to_vec(), objective));
        }
    }
    if current.is_none() {
        let indices: Vec<usize> = candidates
            .iter()
            .map(|c| rng.random_range(0..c.routes.len()))
            .collect();
        match evaluator.evaluate_objective(&indices) {
            Some(objective) => current = Some((indices, objective)),
            None => {
                let shortest = vec![0; k];
                if let Some(objective) = evaluator.evaluate_objective(&shortest) {
                    current = Some((shortest, objective));
                }
            }
        }
    }
    let (mut indices, mut f_cur) = current?;

    for _ in 0..max_rounds {
        let mut improved = false;
        for i in 0..k {
            let original = indices[i];
            let mut best_idx = original;
            let mut best_f = f_cur;
            for alt in 0..candidates[i].routes.len() {
                if alt == original {
                    continue;
                }
                indices[i] = alt;
                // Declared coordinate move (see the evaluator's move
                // hooks): only pair `i` differs from the last proposal.
                if let Some(objective) = evaluator.evaluate_objective_move(&indices, i) {
                    if objective > best_f {
                        best_f = objective;
                        best_idx = alt;
                    }
                }
            }
            indices[i] = best_idx;
            if best_idx != original {
                f_cur = best_f;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let evaluation = evaluator
        .evaluate(&indices)
        .expect("final profile evaluated feasible during search");
    Some(Selection {
        indices,
        evaluation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route_selection::exhaustive;
    use qdn_graph::{NodeId, Path};
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_net::routes::{CandidateRoutes, RouteLimits};
    use qdn_net::{CapacitySnapshot, QdnNetwork, SdPair};
    use qdn_physics::link::LinkModel;
    use rand::SeedableRng;

    fn diamond() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(10)).collect();
        let good = LinkModel::new(0.9).unwrap();
        let bad = LinkModel::new(0.2).unwrap();
        b.add_edge(n[0], n[1], 6, good).unwrap();
        b.add_edge(n[1], n[3], 6, good).unwrap();
        b.add_edge(n[0], n[2], 6, bad).unwrap();
        b.add_edge(n[2], n[3], 6, bad).unwrap();
        b.build()
    }

    #[test]
    fn converges_to_exhaustive_on_single_pair() {
        let net = diamond();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 500.0, 1.0);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let routes: Vec<Path> = cr.routes(&net, pair).to_vec();
        let cands = vec![Candidates {
            pair,
            routes: &routes,
        }];
        let method = AllocationMethod::default();
        let exact = exhaustive::search(&ctx, &cands, &method, EvalOptions::default()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let local =
            local_search(&ctx, &cands, &method, 10, EvalOptions::default(), &mut rng).unwrap();
        assert!((local.evaluation.objective - exact.evaluation.objective).abs() < 1e-9);
    }

    #[test]
    fn stops_after_stable_round() {
        // max_rounds much larger than needed; should terminate early and
        // still produce a feasible profile.
        let net = diamond();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 500.0, 1.0);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let routes: Vec<Path> = cr.routes(&net, pair).to_vec();
        let cands = vec![Candidates {
            pair,
            routes: &routes,
        }];
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let sel = local_search(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            1000,
            EvalOptions::default(),
            &mut rng,
        )
        .unwrap();
        assert!(sel.evaluation.objective.is_finite());
    }

    #[test]
    fn infeasible_returns_none() {
        let net = diamond();
        let snap = CapacitySnapshot::clamped(&net, vec![10; 4], vec![0; 4]);
        let ctx = PerSlotContext::oscar(&net, &snap, 500.0, 1.0);
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let routes: Vec<Path> = cr.routes(&net, pair).to_vec();
        let cands = vec![Candidates {
            pair,
            routes: &routes,
        }];
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        assert!(local_search(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            5,
            EvalOptions::default(),
            &mut rng
        )
        .is_none());
    }
}
