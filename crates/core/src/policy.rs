//! The policy interface the simulator drives.

use qdn_net::QdnNetwork;
use serde::{Deserialize, Serialize};

use crate::types::{Decision, SlotState};

/// Observable internals of a policy, recorded by the simulator each slot
/// (used by the Fig. 3/7/8 time series).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyDiagnostics {
    /// Virtual queue length, for Lyapunov policies.
    pub virtual_queue: Option<f64>,
    /// Budget units spent so far (policies that track spending).
    pub budget_spent: Option<u64>,
}

/// An online entanglement-routing policy: observes one slot, returns the
/// routes and allocations for that slot.
///
/// Implementations must be deterministic given the `rng` stream so
/// experiments are reproducible.
pub trait RoutingPolicy: std::fmt::Debug + Send {
    /// Human-readable name for experiment outputs (e.g. `"OSCAR"`).
    fn name(&self) -> String;

    /// Decides routes and qubit allocations for slot `slot`.
    fn decide(
        &mut self,
        network: &QdnNetwork,
        slot: &SlotState,
        rng: &mut dyn rand::Rng,
    ) -> Decision;

    /// Clears all internal state (virtual queues, spent budget, caches)
    /// for a fresh trial.
    fn reset(&mut self);

    /// Internal state snapshot for metric collection.
    fn diagnostics(&self) -> PolicyDiagnostics {
        PolicyDiagnostics::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial policy for trait-object sanity checks.
    #[derive(Debug)]
    struct Noop;

    impl RoutingPolicy for Noop {
        fn name(&self) -> String {
            "noop".into()
        }

        fn decide(
            &mut self,
            _network: &QdnNetwork,
            slot: &SlotState,
            _rng: &mut dyn rand::Rng,
        ) -> Decision {
            Decision::new(Vec::new(), slot.requests().to_vec())
        }

        fn reset(&mut self) {}
    }

    #[test]
    fn trait_object_usable() {
        use qdn_net::network::QdnNetworkBuilder;
        use qdn_net::CapacitySnapshot;
        use rand::SeedableRng;

        let mut b = QdnNetworkBuilder::new();
        let a = b.add_node(4);
        let c = b.add_node(4);
        b.add_edge(a, c, 2, qdn_physics::link::LinkModel::new(0.5).unwrap())
            .unwrap();
        let net = b.build();
        let mut policy: Box<dyn RoutingPolicy> = Box::new(Noop);
        let slot = SlotState::new(0, vec![], CapacitySnapshot::full(&net));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let d = policy.decide(&net, &slot, &mut rng);
        assert_eq!(d.total_cost(), 0);
        assert_eq!(policy.name(), "noop");
        assert_eq!(policy.diagnostics(), PolicyDiagnostics::default());
    }
}
