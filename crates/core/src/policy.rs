//! The policy interface the simulator drives.

use qdn_net::routes::CandidateRoutes;
use qdn_net::QdnNetwork;
use serde::{Deserialize, Serialize};

use crate::profile_eval::SelectorSession;
use crate::types::{Decision, SlotState};

/// Observable internals of a policy, recorded by the simulator each slot
/// (used by the Fig. 3/7/8 time series).
///
/// **Loud compat break (PR 6):** the `churn` field is required when
/// deserializing recorded diagnostics — see MIGRATION.md.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyDiagnostics {
    /// Virtual queue length, for Lyapunov policies.
    pub virtual_queue: Option<f64>,
    /// Budget units spent so far (policies that track spending).
    pub budget_spent: Option<u64>,
    /// Topology-churn handling of the most recent slot, for policies
    /// that run the session pipeline (`None` for policies that don't
    /// track churn).
    pub churn: Option<ChurnDiagnostics>,
}

/// What the last slot's topology churn cost a session policy: how much
/// candidate repair ran in the route cache, and how much memoized
/// evaluation state the selection session retained vs flushed. The
/// recovery-time metrics in `qdn-sim` aggregate these per failure
/// event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChurnDiagnostics {
    /// Links newly failed (capacity dropped to zero) this slot.
    pub failed_edges: u32,
    /// Links newly restored this slot.
    pub restored_edges: u32,
    /// Tracked pairs whose candidate set changed under this slot's
    /// repair.
    pub affected_pairs: u32,
    /// Pairs whose candidates were re-derived by the incremental KSP
    /// maintainer (the rest were proven unaffected and skipped).
    pub routes_recomputed: u32,
    /// Yen searches the batch repair actually ran — at most one per
    /// affected pair per direction, however many edges died together
    /// (PR 9; a per-edge repair loop pays one per pair × edge).
    pub repair_yen_runs: u32,
    /// Repairs installed from prewarmed candidate sets (announced
    /// maintenance windows) instead of a live Yen search.
    pub prewarm_hits: u32,
    /// Static regions in the last evaluated slot.
    pub regions: u32,
    /// Regions whose session memos were flushed.
    pub regions_flushed: u32,
    /// Regions with no parked session state (first sighting / TTL).
    pub regions_fresh: u32,
    /// Memo entries carried live across the slot boundary.
    pub memo_entries_retained: u64,
    /// Memo entries invalidated by region flushes.
    pub memo_entries_flushed: u64,
    /// Exact-tuple λ seeds stored (λ survives churn by design).
    pub lambda_entries: u64,
}

impl ChurnDiagnostics {
    /// Collects the ledger from a policy's route cache and selection
    /// session after a slot decided through [`crate::engine::decide`]
    /// (or [`crate::engine::EngineState::churn_diagnostics`], which
    /// wraps this).
    pub fn collect(routes: &CandidateRoutes, session: &SelectorSession) -> Self {
        let churn = routes.last_churn();
        let inval = session.last_invalidation();
        ChurnDiagnostics {
            failed_edges: churn.failed.len() as u32,
            restored_edges: churn.restored.len() as u32,
            affected_pairs: churn.changed_pairs.len() as u32,
            routes_recomputed: churn.recomputed as u32,
            repair_yen_runs: churn.yen_runs as u32,
            prewarm_hits: churn.prewarm_hits as u32,
            regions: inval.regions,
            regions_flushed: inval.regions_flushed,
            regions_fresh: inval.regions_fresh,
            memo_entries_retained: inval.memo_entries_retained,
            memo_entries_flushed: inval.memo_entries_flushed,
            lambda_entries: inval.lambda_entries,
        }
    }
}

/// An online entanglement-routing policy: observes one slot, returns the
/// routes and allocations for that slot.
///
/// Implementations must be deterministic given the `rng` stream so
/// experiments are reproducible.
pub trait RoutingPolicy: std::fmt::Debug + Send {
    /// Human-readable name for experiment outputs (e.g. `"OSCAR"`).
    fn name(&self) -> String;

    /// Decides routes and qubit allocations for slot `slot`.
    fn decide(
        &mut self,
        network: &QdnNetwork,
        slot: &SlotState,
        rng: &mut dyn rand::Rng,
    ) -> Decision;

    /// Clears all internal state (virtual queues, spent budget, caches)
    /// for a fresh trial.
    fn reset(&mut self);

    /// Internal state snapshot for metric collection.
    fn diagnostics(&self) -> PolicyDiagnostics {
        PolicyDiagnostics::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial policy for trait-object sanity checks.
    #[derive(Debug)]
    struct Noop;

    impl RoutingPolicy for Noop {
        fn name(&self) -> String {
            "noop".into()
        }

        fn decide(
            &mut self,
            _network: &QdnNetwork,
            slot: &SlotState,
            _rng: &mut dyn rand::Rng,
        ) -> Decision {
            Decision::new(Vec::new(), slot.requests().to_vec())
        }

        fn reset(&mut self) {}
    }

    #[test]
    fn trait_object_usable() {
        use qdn_net::network::QdnNetworkBuilder;
        use qdn_net::CapacitySnapshot;
        use rand::SeedableRng;

        let mut b = QdnNetworkBuilder::new();
        let a = b.add_node(4);
        let c = b.add_node(4);
        b.add_edge(a, c, 2, qdn_physics::link::LinkModel::new(0.5).unwrap())
            .unwrap();
        let net = b.build();
        let mut policy: Box<dyn RoutingPolicy> = Box::new(Noop);
        let slot = SlotState::new(0, vec![], CapacitySnapshot::full(&net));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let d = policy.decide(&net, &slot, &mut rng);
        assert_eq!(d.total_cost(), 0);
        assert_eq!(policy.name(), "noop");
        assert_eq!(policy.diagnostics(), PolicyDiagnostics::default());
    }
}
