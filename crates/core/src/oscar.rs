//! OSCAR — Algorithm 1: the online user-centric entanglement routing
//! controller.
//!
//! Each slot: observe `Φ_t, Q^t, W^t`; solve P2 (route selection via
//! Algorithm 3 + qubit allocation via Algorithm 2) with the current
//! virtual-queue price `q_t`; then update the queue with the realized
//! cost (Eq. 7). No future statistics are used anywhere.

use qdn_net::routes::RouteLimits;
use qdn_net::QdnNetwork;
use serde::{Deserialize, Serialize};

use crate::allocation::AllocationMethod;
use crate::engine::{self, EngineState, SlotDecisionRequest};
use crate::lyapunov::VirtualQueue;
use crate::policy::{PolicyDiagnostics, RoutingPolicy};
use crate::problem::PerSlotContext;
use crate::profile_eval::SelectorSession;
use crate::route_selection::RouteSelector;
use crate::types::{Decision, SlotState};

/// Configuration of the OSCAR policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OscarConfig {
    /// The drift-plus-penalty weight `V` (paper default 2500).
    pub v: f64,
    /// Initial virtual queue `q0` (paper default 10).
    pub q0: f64,
    /// Total budget `C` over the horizon (paper default 5000).
    pub total_budget: f64,
    /// Horizon `T` in slots (paper default 200).
    pub horizon: u64,
    /// Candidate route limits (`R`, `L`).
    pub route_limits: RouteLimits,
    /// Route-selection strategy (Algorithm 3 by default).
    pub selector: RouteSelector,
    /// Qubit-allocation method (Algorithm 2 by default).
    pub allocation: AllocationMethod,
    /// Optional end-to-end fidelity target (the paper's §III-C
    /// extension): candidate routes whose post-swapping Werner fidelity
    /// falls below this value are excluded from `R(φ)` for the slot.
    pub fidelity_target: Option<f64>,
}

impl OscarConfig {
    /// The paper's §V-A defaults: `V = 2500`, `q0 = 10`, `C = 5000`,
    /// `T = 200`, Gibbs route selection with `γ = 500`.
    pub fn paper_default() -> Self {
        OscarConfig {
            v: 2500.0,
            q0: 10.0,
            total_budget: 5000.0,
            horizon: 200,
            route_limits: RouteLimits::paper_default(),
            selector: RouteSelector::default(),
            allocation: AllocationMethod::default(),
            fidelity_target: None,
        }
    }

    /// Returns a copy with a different `V` (Fig. 7 sweep).
    pub fn with_v(mut self, v: f64) -> Self {
        self.v = v;
        self
    }

    /// Returns a copy with a different `q0` (Fig. 8 sweep).
    pub fn with_q0(mut self, q0: f64) -> Self {
        self.q0 = q0;
        self
    }

    /// Returns a copy with a different budget (Fig. 5 sweep).
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.total_budget = budget;
        self
    }

    /// Returns a copy requiring every chosen route to meet the given
    /// end-to-end fidelity (the paper's fidelity-constraint extension).
    pub fn with_fidelity_target(mut self, target: f64) -> Self {
        self.fidelity_target = Some(target);
        self
    }
}

impl Default for OscarConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The OSCAR routing policy (paper Algorithm 1).
#[derive(Debug)]
pub struct OscarPolicy {
    config: OscarConfig,
    queue: VirtualQueue,
    /// Slot-spanning decision state (candidate cache, selection session,
    /// fidelity-filter cache) owned for the lifetime of a run; cleared
    /// by [`RoutingPolicy::reset`].
    state: EngineState,
    spent: u64,
}

impl OscarPolicy {
    /// Creates the policy from a configuration.
    pub fn new(config: OscarConfig) -> Self {
        let queue = VirtualQueue::new(config.q0, config.total_budget, config.horizon);
        let state = EngineState::new(config.route_limits);
        OscarPolicy {
            config,
            queue,
            state,
            spent: 0,
        }
    }

    /// The policy configuration.
    pub fn config(&self) -> &OscarConfig {
        &self.config
    }

    /// Current virtual-queue length `q_t`.
    pub fn queue_value(&self) -> f64 {
        self.queue.value()
    }

    /// The slot-spanning selection session (test/diagnostic access).
    pub fn session(&self) -> &SelectorSession {
        self.state.session()
    }

    /// The slot-spanning decision state (test/diagnostic access).
    pub fn engine_state(&self) -> &EngineState {
        &self.state
    }
}

impl RoutingPolicy for OscarPolicy {
    fn name(&self) -> String {
        "OSCAR".into()
    }

    fn decide(
        &mut self,
        network: &QdnNetwork,
        slot: &SlotState,
        rng: &mut dyn rand::Rng,
    ) -> Decision {
        let ctx =
            PerSlotContext::oscar(network, slot.snapshot(), self.config.v, self.queue.value());
        let decision = engine::decide(
            &mut self.state,
            SlotDecisionRequest {
                network,
                requests: slot.requests(),
                ctx: &ctx,
                selector: &self.config.selector,
                allocation: &self.config.allocation,
                fidelity_target: self.config.fidelity_target,
                rng,
            },
        );
        let cost = decision.total_cost();
        self.spent += cost;
        self.queue.update(cost);
        decision
    }

    fn reset(&mut self) {
        self.queue.reset();
        self.spent = 0;
        // Cross-slot decision state (λ stores, memo epochs, previous
        // profile, candidate cache) must not leak between trials; see
        // [`EngineState::reset`] for why the route cache is dropped too.
        self.state.reset();
    }

    fn diagnostics(&self) -> PolicyDiagnostics {
        PolicyDiagnostics {
            virtual_queue: Some(self.queue.value()),
            budget_spent: Some(self.spent),
            churn: Some(self.state.churn_diagnostics()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_net::workload::{UniformWorkload, Workload};
    use qdn_net::{CapacitySnapshot, NetworkConfig};
    use rand::SeedableRng;

    fn setup() -> (QdnNetwork, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
        (net, rng)
    }

    #[test]
    fn serves_requests_and_updates_queue() {
        let (net, mut rng) = setup();
        let mut policy = OscarPolicy::new(OscarConfig::paper_default());
        let mut wl = UniformWorkload::paper_default();
        let q_before = policy.queue_value();
        let requests = wl.requests(0, &net, &mut rng);
        let n_requests = requests.len();
        let slot = SlotState::new(0, requests, CapacitySnapshot::full(&net));
        let d = policy.decide(&net, &slot, &mut rng);
        assert_eq!(d.request_count(), n_requests);
        assert!(
            d.assignments().len() == n_requests,
            "default config serves all"
        );
        assert!(d.total_cost() >= 2 * d.assignments().len() as u64); // >= 1/edge, >= 2 edges... at least hops
                                                                     // Queue moved according to Eq. 7.
        let expected = (q_before + d.total_cost() as f64 - 25.0).max(0.0);
        assert!((policy.queue_value() - expected).abs() < 1e-9);
    }

    #[test]
    fn every_allocation_positive_and_capacities_respected() {
        let (net, mut rng) = setup();
        let mut policy = OscarPolicy::new(OscarConfig::paper_default());
        let mut wl = UniformWorkload::paper_default();
        for t in 0..20 {
            let requests = wl.requests(t, &net, &mut rng);
            let snap = CapacitySnapshot::full(&net);
            let slot = SlotState::new(t, requests, snap.clone());
            let d = policy.decide(&net, &slot, &mut rng);
            // Audit capacity constraints manually.
            let mut node_usage = vec![0u64; net.node_count()];
            let mut edge_usage = vec![0u64; net.edge_count()];
            for a in d.assignments() {
                for (e, &n) in a.route.edges().iter().zip(&a.allocation) {
                    assert!(n >= 1);
                    let (u, v) = net.graph().endpoints(*e);
                    node_usage[u.index()] += n as u64;
                    node_usage[v.index()] += n as u64;
                    edge_usage[e.index()] += n as u64;
                }
            }
            for v in net.graph().node_ids() {
                assert!(
                    node_usage[v.index()] <= snap.qubits(v) as u64,
                    "slot {t}: node {v} over capacity"
                );
            }
            for e in net.graph().edge_ids() {
                assert!(
                    edge_usage[e.index()] <= snap.channels(e) as u64,
                    "slot {t}: edge {e} over capacity"
                );
            }
        }
    }

    #[test]
    fn queue_price_suppresses_spending() {
        let (net, mut rng) = setup();
        // Force a huge queue by a tiny budget: after a few slots the
        // price dominates and allocations pin to the minimum.
        let cfg = OscarConfig::paper_default().with_budget(10.0);
        let mut policy = OscarPolicy::new(cfg);
        let mut wl = UniformWorkload::paper_default();
        let mut costs = Vec::new();
        // The queue must climb past V·(ln P(2) − ln P(1)) ≈ 927 before the
        // price pins allocations to the minimum; with ~8 units/slot of
        // overspend that takes on the order of 120 slots.
        for t in 0..160 {
            let requests = wl.requests(t, &net, &mut rng);
            let slot = SlotState::new(t, requests, CapacitySnapshot::full(&net));
            let d = policy.decide(&net, &slot, &mut rng);
            let min_cost: u64 = d.assignments().iter().map(|a| a.route.hops() as u64).sum();
            costs.push((d.total_cost(), min_cost));
        }
        // In the last slots the queue is large: spending equals the
        // mandatory minimum.
        for &(cost, min_cost) in &costs[155..] {
            assert_eq!(cost, min_cost, "queue price should pin to minimum");
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let (net, mut rng) = setup();
        let mut policy = OscarPolicy::new(OscarConfig::paper_default());
        let mut wl = UniformWorkload::paper_default();
        let requests = wl.requests(0, &net, &mut rng);
        let slot = SlotState::new(0, requests, CapacitySnapshot::full(&net));
        let _ = policy.decide(&net, &slot, &mut rng);
        policy.reset();
        assert_eq!(policy.queue_value(), 10.0);
        assert_eq!(policy.diagnostics().budget_spent, Some(0));
    }

    #[test]
    fn reset_fully_clears_session_state() {
        use crate::profile_eval::EvalOptions;
        use crate::route_selection::GibbsConfig;

        // A config where cross-slot state actually accumulates: profile
        // seeding on, dual warm starts on.
        let cfg = OscarConfig {
            selector: RouteSelector::Gibbs(GibbsConfig {
                evaluator: EvalOptions::warm_seeded(),
                ..GibbsConfig::paper_default()
            }),
            allocation: AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions {
                warm_start: true,
                ..qdn_solve::RelaxedOptions::default()
            }),
            ..OscarConfig::paper_default()
        };
        let (net, mut rng) = setup();
        let mut wl = UniformWorkload::paper_default();
        let slots: Vec<_> = (0..3)
            .map(|t| {
                let requests = wl.requests(t, &net, &mut rng);
                SlotState::new(t, requests, CapacitySnapshot::full(&net))
            })
            .collect();

        let mut policy = OscarPolicy::new(cfg.clone());
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(99);
        let first_run: Vec<_> = slots
            .iter()
            .map(|slot| policy.decide(&net, slot, &mut rng_a))
            .collect();
        assert!(policy.session().remembered_pairs() > 0, "profile memory");
        assert!(policy.session().lambda_entries() > 0, "λ memory");

        // Reset must clear every cross-slot store ...
        policy.reset();
        assert_eq!(policy.session().remembered_pairs(), 0);
        assert_eq!(policy.session().lambda_entries(), 0);

        // ... so a replay after reset is indistinguishable from a fresh
        // policy: no λ or profile leakage between trials.
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(99);
        let second_run: Vec<_> = slots
            .iter()
            .map(|slot| policy.decide(&net, slot, &mut rng_b))
            .collect();
        assert_eq!(first_run, second_run);
    }

    #[test]
    fn diagnostics_expose_queue() {
        let policy = OscarPolicy::new(OscarConfig::paper_default());
        let d = policy.diagnostics();
        assert_eq!(d.virtual_queue, Some(10.0));
        assert_eq!(d.budget_spent, Some(0));
    }

    #[test]
    fn zero_capacity_slot_serves_nothing() {
        let (net, mut rng) = setup();
        let mut policy = OscarPolicy::new(OscarConfig::paper_default());
        let snap =
            CapacitySnapshot::clamped(&net, vec![0; net.node_count()], vec![0; net.edge_count()]);
        let mut wl = UniformWorkload::paper_default();
        let requests = wl.requests(0, &net, &mut rng);
        let n = requests.len();
        let slot = SlotState::new(0, requests, snap);
        let d = policy.decide(&net, &slot, &mut rng);
        assert!(d.assignments().is_empty());
        assert_eq!(d.unserved().len(), n);
    }
}
