//! OSCAR — Online uSer-Centric entAnglement Routing — and its baselines.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`types`] — what a policy observes each slot ([`types::SlotState`])
//!   and what it returns ([`types::Decision`]),
//! * [`problem`] — the per-slot problem **P2**: building the allocation
//!   instance from a route profile and evaluating the drift-plus-penalty
//!   objective `f(r, N) = V·Σ log P − q_t·Σ n_e`,
//! * [`profile_eval`] — the incremental profile-evaluation engine: dense
//!   scratch buffers, coupling-component decomposition, and per-component
//!   memoization; every selector evaluates through it,
//! * [`allocation`] — **Algorithm 2**: continuous relaxation +
//!   down-round + surplus (Δ-optimal by Prop. 2), plus greedy/minimal
//!   ablations,
//! * [`route_selection`] — **Algorithm 3**: Gibbs sampling over the
//!   product route space (Eq. 15 acceptance), exhaustive search (Eq. 13),
//!   greedy local search, and the disjoint-pair parallel variant from the
//!   paper's remark,
//! * [`lyapunov`] — the virtual cost-deficit queue (Eq. 7),
//! * [`engine`] — the consolidated slot-decision facade
//!   ([`engine::EngineState`] + [`engine::decide`]) every per-slot driver
//!   calls: OSCAR, the baselines, the event-driven router, the daemon,
//! * [`oscar`] — **Algorithm 1**: the OSCAR controller tying it together,
//! * [`baselines`] — Myopic-Fixed and Myopic-Adaptive (§V-A-3) plus extra
//!   ablation policies,
//! * [`policy`] — the [`policy::RoutingPolicy`] trait the simulator
//!   drives,
//! * [`theory`] — the Δ, Theorem 1, and Theorem 2 bound calculators used
//!   by the validation harness.
//!
//! # Example
//!
//! ```
//! use qdn_core::oscar::{OscarConfig, OscarPolicy};
//! use qdn_core::policy::RoutingPolicy;
//! use qdn_core::types::SlotState;
//! use qdn_net::{CapacitySnapshot, NetworkConfig};
//! use qdn_net::workload::{UniformWorkload, Workload};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
//! let mut policy = OscarPolicy::new(OscarConfig::paper_default());
//!
//! let mut workload = UniformWorkload::paper_default();
//! let requests = workload.requests(0, &net, &mut rng);
//! let slot = SlotState::new(0, requests, CapacitySnapshot::full(&net));
//! let decision = policy.decide(&net, &slot, &mut rng);
//! assert!(decision.assignments().len() <= slot.requests().len());
//! ```

#![forbid(unsafe_code)]
pub mod allocation;
pub mod baselines;
pub mod engine;
pub mod lyapunov;
pub mod oscar;
pub mod policy;
pub mod problem;
pub mod profile_eval;
pub mod route_selection;
pub mod theory;
pub mod types;

pub use engine::{decide, EngineSnapshot, EngineState, SlotDecisionRequest};
pub use oscar::{OscarConfig, OscarPolicy};
pub use policy::RoutingPolicy;
pub use profile_eval::{ProfileEvaluator, SelectorSession};
pub use types::{Decision, RouteAssignment, SlotState};
