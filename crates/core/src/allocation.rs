//! Qubit allocation — the paper's Algorithm 2 and ablations.
//!
//! The primary method, [`AllocationMethod::RelaxAndRound`], is exactly
//! Algorithm 2: solve the continuous relaxation of P2 (convex, Prop. 1)
//! with the Lagrangian dual solver, then down-round and fill surplus
//! capacity. Prop. 2 bounds its sub-optimality by
//! `Δ = V·F·L·log(2 − p_min)`.
//!
//! [`AllocationMethod::Greedy`] (pure marginal-gain increments) and
//! [`AllocationMethod::Minimal`] (one channel per edge) serve as
//! ablations; the myopic baselines use `Greedy` because their per-slot
//! budget makes greedy the natural choice.

use qdn_solve::greedy::greedy_allocate;
use qdn_solve::relaxed::{solve_relaxed, RelaxedOptions};
use qdn_solve::rounding::round_down_and_fill;
use qdn_solve::AllocationInstance;
use serde::{Deserialize, Serialize};

/// How the per-slot allocation sub-problem is solved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AllocationMethod {
    /// Algorithm 2: continuous relaxation + down-round + surplus fill.
    /// The relaxation's dual iteration is selected by
    /// [`RelaxedOptions::method`] (accelerated FISTA by default — it
    /// certifies the strict gap tolerance and stops early; see
    /// `qdn_solve::accel`).
    RelaxAndRound(RelaxedOptions),
    /// Greedy marginal-gain increments from the all-ones point.
    Greedy,
    /// The bare minimum: one channel per route edge.
    Minimal,
}

impl AllocationMethod {
    /// Algorithm 2 with default solver options.
    pub fn relax_and_round() -> Self {
        AllocationMethod::RelaxAndRound(RelaxedOptions::default())
    }

    /// Solves the instance, returning the flat integer allocation, or
    /// `None` if the instance itself could not be solved (never happens
    /// for instances validated by [`AllocationInstance::new`]).
    pub fn allocate(&self, instance: &AllocationInstance) -> Option<Vec<u32>> {
        match self {
            AllocationMethod::RelaxAndRound(options) => {
                let relaxed = solve_relaxed(instance, options).ok()?;
                round_down_and_fill(instance, &relaxed.x).ok()
            }
            AllocationMethod::Greedy => greedy_allocate(instance).ok(),
            AllocationMethod::Minimal => Some(instance.lower_bound_point()),
        }
    }

    /// Short label for experiment outputs.
    pub fn label(&self) -> &'static str {
        match self {
            AllocationMethod::RelaxAndRound(_) => "relax+round",
            AllocationMethod::Greedy => "greedy",
            AllocationMethod::Minimal => "minimal",
        }
    }
}

impl Default for AllocationMethod {
    fn default() -> Self {
        Self::relax_and_round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_solve::{PackingConstraint, Variable};

    fn instance(v: f64, price: f64, cap: u32) -> AllocationInstance {
        AllocationInstance::new(
            vec![Variable::new(0.55), Variable::new(0.55)],
            vec![PackingConstraint::new(cap, vec![0, 1])],
            v,
            price,
        )
        .unwrap()
    }

    #[test]
    fn all_methods_feasible() {
        let inst = instance(1000.0, 2.0, 6);
        for method in [
            AllocationMethod::relax_and_round(),
            AllocationMethod::Greedy,
            AllocationMethod::Minimal,
        ] {
            let n = method.allocate(&inst).unwrap();
            assert!(inst.is_feasible_int(&n), "{}", method.label());
        }
    }

    #[test]
    fn minimal_is_all_ones() {
        let inst = instance(1000.0, 2.0, 6);
        assert_eq!(
            AllocationMethod::Minimal.allocate(&inst).unwrap(),
            vec![1, 1]
        );
    }

    #[test]
    fn relax_and_round_close_to_greedy_on_symmetric_instance() {
        let inst = instance(2000.0, 1.0, 8);
        let rr = AllocationMethod::relax_and_round().allocate(&inst).unwrap();
        let gr = AllocationMethod::Greedy.allocate(&inst).unwrap();
        let v_rr = inst.objective_int(&rr);
        let v_gr = inst.objective_int(&gr);
        assert!(
            (v_rr - v_gr).abs() < 1.0 + 0.01 * v_gr.abs(),
            "{v_rr} vs {v_gr}"
        );
    }

    #[test]
    fn labels_distinct() {
        let labels = [
            AllocationMethod::relax_and_round().label(),
            AllocationMethod::Greedy.label(),
            AllocationMethod::Minimal.label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }

    #[test]
    fn default_is_relax_and_round() {
        assert_eq!(AllocationMethod::default().label(), "relax+round");
    }
}
