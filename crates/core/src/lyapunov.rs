//! The virtual cost-deficit queue (paper Eq. 7).
//!
//! `q_{t+1} = max(0, q_t + c_t − C/T)` accumulates how far spending runs
//! ahead of the pro-rata budget. The drift-plus-penalty objective charges
//! each allocated unit a price `q_t`, so the queue acts as a self-tuning
//! congestion price on the budget: overspending raises the price, which
//! suppresses future allocations (Theorem 1 turns this intuition into a
//! violation bound).

use serde::{Deserialize, Serialize};

/// The virtual queue of Algorithm 1.
///
/// # Example
///
/// ```
/// use qdn_core::lyapunov::VirtualQueue;
///
/// let mut q = VirtualQueue::new(10.0, 5000.0, 200); // q0=10, C=5000, T=200
/// assert_eq!(q.value(), 10.0);
/// q.update(30); // spent 30 against a per-slot allowance of 25
/// assert_eq!(q.value(), 15.0);
/// q.update(0); // idle slot drains the queue
/// assert!((q.value() - 0.0f64.max(15.0 - 25.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtualQueue {
    q: f64,
    q0: f64,
    allowance: f64,
}

impl VirtualQueue {
    /// Creates the queue with initial value `q0` and pro-rata allowance
    /// `total_budget / horizon` per slot.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0` or `q0 < 0`.
    pub fn new(q0: f64, total_budget: f64, horizon: u64) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        assert!(q0 >= 0.0, "initial queue must be non-negative");
        VirtualQueue {
            q: q0,
            q0,
            allowance: total_budget / horizon as f64,
        }
    }

    /// Current queue length `q_t` — the price OSCAR charges per unit.
    #[inline]
    pub fn value(&self) -> f64 {
        self.q
    }

    /// The per-slot allowance `C/T`.
    #[inline]
    pub fn allowance(&self) -> f64 {
        self.allowance
    }

    /// Applies the Eq. 7 recursion with this slot's cost `c_t` and
    /// returns the new queue length.
    pub fn update(&mut self, cost: u64) -> f64 {
        self.q = (self.q + cost as f64 - self.allowance).max(0.0);
        self.q
    }

    /// Resets to the initial value for a fresh trial.
    pub fn reset(&mut self) {
        self.q = self.q0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursion_matches_paper() {
        let mut q = VirtualQueue::new(0.0, 100.0, 10); // allowance 10
        assert_eq!(q.update(15), 5.0);
        assert_eq!(q.update(15), 10.0);
        assert_eq!(q.update(0), 0.0); // clamped at zero
    }

    #[test]
    fn never_negative() {
        let mut q = VirtualQueue::new(3.0, 1000.0, 10);
        for _ in 0..50 {
            q.update(0);
            assert!(q.value() >= 0.0);
        }
        assert_eq!(q.value(), 0.0);
    }

    #[test]
    fn reset_restores_q0() {
        let mut q = VirtualQueue::new(7.0, 100.0, 4);
        q.update(1000);
        assert!(q.value() > 7.0);
        q.reset();
        assert_eq!(q.value(), 7.0);
    }

    #[test]
    fn paper_defaults_allowance() {
        let q = VirtualQueue::new(10.0, 5000.0, 200);
        assert_eq!(q.allowance(), 25.0);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_panics() {
        let _ = VirtualQueue::new(0.0, 100.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_q0_panics() {
        let _ = VirtualQueue::new(-1.0, 100.0, 10);
    }
}
