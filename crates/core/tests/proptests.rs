//! Property-based tests for the OSCAR core on randomized networks.

use proptest::prelude::*;
use qdn_core::allocation::AllocationMethod;
use qdn_core::baselines::{BudgetSplit, MyopicConfig, MyopicPolicy};
use qdn_core::oscar::{OscarConfig, OscarPolicy};
use qdn_core::policy::RoutingPolicy;
use qdn_core::problem::PerSlotContext;
use qdn_core::types::SlotState;
use qdn_graph::generators::ring;
use qdn_graph::{NodeId, Path};
use qdn_net::network::{QdnNetwork, QdnNetworkBuilder};
use qdn_net::{CapacitySnapshot, SdPair};
use qdn_physics::link::LinkModel;
use rand::SeedableRng;

/// A ring QDN with randomized capacities and link probabilities.
fn arb_ring_network() -> impl Strategy<Value = QdnNetwork> {
    (4usize..9).prop_flat_map(|n| {
        let qubits = proptest::collection::vec(4u32..16, n);
        let channels = proptest::collection::vec(2u32..8, n);
        let probs = proptest::collection::vec(0.2f64..0.9, n);
        (qubits, channels, probs).prop_map(move |(qubits, channels, probs)| {
            let graph = ring(n);
            let mut b = QdnNetworkBuilder::new();
            for &q in &qubits {
                b.add_node(q);
            }
            for (e, u, v) in graph.edges() {
                b.add_edge(
                    u,
                    v,
                    channels[e.index()],
                    LinkModel::new(probs[e.index()]).unwrap(),
                )
                .unwrap();
            }
            b.build()
        })
    })
}

/// Audits a decision against a snapshot without using simulator code.
fn capacity_ok(net: &QdnNetwork, snap: &CapacitySnapshot, d: &qdn_core::Decision) -> bool {
    let mut node = vec![0u64; net.node_count()];
    let mut edge = vec![0u64; net.edge_count()];
    for a in d.assignments() {
        for (e, &n) in a.route.edges().iter().zip(&a.allocation) {
            if n == 0 {
                return false;
            }
            let (u, v) = net.graph().endpoints(*e);
            node[u.index()] += n as u64;
            node[v.index()] += n as u64;
            edge[e.index()] += n as u64;
        }
    }
    net.graph()
        .node_ids()
        .all(|v| node[v.index()] <= snap.qubits(v) as u64)
        && net
            .graph()
            .edge_ids()
            .all(|e| edge[e.index()] <= snap.channels(e) as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// OSCAR decisions always satisfy the capacity constraints and serve
    /// every request it claims to serve.
    #[test]
    fn oscar_decisions_feasible(net in arb_ring_network(), seed in 0u64..1000) {
        let mut policy = OscarPolicy::new(OscarConfig {
            total_budget: 200.0,
            horizon: 10,
            ..OscarConfig::paper_default()
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for t in 0..5 {
            let requests: Vec<SdPair> = (0..2)
                .map(|_| qdn_net::workload::random_sd_pair(&mut rng, &net))
                .collect();
            let snap = CapacitySnapshot::full(&net);
            let slot = SlotState::new(t, requests.clone(), snap.clone());
            let d = policy.decide(&net, &slot, &mut rng);
            prop_assert!(capacity_ok(&net, &snap, &d), "slot {t}");
            prop_assert_eq!(d.request_count(), requests.len());
        }
    }

    /// The myopic baselines respect their per-slot budgets on random
    /// networks, for random budgets.
    #[test]
    fn myopic_budget_respected(net in arb_ring_network(), seed in 0u64..1000, budget in 50.0f64..400.0) {
        for split in [BudgetSplit::Fixed, BudgetSplit::Adaptive] {
            let mut policy = MyopicPolicy::new(MyopicConfig {
                split,
                total_budget: budget,
                horizon: 8,
                ..MyopicConfig::paper_default(split)
            });
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut total = 0u64;
            for t in 0..8 {
                let requests: Vec<SdPair> = (0..2)
                    .map(|_| qdn_net::workload::random_sd_pair(&mut rng, &net))
                    .collect();
                let slot = SlotState::new(t, requests, CapacitySnapshot::full(&net));
                let d = policy.decide(&net, &slot, &mut rng);
                total += d.total_cost();
            }
            prop_assert!(total as f64 <= budget, "{split:?} spent {total} > {budget}");
        }
    }

    /// Greedy allocation is monotone in the queue price: a higher price
    /// never allocates more units to the same profile.
    #[test]
    fn allocation_monotone_in_price(net in arb_ring_network(), lo in 0.0f64..5.0, extra in 0.1f64..50.0) {
        // Fixed 2-hop route around the ring.
        let route = Path::from_nodes(
            net.graph(),
            vec![NodeId(0), NodeId(1), NodeId(2)],
        ).unwrap();
        let pair = SdPair::new(NodeId(0), NodeId(2)).unwrap();
        let snap = CapacitySnapshot::full(&net);
        let profile = vec![(pair, &route)];

        let cheap = PerSlotContext::oscar(&net, &snap, 1000.0, lo)
            .evaluate(&profile, &AllocationMethod::Greedy);
        let dear = PerSlotContext::oscar(&net, &snap, 1000.0, lo + extra)
            .evaluate(&profile, &AllocationMethod::Greedy);
        let (Some(cheap), Some(dear)) = (cheap, dear) else {
            return Ok(()); // capacity-infeasible draw; nothing to compare
        };
        let total = |ev: &qdn_core::problem::ProfileEvaluation| -> u32 {
            ev.allocations.iter().flatten().sum()
        };
        prop_assert!(total(&dear) <= total(&cheap));
    }

    /// The swap factor enters the per-slot objective as exactly
    /// `V · swaps · ln q` per route: a constant shift that never changes
    /// the allocation itself.
    #[test]
    fn swap_term_is_exact_constant_shift(
        net in arb_ring_network(),
        q in 0.3f64..0.999,
        price in 0.0f64..10.0,
    ) {
        use qdn_physics::swap::SwapModel;
        // Rebuild the same network with a lossy swap model.
        let lossy = {
            let mut b = QdnNetworkBuilder::new();
            for v in net.graph().node_ids() {
                b.add_node(net.qubit_capacity(v));
            }
            for (e, u, v) in net.graph().edges() {
                b.add_edge(u, v, net.channel_capacity(e), *net.link(e)).unwrap();
            }
            b.set_swap(SwapModel::new(q).unwrap());
            b.build()
        };
        let route = Path::from_nodes(
            net.graph(),
            vec![NodeId(0), NodeId(1), NodeId(2)],
        ).unwrap();
        let pair = SdPair::new(NodeId(0), NodeId(2)).unwrap();
        let profile = vec![(pair, &route)];
        let v_weight = 700.0;

        let snap_perfect = CapacitySnapshot::full(&net);
        let perfect = PerSlotContext::oscar(&net, &snap_perfect, v_weight, price)
            .evaluate(&profile, &AllocationMethod::Greedy);
        let snap_lossy = CapacitySnapshot::full(&lossy);
        let lossy_ev = PerSlotContext::oscar(&lossy, &snap_lossy, v_weight, price)
            .evaluate(&profile, &AllocationMethod::Greedy);
        let (Some(a), Some(b)) = (perfect, lossy_ev) else {
            return Ok(());
        };
        // Identical allocations (the term is allocation-independent)…
        prop_assert_eq!(&a.allocations, &b.allocations);
        // …and an objective shifted by exactly V·(swaps=1)·ln q.
        let shift = a.objective - b.objective;
        prop_assert!((shift - v_weight * (1.0 / q).ln()).abs() < 1e-6,
            "shift {shift} vs expected {}", v_weight * (1.0 / q).ln());
    }

    /// Multi-EC workloads keep every request set within the advertised
    /// `F` bound and every copy is a valid pair of the base draw.
    #[test]
    fn multi_ec_respects_f_bound(
        net in arb_ring_network(),
        seed in 0u64..1000,
        base_max in 1usize..4,
        k in 1usize..4,
    ) {
        use qdn_net::workload::{MultiEcWorkload, UniformWorkload, Workload};
        let mut wl = MultiEcWorkload::new(UniformWorkload::new(1, base_max), k);
        prop_assert_eq!(wl.max_pairs(), base_max * k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for t in 0..12 {
            let set = wl.requests(t, &net, &mut rng);
            prop_assert!(set.len() <= wl.max_pairs());
            prop_assert!(!set.is_empty());
            for p in &set {
                prop_assert!(p.source() != p.destination());
                prop_assert!(p.source().index() < net.node_count());
                prop_assert!(p.destination().index() < net.node_count());
            }
        }
    }

    /// Reset makes policies replayable: the same slot decided twice around
    /// a reset (with identical RNG streams) yields identical decisions.
    #[test]
    fn reset_restores_determinism(net in arb_ring_network(), seed in 0u64..1000) {
        let mut policy = OscarPolicy::new(OscarConfig {
            total_budget: 300.0,
            horizon: 12,
            ..OscarConfig::paper_default()
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let requests: Vec<SdPair> = (0..2)
            .map(|_| qdn_net::workload::random_sd_pair(&mut rng, &net))
            .collect();
        let slot = SlotState::new(0, requests, CapacitySnapshot::full(&net));

        let mut rng1 = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF00D);
        let d1 = policy.decide(&net, &slot, &mut rng1);
        policy.reset();
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF00D);
        let d2 = policy.decide(&net, &slot, &mut rng2);
        prop_assert_eq!(d1, d2);
    }

    /// The incremental, component-decomposed `ProfileEvaluator` is
    /// bit-identical to the full-rebuild `PerSlotContext::evaluate` path:
    /// same feasibility verdicts, same objectives (compared via
    /// `to_bits`), same allocations — across random topologies, random
    /// pair sets, every allocation method, and a random walk of
    /// single-pair moves (the Gibbs/greedy access pattern, which
    /// exercises the per-component memo on both hits and misses).
    #[test]
    fn incremental_matches_full_rebuild(
        net in arb_ring_network(),
        n_pairs in 1usize..4,
        v in 10.0f64..3000.0,
        price in 0.0f64..40.0,
        seed in 0u64..1000,
    ) {
        use qdn_core::profile_eval::{EvalOptions, ProfileEvaluator};
        use qdn_core::route_selection::Candidates;
        use qdn_net::routes::{CandidateRoutes, RouteLimits};
        use rand::RngExt;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let owned: Vec<(SdPair, Vec<Path>)> = (0..n_pairs)
            .map(|_| {
                let pair = qdn_net::workload::random_sd_pair(&mut rng, &net);
                (pair, cr.routes(&net, pair).to_vec())
            })
            .collect();
        prop_assume!(owned.iter().all(|(_, routes)| !routes.is_empty()));
        let cands: Vec<Candidates> = owned
            .iter()
            .map(|(pair, routes)| Candidates { pair: *pair, routes })
            .collect();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, v, price);

        for method in [
            AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions {
                method: qdn_solve::DualMethod::Accelerated,
                ..qdn_solve::RelaxedOptions::default()
            }),
            AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions {
                method: qdn_solve::DualMethod::Subgradient,
                ..qdn_solve::RelaxedOptions::default()
            }),
            AllocationMethod::Greedy,
            AllocationMethod::Minimal,
        ] {
            // The default (dynamic-partition) evaluator; static-vs-
            // dynamic equivalence is `dynamic_matches_static_partition`.
            let mut eval = ProfileEvaluator::new(&ctx, &cands, &method, EvalOptions::default());
            let mut indices: Vec<usize> = cands
                .iter()
                .map(|c| rng.random_range(0..c.routes.len()))
                .collect();
            // Random walk of single-pair moves, revisiting profiles.
            for step in 0..20 {
                let profile: Vec<(SdPair, &Path)> = cands
                    .iter()
                    .zip(&indices)
                    .map(|(c, &i)| (c.pair, &c.routes[i]))
                    .collect();
                let reference = ctx.evaluate(&profile, &method);
                let incremental = eval.evaluate(&indices);
                match (&reference, &incremental) {
                    (None, None) => {}
                    (Some(r), Some(x)) => {
                        prop_assert_eq!(
                            r.objective.to_bits(),
                            x.objective.to_bits(),
                            "objective diverged at step {} ({}): {} vs {}",
                            step,
                            method.label(),
                            r.objective,
                            x.objective
                        );
                        prop_assert_eq!(&r.allocations, &x.allocations);
                    }
                    _ => prop_assert!(
                        false,
                        "feasibility diverged at step {} ({})",
                        step,
                        method.label()
                    ),
                }
                // The objective-only entry points agree bit-for-bit too.
                prop_assert_eq!(
                    ctx.evaluate_objective(&profile, &method).map(f64::to_bits),
                    eval.evaluate_objective(&indices).map(f64::to_bits)
                );
                let i = rng.random_range(0..indices.len());
                indices[i] = rng.random_range(0..cands[i].routes.len());
            }
        }
    }

    /// A run that threads one `SelectorSession` through every slot is
    /// bit-identical to building everything fresh per slot, as long as
    /// warm seeding is off (`warm_profile_seed: false` and
    /// `warm_start: false`) — across both partitions, both dual
    /// methods, Gibbs and greedy-local selectors, drifting prices,
    /// changing request sets, and alternating OSCAR/budgeted contexts.
    #[test]
    fn session_matches_fresh_per_slot(
        net in arb_ring_network(),
        seed in 0u64..1000,
        v in 100.0f64..2000.0,
    ) {
        use qdn_core::profile_eval::{EvalOptions, PartitionMode, SelectorSession};
        use qdn_core::route_selection::{Candidates, GibbsConfig, RouteSelector};
        use qdn_net::routes::{CandidateRoutes, RouteLimits};

        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        for dual in [
            qdn_solve::DualMethod::Accelerated,
            qdn_solve::DualMethod::Subgradient,
        ] {
            let method = AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions {
                method: dual,
                ..qdn_solve::RelaxedOptions::default()
            });
            for partition in [PartitionMode::Static, PartitionMode::Dynamic] {
                let evaluator = EvalOptions { partition, warm_profile_seed: false };
                for selector in [
                    RouteSelector::Gibbs(GibbsConfig {
                        iterations: 10,
                        evaluator,
                        ..GibbsConfig::paper_default()
                    }),
                    RouteSelector::GreedyLocal { max_rounds: 3, evaluator },
                ] {
                    let mut session = SelectorSession::new();
                    let mut env = rand::rngs::StdRng::seed_from_u64(seed);
                    // Identical policy RNG streams for the two paths.
                    let mut rng_session = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD1CE);
                    let mut rng_fresh = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD1CE);
                    let mut price = 1.0 + (seed % 7) as f64;
                    for slot in 0..4u64 {
                        let n_pairs = 1 + (slot as usize + seed as usize) % 2;
                        let owned: Vec<(SdPair, Vec<Path>)> = (0..n_pairs)
                            .map(|_| {
                                let pair = qdn_net::workload::random_sd_pair(&mut env, &net);
                                (pair, cr.routes(&net, pair).to_vec())
                            })
                            .filter(|(_, routes)| !routes.is_empty())
                            .collect();
                        let cands: Vec<Candidates> = owned
                            .iter()
                            .map(|(pair, routes)| Candidates { pair: *pair, routes })
                            .collect();
                        let snap = CapacitySnapshot::full(&net);
                        // Alternate the budget-coupled myopic context in.
                        let ctx = if slot % 2 == 0 {
                            PerSlotContext::oscar(&net, &snap, v, price)
                        } else {
                            PerSlotContext::myopic(&net, &snap, 40 + slot)
                        };
                        let with_session =
                            selector.select_in(&mut session, &ctx, &cands, &method, &mut rng_session);
                        let fresh = selector.select(&ctx, &cands, &method, &mut rng_fresh);
                        prop_assert_eq!(
                            &with_session, &fresh,
                            "slot {} diverged ({:?}, {:?}, {})",
                            slot, dual, partition, selector.label()
                        );
                        price += 3.0 + (slot as f64) * 2.0; // drifting q_t
                    }
                }
            }
        }
    }

    /// With warm starts enabled (`RelaxedOptions::warm_start` — session
    /// λ seeding engages across slots), the session path is no longer
    /// bit-identical, but on an *exact* selector (exhaustive
    /// enumeration) it must select profiles whose objectives agree with
    /// the fresh path within the solver's certified tolerance, slot
    /// after slot. This is the "within the certified gap" arm of the
    /// session determinism contract.
    #[test]
    fn warm_session_objective_within_certified_gap(
        net in arb_ring_network(),
        seed in 0u64..1000,
        v in 100.0f64..2000.0,
    ) {
        use qdn_core::profile_eval::{EvalOptions, SelectorSession};
        use qdn_core::route_selection::{Candidates, RouteSelector};
        use qdn_net::routes::{CandidateRoutes, RouteLimits};

        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let method = AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions {
            warm_start: true,
            ..qdn_solve::RelaxedOptions::default()
        });
        let selector = RouteSelector::Exhaustive {
            max_combinations: 4096,
            fallback: qdn_core::route_selection::GibbsConfig::paper_default(),
            evaluator: EvalOptions::warm_seeded(),
        };
        let mut session = SelectorSession::new();
        let mut env = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng_session = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFEED);
        let mut rng_fresh = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFEED);
        let mut price = 1.0;
        for slot in 0..5u64 {
            let owned: Vec<(SdPair, Vec<Path>)> = (0..2)
                .map(|_| {
                    let pair = qdn_net::workload::random_sd_pair(&mut env, &net);
                    (pair, cr.routes(&net, pair).to_vec())
                })
                .filter(|(_, routes)| !routes.is_empty())
                .collect();
            let cands: Vec<Candidates> = owned
                .iter()
                .map(|(pair, routes)| Candidates { pair: *pair, routes })
                .collect();
            let snap = CapacitySnapshot::full(&net);
            let ctx = PerSlotContext::oscar(&net, &snap, v, price);
            let warm = selector.select_in(&mut session, &ctx, &cands, &method, &mut rng_session);
            let cold = selector.select(&ctx, &cands, &method, &mut rng_fresh);
            match (&warm, &cold) {
                (None, None) => {}
                (Some(w), Some(c)) => {
                    let (w, c) = (w.evaluation.objective, c.evaluation.objective);
                    // Same tolerance discipline as the evaluator's
                    // neighbor-λ agreement test: warm answers may move
                    // within the solver tolerance, never past it.
                    let tol = 0.05 * (1.0 + c.abs());
                    prop_assert!(
                        (w - c).abs() <= tol,
                        "slot {}: warm {} vs cold {} (tol {})", slot, w, c, tol
                    );
                }
                _ => prop_assert!(false, "feasibility diverged at slot {}", slot),
            }
            price += 5.0;
        }
    }

    /// The dynamic route-keyed partition is bit-identical to the static
    /// candidate-union partition (and hence, transitively through
    /// `incremental_matches_full_rebuild`, to the full-rebuild path):
    /// same feasibility verdicts, same objectives (via `to_bits`), same
    /// allocations — across random topologies and pair sets, both dual
    /// methods plus the greedy allocator, and a random walk that mixes
    /// declared single-pair moves (the selectors' move-hook entry point,
    /// which churns the dynamic groups through merges and splits) with
    /// arbitrary profile jumps.
    #[test]
    fn dynamic_matches_static_partition(
        net in arb_ring_network(),
        n_pairs in 2usize..5,
        v in 10.0f64..3000.0,
        price in 0.0f64..40.0,
        seed in 0u64..1000,
    ) {
        use qdn_core::profile_eval::{EvalOptions, ProfileEvaluator};
        use qdn_core::route_selection::Candidates;
        use qdn_net::routes::{CandidateRoutes, RouteLimits};
        use rand::RngExt;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let owned: Vec<(SdPair, Vec<Path>)> = (0..n_pairs)
            .map(|_| {
                let pair = qdn_net::workload::random_sd_pair(&mut rng, &net);
                (pair, cr.routes(&net, pair).to_vec())
            })
            .collect();
        prop_assume!(owned.iter().all(|(_, routes)| !routes.is_empty()));
        let cands: Vec<Candidates> = owned
            .iter()
            .map(|(pair, routes)| Candidates { pair: *pair, routes })
            .collect();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, v, price);

        for method in [
            AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions {
                method: qdn_solve::DualMethod::Accelerated,
                ..qdn_solve::RelaxedOptions::default()
            }),
            AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions {
                method: qdn_solve::DualMethod::Subgradient,
                ..qdn_solve::RelaxedOptions::default()
            }),
            AllocationMethod::Greedy,
        ] {
            let mut dynamic =
                ProfileEvaluator::new(&ctx, &cands, &method, EvalOptions::default());
            let mut fixed =
                ProfileEvaluator::new(&ctx, &cands, &method, EvalOptions::static_partition());
            let mut indices: Vec<usize> = cands
                .iter()
                .map(|c| rng.random_range(0..c.routes.len()))
                .collect();
            for step in 0..18 {
                // Alternate declared single-pair moves with arbitrary
                // jumps; both entry points must agree bit-for-bit.
                let (dyn_ev, static_ev) = if step % 3 == 2 {
                    for idx in indices.iter_mut().zip(&cands) {
                        *idx.0 = rng.random_range(0..idx.1.routes.len());
                    }
                    (dynamic.evaluate(&indices), fixed.evaluate(&indices))
                } else {
                    let i = rng.random_range(0..indices.len());
                    indices[i] = rng.random_range(0..cands[i].routes.len());
                    (
                        dynamic.evaluate_move(&indices, i),
                        fixed.evaluate_move(&indices, i),
                    )
                };
                match (&static_ev, &dyn_ev) {
                    (None, None) => {}
                    (Some(s), Some(d)) => {
                        prop_assert_eq!(
                            s.objective.to_bits(),
                            d.objective.to_bits(),
                            "objective diverged at step {} ({}): {} vs {}",
                            step,
                            method.label(),
                            s.objective,
                            d.objective
                        );
                        prop_assert_eq!(&s.allocations, &d.allocations);
                    }
                    _ => prop_assert!(
                        false,
                        "feasibility diverged at step {} ({})",
                        step,
                        method.label()
                    ),
                }
                prop_assert_eq!(
                    fixed.evaluate_objective(&indices).map(f64::to_bits),
                    dynamic.evaluate_objective(&indices).map(f64::to_bits)
                );
            }
            // The dynamic refinement never coarsens the static envelope.
            prop_assert!(
                dynamic.stats().dynamic_components >= fixed.stats().dynamic_components
            );
        }
    }

    /// Snapshot/restore is invisible to the decision stream: running N
    /// slots through the engine facade, snapshotting mid-run through
    /// the JSON wire form, restoring into a fresh `EngineState`, and
    /// continuing both the original and the restored state with twin
    /// RNGs yields bit-identical decisions — across both partitions and
    /// both dual methods. The restored state must also re-snapshot to
    /// the exact same bytes (canonical ordering), which is what lets
    /// the serve daemon restart warm without drifting.
    #[test]
    fn restored_session_matches_uninterrupted(
        net in arb_ring_network(),
        seed in 0u64..1000,
        v in 100.0f64..2000.0,
    ) {
        use qdn_core::profile_eval::{EvalOptions, PartitionMode};
        use qdn_core::route_selection::{GibbsConfig, RouteSelector};
        use qdn_core::{decide, EngineSnapshot, EngineState, SlotDecisionRequest};
        use qdn_net::routes::RouteLimits;

        let mut env = rand::rngs::StdRng::seed_from_u64(seed);
        // One request trace shared by the warm run and the restored
        // continuation: restore replays state, not arrivals.
        let trace: Vec<Vec<SdPair>> = (0..6)
            .map(|slot| {
                (0..1 + (slot + seed as usize) % 2)
                    .map(|_| qdn_net::workload::random_sd_pair(&mut env, &net))
                    .collect()
            })
            .collect();
        let snap = CapacitySnapshot::full(&net);
        for dual in [
            qdn_solve::DualMethod::Accelerated,
            qdn_solve::DualMethod::Subgradient,
        ] {
            let method = AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions {
                method: dual,
                ..qdn_solve::RelaxedOptions::default()
            });
            for partition in [PartitionMode::Static, PartitionMode::Dynamic] {
                let evaluator = EvalOptions { partition, warm_profile_seed: false };
                let selector = RouteSelector::Gibbs(GibbsConfig {
                    iterations: 8,
                    evaluator,
                    ..GibbsConfig::paper_default()
                });
                let mut state = EngineState::new(RouteLimits::paper_default());
                let mut price = 1.0 + (seed % 5) as f64;
                for (slot, reqs) in trace.iter().enumerate().take(3) {
                    let ctx = PerSlotContext::oscar(&net, &snap, v, price);
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ ((slot as u64) << 8));
                    let _ = decide(&mut state, SlotDecisionRequest {
                        network: &net,
                        requests: reqs,
                        ctx: &ctx,
                        selector: &selector,
                        allocation: &method,
                        fidelity_target: None,
                        rng: &mut rng,
                    });
                    price += 3.0 + slot as f64;
                }
                let wire = serde_json::to_string(&state.snapshot()).unwrap();
                let decoded: EngineSnapshot = serde_json::from_str(&wire).unwrap();
                let mut restored = EngineState::restore(&decoded).unwrap();
                prop_assert_eq!(
                    serde_json::to_string(&restored.snapshot()).unwrap(),
                    wire,
                    "re-snapshot not byte-identical ({:?}, {:?})",
                    dual,
                    partition
                );
                for (slot, reqs) in trace.iter().enumerate().skip(3) {
                    let ctx = PerSlotContext::oscar(&net, &snap, v, price);
                    let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed ^ ((slot as u64) << 8));
                    let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed ^ ((slot as u64) << 8));
                    let cont = decide(&mut state, SlotDecisionRequest {
                        network: &net,
                        requests: reqs,
                        ctx: &ctx,
                        selector: &selector,
                        allocation: &method,
                        fidelity_target: None,
                        rng: &mut rng_a,
                    });
                    let rest = decide(&mut restored, SlotDecisionRequest {
                        network: &net,
                        requests: reqs,
                        ctx: &ctx,
                        selector: &selector,
                        allocation: &method,
                        fidelity_target: None,
                        rng: &mut rng_b,
                    });
                    prop_assert_eq!(
                        &cont, &rest,
                        "slot {} diverged after restore ({:?}, {:?})",
                        slot, dual, partition
                    );
                    price += 3.0 + slot as f64;
                }
            }
        }
    }

    /// Topology churn never desynchronizes a session from a cold
    /// rebuild: threading one `SelectorSession` (and one incrementally
    /// repaired `CandidateRoutes` cache) through a trace of link cuts
    /// and repairs is bit-identical to building the evaluator fresh
    /// every slot over the same candidates — across both partitions and
    /// both dual methods. Region-scoped invalidation may retain memos
    /// across a cut; this pins down that it never retains a stale one.
    #[test]
    fn churn_matches_cold_rebuild(
        net in arb_ring_network(),
        seed in 0u64..1000,
        v in 100.0f64..2000.0,
    ) {
        use qdn_core::profile_eval::{EvalOptions, PartitionMode, SelectorSession};
        use qdn_core::route_selection::{Candidates, GibbsConfig, RouteSelector};
        use qdn_net::routes::{CandidateRoutes, RouteLimits};

        let mut env = rand::rngs::StdRng::seed_from_u64(seed);
        // Pinned pairs: the same demands live through the churn trace,
        // so carried-over profiles and memos actually get exercised.
        let pairs: Vec<SdPair> = (0..2)
            .map(|_| qdn_net::workload::random_sd_pair(&mut env, &net))
            .collect();
        let m = net.edge_count();
        for dual in [
            qdn_solve::DualMethod::Accelerated,
            qdn_solve::DualMethod::Subgradient,
        ] {
            let method = AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions {
                method: dual,
                ..qdn_solve::RelaxedOptions::default()
            });
            for partition in [PartitionMode::Static, PartitionMode::Dynamic] {
                let evaluator = EvalOptions { partition, warm_profile_seed: false };
                let selector = RouteSelector::Gibbs(GibbsConfig {
                    iterations: 8,
                    evaluator,
                    ..GibbsConfig::paper_default()
                });
                let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
                let mut session = SelectorSession::new();
                let mut rng_session = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0DE);
                let mut rng_fresh = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0DE);
                let mut down = vec![false; m];
                let mut price = 1.0 + (seed % 5) as f64;
                for slot in 0..6u64 {
                    // Toggle one link per slot: first sighting cuts it,
                    // the next toggle repairs it — a fail/repair trace.
                    let e = ((seed as usize).wrapping_add(slot as usize * 7)) % m;
                    down[e] = !down[e];
                    let channels: Vec<u32> = net
                        .graph()
                        .edge_ids()
                        .map(|e| if down[e.index()] { 0 } else { net.channel_capacity(e) })
                        .collect();
                    let qubits: Vec<u32> = net
                        .graph()
                        .node_ids()
                        .map(|v| net.qubit_capacity(v))
                        .collect();
                    let snap = CapacitySnapshot::clamped(&net, qubits, channels);
                    cr.sync_dead_edges(&net, &snap);
                    let owned: Vec<(SdPair, Vec<Path>)> = pairs
                        .iter()
                        .map(|&p| (p, cr.routes(&net, p).to_vec()))
                        .filter(|(_, routes)| !routes.is_empty())
                        .collect();
                    if owned.is_empty() {
                        // Both paths see the same disconnection; the
                        // session simply idles this slot.
                        price += 2.0;
                        continue;
                    }
                    let cands: Vec<Candidates> = owned
                        .iter()
                        .map(|(pair, routes)| Candidates { pair: *pair, routes })
                        .collect();
                    let ctx = PerSlotContext::oscar(&net, &snap, v, price);
                    let with_session =
                        selector.select_in(&mut session, &ctx, &cands, &method, &mut rng_session);
                    let fresh = selector.select(&ctx, &cands, &method, &mut rng_fresh);
                    prop_assert_eq!(
                        &with_session, &fresh,
                        "slot {} diverged ({:?}, {:?})",
                        slot, dual, partition
                    );
                    price += 3.0 + (slot as f64);
                }
            }
        }
    }

    /// Cutting a node is exactly cutting its incident edge set: the
    /// node-cut snapshot additionally zeroes the dark node's qubits,
    /// but no surviving candidate can cross a node whose links are all
    /// dead, so that capacity never enters an allocation instance and
    /// the slot decisions are bit-identical. The same node-cut trace is
    /// also replayed under the global flush-everything ablation
    /// (`set_global_invalidation`), pinning that region-scoped
    /// invalidation never retains a stale memo across a node cut.
    #[test]
    fn node_churn_matches_edge_set_churn(
        net in arb_ring_network(),
        seed in 0u64..1000,
        v in 100.0f64..2000.0,
    ) {
        use qdn_core::profile_eval::{EvalOptions, PartitionMode, SelectorSession};
        use qdn_core::route_selection::{Candidates, GibbsConfig, RouteSelector};
        use qdn_net::routes::{CandidateRoutes, RouteLimits};

        let mut env = rand::rngs::StdRng::seed_from_u64(seed);
        let pairs: Vec<SdPair> = (0..2)
            .map(|_| qdn_net::workload::random_sd_pair(&mut env, &net))
            .collect();
        let n = net.node_count();
        let method = AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions::default());
        for partition in [PartitionMode::Static, PartitionMode::Dynamic] {
            let evaluator = EvalOptions { partition, warm_profile_seed: false };
            let selector = RouteSelector::Gibbs(GibbsConfig {
                iterations: 8,
                evaluator,
                ..GibbsConfig::paper_default()
            });
            // Three sessions over one churn trace: node cuts under
            // region-scoped invalidation, the same cuts expressed as
            // pure edge-set cuts, and node cuts under global flush.
            let mut cr_node = CandidateRoutes::new(RouteLimits::paper_default());
            let mut cr_edge = CandidateRoutes::new(RouteLimits::paper_default());
            let mut cr_glob = CandidateRoutes::new(RouteLimits::paper_default());
            let mut s_node = SelectorSession::new();
            let mut s_edge = SelectorSession::new();
            let mut s_glob = SelectorSession::new();
            s_glob.set_global_invalidation(true);
            let mut rng_node = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
            let mut rng_edge = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
            let mut rng_glob = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
            let mut down = vec![false; n];
            let mut price = 1.0 + (seed % 5) as f64;
            let mut decided = 0u32;
            let mut cut: Vec<usize> = Vec::new();
            for slot in 0..6u64 {
                // Cut a region on even slots (all incident links die
                // together), restore it on the next slot — the
                // surviving ring keeps routing while every slot still
                // crosses a transition. Every other cut darkens two
                // ring-adjacent nodes at once (a correlated regional
                // outage), the rest a single node.
                if slot % 2 == 0 {
                    let base = ((seed as usize).wrapping_add(slot as usize * 3)) % n;
                    cut = if slot % 4 == 2 {
                        vec![base, (base + 1) % n]
                    } else {
                        vec![base]
                    };
                    for &v in &cut {
                        down[v] = true;
                    }
                } else {
                    for &v in &cut {
                        down[v] = false;
                    }
                    cut.clear();
                }
                let channels: Vec<u32> = net
                    .graph()
                    .edges()
                    .map(|(e, u, w)| {
                        if down[u.index()] || down[w.index()] {
                            0
                        } else {
                            net.channel_capacity(e)
                        }
                    })
                    .collect();
                let full_qubits: Vec<u32> = net
                    .graph()
                    .node_ids()
                    .map(|u| net.qubit_capacity(u))
                    .collect();
                let dark_qubits: Vec<u32> = net
                    .graph()
                    .node_ids()
                    .map(|u| if down[u.index()] { 0 } else { net.qubit_capacity(u) })
                    .collect();
                let snap_node = CapacitySnapshot::clamped(&net, dark_qubits, channels.clone());
                let snap_edge = CapacitySnapshot::clamped(&net, full_qubits, channels);
                cr_node.sync_dead_edges(&net, &snap_node);
                cr_edge.sync_dead_edges(&net, &snap_edge);
                cr_glob.sync_dead_edges(&net, &snap_node);
                let owned: Vec<(SdPair, Vec<Path>)> = pairs
                    .iter()
                    .map(|&p| (p, cr_node.routes(&net, p).to_vec()))
                    .filter(|(_, routes)| !routes.is_empty())
                    .collect();
                // All three caches saw the same dead-edge set, so the
                // candidates must agree before any selection runs.
                for (pair, routes) in &owned {
                    prop_assert_eq!(routes, cr_edge.routes(&net, *pair));
                    prop_assert_eq!(routes, cr_glob.routes(&net, *pair));
                }
                if owned.is_empty() {
                    price += 2.0;
                    continue;
                }
                let cands: Vec<Candidates> = owned
                    .iter()
                    .map(|(pair, routes)| Candidates { pair: *pair, routes })
                    .collect();
                let ctx_node = PerSlotContext::oscar(&net, &snap_node, v, price);
                let ctx_edge = PerSlotContext::oscar(&net, &snap_edge, v, price);
                let d_node =
                    selector.select_in(&mut s_node, &ctx_node, &cands, &method, &mut rng_node);
                let d_edge =
                    selector.select_in(&mut s_edge, &ctx_edge, &cands, &method, &mut rng_edge);
                let d_glob =
                    selector.select_in(&mut s_glob, &ctx_node, &cands, &method, &mut rng_glob);
                decided += 1;
                prop_assert_eq!(
                    &d_node, &d_edge,
                    "node cut vs incident-edge cut diverged at slot {} ({:?})",
                    slot, partition
                );
                prop_assert_eq!(
                    &d_node, &d_glob,
                    "region-scoped vs global flush diverged at slot {} ({:?})",
                    slot, partition
                );
                price += 3.0 + slot as f64;
            }
            // On a ring, cutting one node leaves a path graph, so the
            // trace must actually decide slots — the equivalence above
            // is vacuous otherwise.
            prop_assert!(decided > 0, "every slot idled ({:?})", partition);
        }
    }
}

// The PR-10 headline claim: every parallel stage reduces in fixed index
// order, so running on the work-stealing pool is **bit-identical** to
// the serial paths at every pool width — not "statistically the same",
// the same bits.
#[cfg(feature = "parallel")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pool widths 1, 2, and 4 × both partition modes × both dual
    /// methods, for both the multi-chain Gibbs sampler (per-chain
    /// seeded RNG streams, chain-index-order reduction, compared
    /// against the always-serial shared-evaluator reference) and the
    /// greedy-local selector (whose evaluator pre-pass fans component
    /// solves onto the pool; compared across widths and, via the
    /// full-rebuild check, against the serial evaluation path).
    #[test]
    fn parallel_matches_serial_bit_identical(
        net in arb_ring_network(),
        n_pairs in 2usize..5,
        v in 100.0f64..2000.0,
        price in 0.0f64..20.0,
        seed in 0u64..1000,
    ) {
        use qdn_core::profile_eval::{EvalOptions, PartitionMode, ProfileEvaluator};
        use qdn_core::route_selection::{gibbs, Candidates, GibbsConfig, RouteSelector};
        use qdn_net::routes::{CandidateRoutes, RouteLimits};
        use rand::RngExt;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let owned: Vec<(SdPair, Vec<Path>)> = (0..n_pairs)
            .map(|_| {
                let pair = qdn_net::workload::random_sd_pair(&mut rng, &net);
                (pair, cr.routes(&net, pair).to_vec())
            })
            .collect();
        prop_assume!(owned.iter().all(|(_, routes)| !routes.is_empty()));
        let cands: Vec<Candidates> = owned
            .iter()
            .map(|(pair, routes)| Candidates { pair: *pair, routes })
            .collect();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, v, price);
        let chain_seeds: Vec<u64> = (0..4).map(|_| rng.random()).collect();

        for dual in [
            qdn_solve::DualMethod::Accelerated,
            qdn_solve::DualMethod::Subgradient,
        ] {
            let method = AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions {
                method: dual,
                ..qdn_solve::RelaxedOptions::default()
            });
            for partition in [PartitionMode::Static, PartitionMode::Dynamic] {
                let evaluator = EvalOptions { partition, warm_profile_seed: false };

                // Gibbs restarts: the serial shared-evaluator reference
                // trajectory, then the pool at each width.
                let config = GibbsConfig {
                    iterations: 6,
                    restarts: chain_seeds.len(),
                    evaluator,
                    ..GibbsConfig::paper_default()
                };
                let reference = gibbs::sample_restarts_serial(
                    &ctx, &cands, &method, &config, &chain_seeds, None,
                );
                let mut greedy_reference = None;
                for width in [1usize, 2, 4] {
                    let pool = threadpool::ThreadPool::new(width);
                    let got = pool.install(|| {
                        gibbs::sample_restarts(&ctx, &cands, &method, &config, &chain_seeds)
                    });
                    match (&reference, &got) {
                        (None, None) => {}
                        (Some(r), Some(g)) => {
                            prop_assert_eq!(
                                r.evaluation.objective.to_bits(),
                                g.evaluation.objective.to_bits(),
                                "gibbs objective diverged at width {} ({:?}, {:?})",
                                width, dual, partition
                            );
                            prop_assert_eq!(&r.indices, &g.indices);
                            prop_assert_eq!(&r.evaluation.allocations, &g.evaluation.allocations);
                        }
                        _ => prop_assert!(
                            false,
                            "gibbs feasibility diverged at width {} ({:?}, {:?})",
                            width, dual, partition
                        ),
                    }

                    // Greedy-local selector: same selection at every
                    // width (twin RNG streams), and the evaluator's
                    // pooled pre-pass stays bit-identical to the serial
                    // full-rebuild evaluation of the chosen profile.
                    let selector = RouteSelector::GreedyLocal { max_rounds: 3, evaluator };
                    let mut sel_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9EED);
                    let greedy = pool.install(|| {
                        selector.select(&ctx, &cands, &method, &mut sel_rng)
                    });
                    if let Some(g) = &greedy {
                        let profile: Vec<(SdPair, &Path)> = cands
                            .iter()
                            .zip(&g.indices)
                            .map(|(c, &i)| (c.pair, &c.routes[i]))
                            .collect();
                        let rebuilt = ctx
                            .evaluate(&profile, &method)
                            .expect("selected profile is feasible");
                        prop_assert_eq!(
                            rebuilt.objective.to_bits(),
                            g.evaluation.objective.to_bits(),
                            "greedy evaluation diverged from full rebuild at width {}",
                            width
                        );
                    }
                    let first = greedy_reference.get_or_insert_with(|| greedy.clone());
                    prop_assert_eq!(
                        &*first, &greedy,
                        "greedy selection diverged at width {} ({:?}, {:?})",
                        width, dual, partition
                    );

                    // The evaluator pre-pass directly: a short random
                    // walk, every profile compared bit-for-bit against
                    // the serial full rebuild.
                    let mut walk_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA11E);
                    pool.install(|| -> proptest::TestCaseResult {
                        let mut eval =
                            ProfileEvaluator::new(&ctx, &cands, &method, evaluator);
                        let mut indices: Vec<usize> = cands
                            .iter()
                            .map(|c| walk_rng.random_range(0..c.routes.len()))
                            .collect();
                        for _ in 0..6 {
                            let profile: Vec<(SdPair, &Path)> = cands
                                .iter()
                                .zip(&indices)
                                .map(|(c, &i)| (c.pair, &c.routes[i]))
                                .collect();
                            prop_assert_eq!(
                                ctx.evaluate_objective(&profile, &method).map(f64::to_bits),
                                eval.evaluate_objective(&indices).map(f64::to_bits),
                                "pre-pass diverged at width {} ({:?}, {:?})",
                                width, dual, partition
                            );
                            let i = walk_rng.random_range(0..indices.len());
                            indices[i] = walk_rng.random_range(0..cands[i].routes.len());
                        }
                        Ok(())
                    })?;
                }
            }
        }
    }
}
