//! Multi-channel quantum-link success model (paper Eq. 1).
//!
//! A quantum link on edge `e = (u, v)` consumes one qubit at `u`, one
//! qubit at `v`, and one quantum channel per allocated unit. With
//! per-channel per-slot success `p_e`, using `n_e` channels in parallel
//! yields `P_e(n_e) = 1 − (1 − p_e)^{n_e}`. The optimizer works with the
//! logarithm `ln P_e(n)` (concave in `n`, paper Prop. 1) and its
//! derivative, both exposed here for real-valued `n` because Algorithm 2
//! relaxes the integrality constraint.

use serde::{Deserialize, Serialize};

use crate::attempts::AttemptModel;
use crate::prob::{at_least_one, d_ln_at_least_one, ln_at_least_one};
use crate::PhysicsError;

/// Per-edge link success model: channel probability `p_e` fixed, success
/// as a function of the number of channels `n`.
///
/// # Example
///
/// ```
/// use qdn_physics::link::LinkModel;
///
/// # fn main() -> Result<(), qdn_physics::PhysicsError> {
/// let link = LinkModel::new(0.551)?;
/// assert!((link.success(1) - 0.551).abs() < 1e-12);
/// // Diminishing returns: concavity of ln P.
/// let gain1 = link.ln_success(2.0) - link.ln_success(1.0);
/// let gain2 = link.ln_success(3.0) - link.ln_success(2.0);
/// assert!(gain1 > gain2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    channel_success: f64,
}

impl LinkModel {
    /// Creates a link model from the per-channel per-slot success
    /// probability `p_e`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidProbability`] unless
    /// `channel_success ∈ (0, 1)`. The open interval matters: `p_e = 0`
    /// would make every allocation useless and `p_e = 1` makes the
    /// optimization degenerate (the paper's `p_min` and `log(2 − p_min)`
    /// bounds assume `p ∈ (0, 1)`).
    pub fn new(channel_success: f64) -> Result<Self, PhysicsError> {
        if !(channel_success > 0.0 && channel_success < 1.0) {
            return Err(PhysicsError::InvalidProbability {
                name: "channel success probability",
                value: channel_success,
            });
        }
        Ok(LinkModel { channel_success })
    }

    /// Builds the model from an attempt model and attempt count:
    /// `p_e = 1 − (1 − p̃)^A`.
    ///
    /// # Panics
    ///
    /// Panics if the resulting probability is degenerate (0 or 1), which
    /// cannot happen for valid [`AttemptModel`] values and `attempts ≥ 1`
    /// unless `p̃ = 1`.
    pub fn from_attempts(attempts_model: AttemptModel, attempts: u64) -> Self {
        let p = attempts_model.success_after(attempts.max(1));
        LinkModel::new(p).expect("attempt composition yields p in (0,1)")
    }

    /// The paper's default link model: `p̃ = 2×10⁻⁴`, `A = 4000`
    /// (`p_e ≈ 0.5507`).
    pub fn paper_default() -> Self {
        LinkModel::from_attempts(AttemptModel::paper_default(), 4000)
    }

    /// Per-channel per-slot success probability `p_e`.
    #[inline]
    pub fn channel_success(&self) -> f64 {
        self.channel_success
    }

    /// Link success with `n` integer channels: `P_e(n) = 1 − (1 − p_e)^n`.
    pub fn success(&self, n: u32) -> f64 {
        at_least_one(self.channel_success, n as f64)
    }

    /// Link success for real-valued `n ≥ 0` (continuous relaxation).
    pub fn success_real(&self, n: f64) -> f64 {
        at_least_one(self.channel_success, n)
    }

    /// `ln P_e(n)` for real-valued `n > 0`; strictly concave in `n`.
    pub fn ln_success(&self, n: f64) -> f64 {
        ln_at_least_one(self.channel_success, n)
    }

    /// Derivative `d/dn ln P_e(n)`; positive, strictly decreasing.
    pub fn d_ln_success(&self, n: f64) -> f64 {
        d_ln_at_least_one(self.channel_success, n)
    }

    /// Marginal gain of the `n+1`-th channel in log space:
    /// `ln P_e(n+1) − ln P_e(n)`.
    pub fn marginal_ln_gain(&self, n: u32) -> f64 {
        if n == 0 {
            return f64::INFINITY; // from impossible to possible
        }
        self.ln_success((n + 1) as f64) - self.ln_success(n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_open_interval() {
        assert!(LinkModel::new(0.0).is_err());
        assert!(LinkModel::new(1.0).is_err());
        assert!(LinkModel::new(-0.5).is_err());
        assert!(LinkModel::new(f64::NAN).is_err());
        assert!(LinkModel::new(0.5).is_ok());
    }

    #[test]
    fn paper_default_probability() {
        let l = LinkModel::paper_default();
        assert!((l.channel_success() - 0.5507).abs() < 1e-3);
    }

    #[test]
    fn success_one_channel_equals_p() {
        let l = LinkModel::new(0.37).unwrap();
        assert!((l.success(1) - 0.37).abs() < 1e-12);
    }

    #[test]
    fn success_monotone_and_bounded() {
        let l = LinkModel::new(0.551).unwrap();
        let mut prev = 0.0;
        for n in 1..12 {
            let p = l.success(n);
            assert!(p > prev && p < 1.0, "n={n}");
            prev = p;
        }
    }

    #[test]
    fn integer_and_real_agree() {
        let l = LinkModel::new(0.551).unwrap();
        for n in 1..8u32 {
            assert!((l.success(n) - l.success_real(n as f64)).abs() < 1e-14);
        }
    }

    #[test]
    fn ln_success_concave() {
        let l = LinkModel::new(0.551).unwrap();
        // Second differences negative.
        let f = |n: f64| l.ln_success(n);
        for n in 1..10 {
            let n = n as f64;
            let second = f(n + 1.0) - 2.0 * f(n) + f(n - 1.0 + 1e-9);
            assert!(second < 0.0, "n={n}");
        }
    }

    #[test]
    fn derivative_consistent_with_marginals() {
        let l = LinkModel::new(0.551).unwrap();
        // Mean value theorem: marginal gain between n and n+1 lies between
        // the endpoint derivatives.
        for n in 1..8u32 {
            let gain = l.marginal_ln_gain(n);
            let d_lo = l.d_ln_success((n + 1) as f64);
            let d_hi = l.d_ln_success(n as f64);
            assert!(gain >= d_lo && gain <= d_hi, "n={n}");
        }
    }

    #[test]
    fn marginal_from_zero_is_infinite() {
        let l = LinkModel::new(0.3).unwrap();
        assert_eq!(l.marginal_ln_gain(0), f64::INFINITY);
    }

    #[test]
    fn from_attempts_composes() {
        let l = LinkModel::from_attempts(AttemptModel::new(0.01).unwrap(), 100);
        let expected = 1.0 - 0.99f64.powi(100);
        assert!((l.channel_success() - expected).abs() < 1e-12);
    }
}
