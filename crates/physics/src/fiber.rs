//! Distance-dependent channel models.
//!
//! The paper notes (§III-B) that the per-attempt success probability
//! "depends on both the physical properties of the channel material and
//! the length of the quantum channel", but its evaluation uses a constant
//! `p̃ = 2×10⁻⁴`. [`ChannelModel`] supports both: a constant model matching
//! the evaluation, and a standard fiber model where photon survival decays
//! exponentially with length (`10^(−loss_db·d/10)` with ≈ 0.2 dB/km for
//! telecom fiber), scaled by a base efficiency capturing source/detector
//! losses.

use serde::{Deserialize, Serialize};

use crate::attempts::AttemptModel;
use crate::PhysicsError;

/// Attenuation of standard telecom fiber in dB/km.
pub const TELECOM_FIBER_LOSS_DB_PER_KM: f64 = 0.2;

/// How the per-attempt success probability of a channel is derived.
///
/// # Example
///
/// ```
/// use qdn_physics::fiber::ChannelModel;
///
/// # fn main() -> Result<(), qdn_physics::PhysicsError> {
/// // The paper's constant model.
/// let constant = ChannelModel::constant(2e-4)?;
/// assert_eq!(constant.attempt_probability(10.0)?.probability(), 2e-4);
///
/// // Fiber: success decays with distance.
/// let fiber = ChannelModel::fiber(1e-3, 0.2)?;
/// let near = fiber.attempt_probability(1.0)?.probability();
/// let far = fiber.attempt_probability(50.0)?.probability();
/// assert!(near > far);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChannelModel {
    /// Distance-independent per-attempt probability (the paper's §V-A
    /// setting).
    Constant {
        /// Per-attempt success probability `p̃`.
        probability: f64,
    },
    /// Fiber-optic model: `p̃(d) = η · 10^(−loss·d/10)` for length `d` km.
    Fiber {
        /// Base efficiency `η ∈ (0, 1]` at zero distance (sources,
        /// detectors, coupling).
        base_efficiency: f64,
        /// Attenuation in dB per km.
        loss_db_per_km: f64,
    },
}

impl ChannelModel {
    /// Constant model with the given per-attempt probability.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidProbability`] unless
    /// `probability ∈ (0, 1]`.
    pub fn constant(probability: f64) -> Result<Self, PhysicsError> {
        AttemptModel::new(probability)?;
        Ok(ChannelModel::Constant { probability })
    }

    /// The paper's default constant model (`p̃ = 2×10⁻⁴`).
    pub fn paper_default() -> Self {
        ChannelModel::Constant { probability: 2e-4 }
    }

    /// Fiber model with the given base efficiency and attenuation.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidProbability`] for a bad efficiency
    /// or [`PhysicsError::NonPositive`] for a non-positive loss.
    pub fn fiber(base_efficiency: f64, loss_db_per_km: f64) -> Result<Self, PhysicsError> {
        if !(base_efficiency > 0.0 && base_efficiency <= 1.0) {
            return Err(PhysicsError::InvalidProbability {
                name: "base_efficiency",
                value: base_efficiency,
            });
        }
        if !loss_db_per_km.is_finite() || loss_db_per_km <= 0.0 {
            return Err(PhysicsError::NonPositive {
                name: "loss_db_per_km",
                value: loss_db_per_km,
            });
        }
        Ok(ChannelModel::Fiber {
            base_efficiency,
            loss_db_per_km,
        })
    }

    /// Per-attempt success for a channel of physical length `length_km`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::NonPositive`] for a negative length, or an
    /// invalid-probability error if the model parameters degenerate at
    /// this length (success underflows to zero for extreme distances).
    pub fn attempt_probability(&self, length_km: f64) -> Result<AttemptModel, PhysicsError> {
        if length_km < 0.0 {
            return Err(PhysicsError::NonPositive {
                name: "length_km",
                value: length_km,
            });
        }
        match *self {
            ChannelModel::Constant { probability } => AttemptModel::new(probability),
            ChannelModel::Fiber {
                base_efficiency,
                loss_db_per_km,
            } => {
                let transmissivity = 10f64.powf(-loss_db_per_km * length_km / 10.0);
                AttemptModel::new(base_efficiency * transmissivity)
            }
        }
    }
}

impl Default for ChannelModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_distance() {
        let m = ChannelModel::constant(2e-4).unwrap();
        let p1 = m.attempt_probability(0.0).unwrap().probability();
        let p2 = m.attempt_probability(500.0).unwrap().probability();
        assert_eq!(p1, p2);
    }

    #[test]
    fn constant_validates() {
        assert!(ChannelModel::constant(0.0).is_err());
        assert!(ChannelModel::constant(2.0).is_err());
    }

    #[test]
    fn fiber_validates() {
        assert!(ChannelModel::fiber(0.0, 0.2).is_err());
        assert!(ChannelModel::fiber(1.5, 0.2).is_err());
        assert!(ChannelModel::fiber(0.5, 0.0).is_err());
        assert!(ChannelModel::fiber(0.5, -1.0).is_err());
        assert!(ChannelModel::fiber(0.5, 0.2).is_ok());
    }

    #[test]
    fn fiber_decays_exponentially() {
        let m = ChannelModel::fiber(1e-3, TELECOM_FIBER_LOSS_DB_PER_KM).unwrap();
        let p0 = m.attempt_probability(0.0).unwrap().probability();
        let p50 = m.attempt_probability(50.0).unwrap().probability();
        let p100 = m.attempt_probability(100.0).unwrap().probability();
        assert!((p0 - 1e-3).abs() < 1e-15);
        // 0.2 dB/km * 50 km = 10 dB = factor 10.
        assert!((p50 - 1e-4).abs() < 1e-12);
        assert!((p100 - 1e-5).abs() < 1e-13);
    }

    #[test]
    fn negative_length_rejected() {
        let m = ChannelModel::paper_default();
        assert!(m.attempt_probability(-1.0).is_err());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(ChannelModel::default(), ChannelModel::paper_default());
    }
}
