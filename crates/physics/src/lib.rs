//! Entanglement-link physics for quantum data networks.
//!
//! This crate models the physical layer of the paper's QDN (§II, §III-B):
//!
//! * [`prob`] — numerically stable probability kernels
//!   (`1 − (1 − p)^A` with `p ≈ 2×10⁻⁴` and `A = 4000` underflows naive
//!   formulas),
//! * [`timing`] — slot timing: one entanglement attempt takes ≈ 165 µs and
//!   entanglement decoheres after ≈ 1.46 s, which bounds the attempts per
//!   slot,
//! * [`attempts`] — the per-channel attempt model `p_e = 1 − (1 − p̃_e)^A`,
//! * [`link`] — the multi-channel link model `P_e(n) = 1 − (1 − p_e)^n`
//!   (paper Eq. 1) and its logarithm/derivatives used by the optimizer,
//! * [`fiber`] — distance-dependent per-attempt success for fiber channels,
//! * [`swap`] — entanglement swapping (assumed near-perfect by the paper;
//!   configurable here and folded into the route product as the paper
//!   notes below Eq. 2),
//! * [`monte_carlo`] — attempt-level Monte-Carlo simulation used to
//!   validate the analytic model and to produce realized outcomes,
//! * [`fidelity`] — Werner-state fidelity and purification, the paper's
//!   "fidelity constraint" extension hook (§III-C).
//!
//! # Example
//!
//! ```
//! use qdn_physics::attempts::AttemptModel;
//! use qdn_physics::link::LinkModel;
//!
//! # fn main() -> Result<(), qdn_physics::PhysicsError> {
//! // Paper defaults: p̃ = 2e-4 per attempt, 4000 attempts per slot.
//! let attempt = AttemptModel::new(2e-4)?;
//! let link = LinkModel::from_attempts(attempt, 4000);
//! let p_e = link.channel_success();
//! assert!((p_e - 0.55).abs() < 0.01);        // p_e ≈ 0.551
//! assert!(link.success(3) > link.success(1)); // more channels help
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
pub mod attempts;
pub mod fiber;
pub mod fidelity;
pub mod link;
pub mod monte_carlo;
pub mod prob;
pub mod swap;
pub mod timing;

pub use attempts::AttemptModel;
pub use fiber::ChannelModel;
pub use link::LinkModel;
pub use swap::SwapModel;
pub use timing::SlotTiming;

/// Error type for invalid physical parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicsError {
    /// A probability parameter was outside `[0, 1]` (or a required open
    /// sub-interval).
    InvalidProbability {
        /// Parameter name for diagnostics.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A physical quantity that must be positive was not.
    NonPositive {
        /// Parameter name for diagnostics.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for PhysicsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhysicsError::InvalidProbability { name, value } => {
                write!(f, "{name} must be a probability in [0, 1], got {value}")
            }
            PhysicsError::NonPositive { name, value } => {
                write!(f, "{name} must be positive, got {value}")
            }
        }
    }
}

impl std::error::Error for PhysicsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = PhysicsError::InvalidProbability {
            name: "p_attempt",
            value: 1.5,
        };
        assert!(e.to_string().contains("p_attempt"));
        let e = PhysicsError::NonPositive {
            name: "length_km",
            value: -1.0,
        };
        assert!(e.to_string().contains("positive"));
    }
}
