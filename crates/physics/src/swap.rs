//! Entanglement swapping.
//!
//! The paper assumes swapping succeeds with probability ≈ 1 (citing recent
//! error-corrected encodings) but notes that a swap failure probability
//! "can also be considered as part of the overall failure probability …
//! just incorporating a product term in Equation 2" (§II-4, §III-C). This
//! module implements exactly that: a configurable per-swap success folded
//! into the route success product.

use serde::{Deserialize, Serialize};

use crate::prob::product_success;
use crate::PhysicsError;

/// Per-node entanglement-swapping success model.
///
/// A route with `h` hops performs `h − 1` swaps (one at each intermediate
/// node), so end-to-end success is
/// `P(route) = q_swap^(h−1) · Π_e P_e(n_e)`.
///
/// # Example
///
/// ```
/// use qdn_physics::swap::SwapModel;
///
/// # fn main() -> Result<(), qdn_physics::PhysicsError> {
/// let perfect = SwapModel::perfect();
/// assert_eq!(perfect.route_factor(3), 1.0);
///
/// let lossy = SwapModel::new(0.9)?;
/// assert!((lossy.route_factor(3) - 0.81).abs() < 1e-12); // 2 swaps
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwapModel {
    success: f64,
}

impl SwapModel {
    /// Swapping always succeeds — the paper's default assumption.
    pub fn perfect() -> Self {
        SwapModel { success: 1.0 }
    }

    /// Creates a swap model with the given per-swap success probability.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidProbability`] unless
    /// `success ∈ (0, 1]`.
    pub fn new(success: f64) -> Result<Self, PhysicsError> {
        if !(success > 0.0 && success <= 1.0) {
            return Err(PhysicsError::InvalidProbability {
                name: "swap success probability",
                value: success,
            });
        }
        Ok(SwapModel { success })
    }

    /// Per-swap success probability.
    pub fn success(&self) -> f64 {
        self.success
    }

    /// Number of swaps a route with `hops` edges performs.
    pub fn swaps_for_hops(hops: usize) -> usize {
        hops.saturating_sub(1)
    }

    /// The multiplicative factor swapping contributes to the success of a
    /// route with `hops` edges: `q^(hops−1)`.
    pub fn route_factor(&self, hops: usize) -> f64 {
        if self.success == 1.0 {
            return 1.0;
        }
        self.success.powi(Self::swaps_for_hops(hops) as i32)
    }

    /// End-to-end route success: swap factor times the product of link
    /// successes.
    ///
    /// `link_successes` must yield one probability per edge of the route.
    pub fn route_success<I>(&self, link_successes: I) -> f64
    where
        I: IntoIterator<Item = f64>,
    {
        let probs: Vec<f64> = link_successes.into_iter().collect();
        self.route_factor(probs.len()) * product_success(probs)
    }
}

impl Default for SwapModel {
    fn default() -> Self {
        Self::perfect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_swap_factor_is_one() {
        let s = SwapModel::perfect();
        for hops in 0..10 {
            assert_eq!(s.route_factor(hops), 1.0);
        }
    }

    #[test]
    fn new_validates() {
        assert!(SwapModel::new(0.0).is_err());
        assert!(SwapModel::new(1.1).is_err());
        assert!(SwapModel::new(1.0).is_ok());
        assert!(SwapModel::new(0.5).is_ok());
    }

    #[test]
    fn swaps_count() {
        assert_eq!(SwapModel::swaps_for_hops(0), 0);
        assert_eq!(SwapModel::swaps_for_hops(1), 0);
        assert_eq!(SwapModel::swaps_for_hops(2), 1);
        assert_eq!(SwapModel::swaps_for_hops(5), 4);
    }

    #[test]
    fn route_factor_exponentiates() {
        let s = SwapModel::new(0.5).unwrap();
        assert_eq!(s.route_factor(1), 1.0);
        assert_eq!(s.route_factor(2), 0.5);
        assert_eq!(s.route_factor(4), 0.125);
    }

    #[test]
    fn route_success_perfect_swap_is_product() {
        let s = SwapModel::perfect();
        let p = s.route_success([0.9, 0.8]);
        assert!((p - 0.72).abs() < 1e-12);
    }

    #[test]
    fn route_success_with_lossy_swap() {
        let s = SwapModel::new(0.9).unwrap();
        // 3 links -> 2 swaps.
        let p = s.route_success([0.5, 0.5, 0.5]);
        assert!((p - 0.81 * 0.125).abs() < 1e-12);
    }

    #[test]
    fn empty_route_succeeds() {
        // A zero-hop route (source == destination) trivially succeeds.
        assert_eq!(SwapModel::perfect().route_success(std::iter::empty()), 1.0);
    }
}
