//! Slot timing: attempt duration, decoherence, attempts per slot.
//!
//! The paper (§II-5) cites an entanglement attempt time of ≈ 165 µs and a
//! decoherence (memory) time of ≈ 1.46 s, so "in a time slot, defined as
//! the entanglement duration, thousands of attempts can be made for a
//! single quantum link". The evaluation then fixes `A = 4000` attempts per
//! slot (§V-A-2); [`SlotTiming::max_attempts`] shows that this is
//! comfortably within the physical bound (~8848).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::PhysicsError;

/// Physical timing parameters of a QDN time slot.
///
/// # Example
///
/// ```
/// use qdn_physics::timing::SlotTiming;
///
/// let t = SlotTiming::paper_default();
/// assert!(t.max_attempts() > 4000); // paper's A=4000 is feasible
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotTiming {
    /// Duration of a single entanglement attempt.
    pub attempt_duration: Duration,
    /// Time until an established entanglement decoheres; the slot length.
    pub decoherence_time: Duration,
}

impl SlotTiming {
    /// The paper's cited hardware numbers: 165 µs per attempt, 1.46 s
    /// decoherence (from the quantum link-layer measurements it cites).
    pub fn paper_default() -> Self {
        SlotTiming {
            attempt_duration: Duration::from_micros(165),
            decoherence_time: Duration::from_millis(1460),
        }
    }

    /// Creates a timing model, validating positivity.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::NonPositive`] if either duration is zero.
    pub fn new(
        attempt_duration: Duration,
        decoherence_time: Duration,
    ) -> Result<Self, PhysicsError> {
        if attempt_duration.is_zero() {
            return Err(PhysicsError::NonPositive {
                name: "attempt_duration",
                value: 0.0,
            });
        }
        if decoherence_time.is_zero() {
            return Err(PhysicsError::NonPositive {
                name: "decoherence_time",
                value: 0.0,
            });
        }
        Ok(SlotTiming {
            attempt_duration,
            decoherence_time,
        })
    }

    /// Maximum number of attempts that fit in one slot
    /// (`⌊decoherence / attempt⌋`).
    pub fn max_attempts(&self) -> u64 {
        (self.decoherence_time.as_nanos() / self.attempt_duration.as_nanos()) as u64
    }

    /// Returns `true` if making `attempts` attempts fits within the slot.
    pub fn supports_attempts(&self, attempts: u64) -> bool {
        attempts <= self.max_attempts()
    }
}

impl Default for SlotTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_allows_4000_attempts() {
        let t = SlotTiming::paper_default();
        // 1.46 s / 165 µs ≈ 8848.
        assert_eq!(t.max_attempts(), 8848);
        assert!(t.supports_attempts(4000));
        assert!(!t.supports_attempts(9000));
    }

    #[test]
    fn new_validates() {
        assert!(SlotTiming::new(Duration::ZERO, Duration::from_secs(1)).is_err());
        assert!(SlotTiming::new(Duration::from_micros(1), Duration::ZERO).is_err());
        assert!(SlotTiming::new(Duration::from_micros(1), Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(SlotTiming::default(), SlotTiming::paper_default());
    }

    #[test]
    fn max_attempts_floor_division() {
        let t = SlotTiming::new(Duration::from_micros(300), Duration::from_millis(1)).unwrap();
        assert_eq!(t.max_attempts(), 3); // 1000/300 = 3.33 -> 3
    }
}
