//! Numerically stable probability kernels.
//!
//! The QDN model composes probabilities of the form `1 − (1 − p)^k` at two
//! levels: per-channel over attempts (`p ≈ 2×10⁻⁴`, `k = 4000`) and
//! per-link over channels. Naive evaluation of `(1 − p)^k` loses precision
//! for tiny `p`; the optimizer additionally needs `log` and derivative
//! forms that stay finite for fractional `k` (the continuous relaxation of
//! the allocation problem). Everything here works in log space via
//! [`f64::ln_1p`] / [`f64::exp_m1`].

/// `1 − (1 − p)^k` for real `k ≥ 0`, computed as `−expm1(k·ln1p(−p))`.
///
/// This is the probability that at least one of `k` independent trials
/// with success probability `p` succeeds. Stable for tiny `p` and large
/// `k`.
///
/// # Panics
///
/// Debug-asserts `p ∈ [0, 1]` and `k ≥ 0`.
///
/// # Example
///
/// ```
/// use qdn_physics::prob::at_least_one;
///
/// let p = at_least_one(2e-4, 4000.0);
/// assert!((p - 0.5507).abs() < 1e-3); // 1 - exp(-0.8) ≈ 0.5507
/// assert_eq!(at_least_one(0.0, 100.0), 0.0);
/// assert_eq!(at_least_one(1.0, 1.0), 1.0);
/// ```
pub fn at_least_one(p: f64, k: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "p={p} must be a probability");
    debug_assert!(k >= 0.0, "k={k} must be non-negative");
    if p >= 1.0 && k > 0.0 {
        return 1.0;
    }
    if k == 0.0 {
        return 0.0;
    }
    -f64::exp_m1(k * f64::ln_1p(-p))
}

/// `ln(1 − (1 − p)^k)` for real `k > 0`, computed as
/// `ln(−expm1(k·ln1p(−p)))`.
///
/// Returns `-inf` when the success probability is 0 (`p = 0`), and `0.0`
/// when it is 1 (`p = 1, k > 0`).
///
/// # Example
///
/// ```
/// use qdn_physics::prob::{at_least_one, ln_at_least_one};
///
/// let p = 0.55;
/// let direct = at_least_one(p, 3.0).ln();
/// let stable = ln_at_least_one(p, 3.0);
/// assert!((direct - stable).abs() < 1e-12);
/// ```
pub fn ln_at_least_one(p: f64, k: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "p={p} must be a probability");
    debug_assert!(k >= 0.0, "k={k} must be non-negative");
    if p >= 1.0 && k > 0.0 {
        return 0.0;
    }
    if p <= 0.0 || k == 0.0 {
        return f64::NEG_INFINITY;
    }
    let ln_fail = k * f64::ln_1p(-p); // ln((1-p)^k), <= 0
                                      // ln(1 - e^{ln_fail}); use ln(-expm1(x)) which is stable for x < 0.
    (-f64::exp_m1(ln_fail)).ln()
}

/// First derivative of `k ↦ ln(1 − (1 − p)^k)` at real `k > 0`.
///
/// With `β = 1 − p` and `ρ = β^k`, this is `−ln(β)·ρ / (1 − ρ)`, which is
/// positive and strictly decreasing in `k` (the log-success function is
/// increasing and strictly concave — paper Prop. 1 relies on this).
///
/// # Example
///
/// ```
/// use qdn_physics::prob::d_ln_at_least_one;
///
/// let d1 = d_ln_at_least_one(0.5, 1.0);
/// let d2 = d_ln_at_least_one(0.5, 2.0);
/// assert!(d1 > d2 && d2 > 0.0); // decreasing marginal gain
/// ```
pub fn d_ln_at_least_one(p: f64, k: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p) || p == 1.0);
    debug_assert!(k > 0.0);
    if p >= 1.0 {
        return 0.0;
    }
    if p <= 0.0 {
        return 0.0;
    }
    let ln_beta = f64::ln_1p(-p); // ln(1-p) < 0
    let ln_rho = k * ln_beta;
    // rho/(1-rho) computed stably: exp(ln_rho) / (-expm1(ln_rho)).
    let ratio = ln_rho.exp() / (-f64::exp_m1(ln_rho));
    -ln_beta * ratio
}

/// Probability that *all* of the given independent events succeed:
/// `Π pᵢ`, computed in log space for stability.
///
/// Returns 1 for an empty iterator.
///
/// # Example
///
/// ```
/// use qdn_physics::prob::product_success;
///
/// let p = product_success([0.9, 0.8, 0.5]);
/// assert!((p - 0.36).abs() < 1e-12);
/// assert_eq!(product_success(std::iter::empty::<f64>()), 1.0);
/// ```
pub fn product_success<I>(probs: I) -> f64
where
    I: IntoIterator<Item = f64>,
{
    let mut ln_sum = 0.0;
    for p in probs {
        debug_assert!((0.0..=1.0).contains(&p), "p={p} must be a probability");
        if p <= 0.0 {
            return 0.0;
        }
        ln_sum += p.ln();
    }
    ln_sum.exp()
}

/// Clamps a floating value into `[0, 1]`, mapping NaN to 0.
///
/// Useful at API boundaries where accumulated rounding can push a
/// probability infinitesimally outside the unit interval.
pub fn clamp_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_edge_cases() {
        assert_eq!(at_least_one(0.0, 1000.0), 0.0);
        assert_eq!(at_least_one(1.0, 1.0), 1.0);
        assert_eq!(at_least_one(0.5, 0.0), 0.0);
    }

    #[test]
    fn at_least_one_matches_naive_for_moderate_values() {
        for &(p, k) in &[(0.3f64, 2.0), (0.5, 3.0), (0.9, 1.0), (0.1, 10.0)] {
            let naive = 1.0 - (1.0 - p).powf(k);
            assert!((at_least_one(p, k) - naive).abs() < 1e-12, "p={p} k={k}");
        }
    }

    #[test]
    fn at_least_one_paper_default() {
        // p̃=2e-4, A=4000: 1 - (1-2e-4)^4000 = 1 - exp(4000*ln(0.9998)).
        let p = at_least_one(2e-4, 4000.0);
        let exact = 1.0 - (4000.0 * (1.0f64 - 2e-4).ln()).exp();
        assert!((p - exact).abs() < 1e-12);
        assert!((0.5505..0.5510).contains(&p));
    }

    #[test]
    fn at_least_one_is_monotone_in_k() {
        let mut prev = 0.0;
        for k in 1..20 {
            let cur = at_least_one(0.2, k as f64);
            assert!(cur > prev);
            prev = cur;
        }
    }

    #[test]
    fn at_least_one_tiny_p_no_underflow() {
        // Naive: (1 - 1e-12)^10 rounds to 1.0 - answer would be 0.
        let p = at_least_one(1e-12, 10.0);
        assert!(p > 9.9e-12 && p < 1.01e-11);
    }

    #[test]
    fn ln_at_least_one_consistent() {
        for &(p, k) in &[(0.551, 1.0), (0.551, 2.5), (0.9, 4.0), (0.05, 7.0)] {
            let a = ln_at_least_one(p, k);
            let b = at_least_one(p, k).ln();
            assert!((a - b).abs() < 1e-12, "p={p} k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn ln_at_least_one_edges() {
        assert_eq!(ln_at_least_one(0.0, 5.0), f64::NEG_INFINITY);
        assert_eq!(ln_at_least_one(1.0, 5.0), 0.0);
        assert_eq!(ln_at_least_one(0.5, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for &(p, k) in &[(0.551, 1.0), (0.551, 3.0), (0.2, 2.0), (0.8, 1.5)] {
            let fd = (ln_at_least_one(p, k + h) - ln_at_least_one(p, k - h)) / (2.0 * h);
            let an = d_ln_at_least_one(p, k);
            assert!((fd - an).abs() < 1e-5, "p={p} k={k}: fd={fd} analytic={an}");
        }
    }

    #[test]
    fn derivative_is_positive_and_decreasing() {
        let mut prev = f64::INFINITY;
        for k in 1..30 {
            let d = d_ln_at_least_one(0.551, k as f64);
            assert!(d > 0.0);
            assert!(d < prev);
            prev = d;
        }
    }

    #[test]
    fn derivative_degenerate_p() {
        assert_eq!(d_ln_at_least_one(1.0, 2.0), 0.0);
        assert_eq!(d_ln_at_least_one(0.0, 2.0), 0.0);
    }

    #[test]
    fn product_success_basics() {
        assert_eq!(product_success([1.0, 1.0]), 1.0);
        assert_eq!(product_success([0.5, 0.0, 0.9]), 0.0);
        assert!((product_success([0.5, 0.5]) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn clamp_probability_bounds() {
        assert_eq!(clamp_probability(-0.1), 0.0);
        assert_eq!(clamp_probability(1.1), 1.0);
        assert_eq!(clamp_probability(0.42), 0.42);
        assert_eq!(clamp_probability(f64::NAN), 0.0);
    }
}
