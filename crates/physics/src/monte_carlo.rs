//! Attempt-level Monte-Carlo simulation of entanglement establishment.
//!
//! The analytic model (`P_e(n) = 1 − (1 − p_e)^n`) is what the paper's
//! algorithms optimize; this module simulates the underlying physical
//! process so that:
//!
//! * the simulator can report *realized* EC outcomes (Bernoulli draws),
//! * the analytic formulas are validated against the attempt-level
//!   process in tests,
//! * attempt-latency statistics (which attempt succeeded first) are
//!   available for timing studies.

use rand::{Rng, RngExt};

use crate::link::LinkModel;
use crate::swap::SwapModel;

/// Outcome of simulating one channel for a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelOutcome {
    /// Whether the channel established entanglement within the slot.
    pub succeeded: bool,
    /// 1-based index of the first successful attempt, if any.
    pub first_success_attempt: Option<u64>,
}

/// Simulates one channel making `attempts` attempts, each succeeding with
/// probability `p_attempt`.
///
/// Uses inverse-transform sampling of the geometric distribution (a single
/// `rng` draw) instead of looping over thousands of attempts, which keeps
/// full-network simulations fast while remaining exactly faithful to the
/// i.i.d. attempt process.
///
/// # Example
///
/// ```
/// use qdn_physics::monte_carlo::simulate_channel;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = simulate_channel(&mut rng, 0.5, 10);
/// if out.succeeded {
///     assert!(out.first_success_attempt.unwrap() <= 10);
/// }
/// ```
pub fn simulate_channel<R: Rng + ?Sized>(
    rng: &mut R,
    p_attempt: f64,
    attempts: u64,
) -> ChannelOutcome {
    if p_attempt <= 0.0 || attempts == 0 {
        return ChannelOutcome {
            succeeded: false,
            first_success_attempt: None,
        };
    }
    if p_attempt >= 1.0 {
        return ChannelOutcome {
            succeeded: true,
            first_success_attempt: Some(1),
        };
    }
    // Geometric sampling: first success at attempt k ~ ceil(ln(U)/ln(1-p)).
    let u: f64 = rng.random();
    // Guard against u == 0 (ln -> -inf) by treating it as immediate success.
    let first = if u <= f64::MIN_POSITIVE {
        1
    } else {
        (u.ln() / f64::ln_1p(-p_attempt)).ceil().max(1.0) as u64
    };
    if first <= attempts {
        ChannelOutcome {
            succeeded: true,
            first_success_attempt: Some(first),
        }
    } else {
        ChannelOutcome {
            succeeded: false,
            first_success_attempt: None,
        }
    }
}

/// Outcome of simulating a multi-channel link for a slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkOutcome {
    /// Whether at least one channel succeeded.
    pub succeeded: bool,
    /// Number of channels that succeeded.
    pub successful_channels: u32,
}

/// Simulates a link using `channels` parallel channels, each running the
/// full attempt process.
///
/// Equivalent to `channels` independent [`simulate_channel`] calls, but
/// draws a single binomial sample per link using the per-slot channel
/// success probability (the two processes have identical distributions
/// because channels are independent).
pub fn simulate_link<R: Rng + ?Sized>(rng: &mut R, link: &LinkModel, channels: u32) -> LinkOutcome {
    let p = link.channel_success();
    let mut successes = 0u32;
    for _ in 0..channels {
        if rng.random_bool(p) {
            successes += 1;
        }
    }
    LinkOutcome {
        succeeded: successes > 0,
        successful_channels: successes,
    }
}

/// Simulates end-to-end entanglement over a route: every link must
/// succeed, and every intermediate swap must succeed.
///
/// `links` yields `(link_model, allocated_channels)` per edge, in route
/// order.
///
/// # Example
///
/// ```
/// use qdn_physics::link::LinkModel;
/// use qdn_physics::monte_carlo::simulate_route;
/// use qdn_physics::swap::SwapModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let link = LinkModel::paper_default();
/// let ok = simulate_route(&mut rng, [(link, 3), (link, 3)], &SwapModel::perfect());
/// // With 3 channels per edge each edge succeeds w.p. ~0.91.
/// let _ = ok;
/// ```
pub fn simulate_route<R, I>(rng: &mut R, links: I, swap: &SwapModel) -> bool
where
    R: Rng + ?Sized,
    I: IntoIterator<Item = (LinkModel, u32)>,
{
    let mut hops = 0usize;
    for (link, channels) in links {
        hops += 1;
        if !simulate_link(rng, &link, channels).succeeded {
            return false;
        }
    }
    // All links up; now the swaps.
    for _ in 0..SwapModel::swaps_for_hops(hops) {
        if !rng.random_bool(swap.success()) {
            return false;
        }
    }
    true
}

/// Estimates a success probability by repeated simulation.
///
/// Returns the fraction of `trials` in which `sample` returned `true`.
/// Intended for tests and calibration, not hot paths.
pub fn estimate_probability<R, F>(rng: &mut R, trials: u64, mut sample: F) -> f64
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> bool,
{
    if trials == 0 {
        return 0.0;
    }
    let mut hits = 0u64;
    for _ in 0..trials {
        if sample(rng) {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attempts::AttemptModel;
    use crate::prob::at_least_one;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn channel_zero_probability_never_succeeds() {
        let mut r = rng(1);
        let out = simulate_channel(&mut r, 0.0, 1000);
        assert!(!out.succeeded);
        assert_eq!(out.first_success_attempt, None);
    }

    #[test]
    fn channel_certain_probability_succeeds_immediately() {
        let mut r = rng(1);
        let out = simulate_channel(&mut r, 1.0, 5);
        assert!(out.succeeded);
        assert_eq!(out.first_success_attempt, Some(1));
    }

    #[test]
    fn channel_zero_attempts_never_succeeds() {
        let mut r = rng(1);
        assert!(!simulate_channel(&mut r, 0.9, 0).succeeded);
    }

    #[test]
    fn channel_success_rate_matches_analytic() {
        let mut r = rng(42);
        let p_attempt = 2e-4;
        let attempts = 4000;
        let est = estimate_probability(&mut r, 40_000, |r| {
            simulate_channel(r, p_attempt, attempts).succeeded
        });
        let analytic = at_least_one(p_attempt, attempts as f64);
        assert!(
            (est - analytic).abs() < 0.01,
            "estimate {est} vs analytic {analytic}"
        );
    }

    #[test]
    fn first_success_attempt_within_bounds() {
        let mut r = rng(7);
        for _ in 0..1000 {
            let out = simulate_channel(&mut r, 0.3, 17);
            if let Some(k) = out.first_success_attempt {
                assert!((1..=17).contains(&k));
                assert!(out.succeeded);
            }
        }
    }

    #[test]
    fn first_success_attempt_mean_matches_geometric() {
        // Mean of a geometric(p) truncated to success within A attempts.
        let mut r = rng(11);
        let p = 0.25;
        let mut sum = 0.0;
        let mut count = 0u64;
        for _ in 0..200_000 {
            if let Some(k) = simulate_channel(&mut r, p, 1_000_000).first_success_attempt {
                sum += k as f64;
                count += 1;
            }
        }
        let mean = sum / count as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean} should be ~1/p=4");
    }

    #[test]
    fn link_success_matches_analytic() {
        let mut r = rng(3);
        let link = LinkModel::from_attempts(AttemptModel::paper_default(), 4000);
        for channels in [1u32, 2, 4] {
            let est = estimate_probability(&mut r, 30_000, |r| {
                simulate_link(r, &link, channels).succeeded
            });
            let analytic = link.success(channels);
            assert!(
                (est - analytic).abs() < 0.012,
                "channels={channels}: {est} vs {analytic}"
            );
        }
    }

    #[test]
    fn link_zero_channels_never_succeeds() {
        let mut r = rng(5);
        let link = LinkModel::paper_default();
        assert!(!simulate_link(&mut r, &link, 0).succeeded);
    }

    #[test]
    fn route_success_matches_analytic_product() {
        let mut r = rng(9);
        let link = LinkModel::paper_default();
        let swap = SwapModel::perfect();
        let est = estimate_probability(&mut r, 30_000, |r| {
            simulate_route(r, [(link, 2), (link, 3)], &swap)
        });
        let analytic = link.success(2) * link.success(3);
        assert!(
            (est - analytic).abs() < 0.012,
            "estimate {est} vs analytic {analytic}"
        );
    }

    #[test]
    fn route_with_lossy_swap_reduced() {
        let mut r = rng(13);
        let link = LinkModel::new(0.9999).unwrap();
        let swap = SwapModel::new(0.5).unwrap();
        // 3-hop route, links nearly certain -> success dominated by 2 swaps.
        let est = estimate_probability(&mut r, 30_000, |r| {
            simulate_route(r, [(link, 4), (link, 4), (link, 4)], &swap)
        });
        assert!((est - 0.25).abs() < 0.02, "estimate {est} should be ~0.25");
    }

    #[test]
    fn empty_route_always_succeeds() {
        let mut r = rng(17);
        assert!(simulate_route(
            &mut r,
            std::iter::empty(),
            &SwapModel::perfect()
        ));
    }

    #[test]
    fn estimate_probability_zero_trials() {
        let mut r = rng(19);
        assert_eq!(estimate_probability(&mut r, 0, |_| true), 0.0);
    }
}
