//! Per-channel attempt model.
//!
//! A single entanglement attempt on one quantum channel succeeds with
//! probability `p̃_e` (as low as `2.18×10⁻⁴` over metropolitan fiber, the
//! paper cites). Within a slot a channel makes `A` attempts, all
//! independent, so the per-slot, per-channel success probability is
//! `p_e = 1 − (1 − p̃_e)^A` (§III-B).

use serde::{Deserialize, Serialize};

use crate::prob::at_least_one;
use crate::PhysicsError;

/// The success probability of a *single* entanglement attempt on one
/// channel.
///
/// # Example
///
/// ```
/// use qdn_physics::attempts::AttemptModel;
///
/// # fn main() -> Result<(), qdn_physics::PhysicsError> {
/// let m = AttemptModel::paper_default();
/// assert_eq!(m.probability(), 2e-4);
/// let per_slot = m.success_after(4000);
/// assert!((per_slot - 0.5507).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttemptModel {
    probability: f64,
}

impl AttemptModel {
    /// The paper's evaluation default: `p̃ = 2×10⁻⁴` per attempt (§V-A-2).
    pub fn paper_default() -> Self {
        AttemptModel { probability: 2e-4 }
    }

    /// The hardware-measured value the paper cites in §II-5:
    /// `p̃ = 2.18×10⁻⁴`.
    pub fn cited_hardware() -> Self {
        AttemptModel {
            probability: 2.18e-4,
        }
    }

    /// Creates an attempt model.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidProbability`] unless
    /// `probability ∈ (0, 1]`.
    pub fn new(probability: f64) -> Result<Self, PhysicsError> {
        if !(probability > 0.0 && probability <= 1.0) {
            return Err(PhysicsError::InvalidProbability {
                name: "attempt probability",
                value: probability,
            });
        }
        Ok(AttemptModel { probability })
    }

    /// The single-attempt success probability `p̃`.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Per-slot, per-channel success after `attempts` independent
    /// attempts: `p = 1 − (1 − p̃)^A`.
    pub fn success_after(&self, attempts: u64) -> f64 {
        at_least_one(self.probability, attempts as f64)
    }

    /// Expected number of attempts until the first success (geometric
    /// mean), `1 / p̃`.
    pub fn expected_attempts_to_success(&self) -> f64 {
        1.0 / self.probability
    }
}

impl Default for AttemptModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_value() {
        assert_eq!(AttemptModel::paper_default().probability(), 2e-4);
        assert_eq!(AttemptModel::cited_hardware().probability(), 2.18e-4);
    }

    #[test]
    fn new_validates_range() {
        assert!(AttemptModel::new(0.0).is_err());
        assert!(AttemptModel::new(-0.1).is_err());
        assert!(AttemptModel::new(1.1).is_err());
        assert!(AttemptModel::new(f64::NAN).is_err());
        assert!(AttemptModel::new(1.0).is_ok());
        assert!(AttemptModel::new(1e-9).is_ok());
    }

    #[test]
    fn success_after_monotone_in_attempts() {
        let m = AttemptModel::paper_default();
        assert_eq!(m.success_after(0), 0.0);
        let mut prev = 0.0;
        for a in [1u64, 10, 100, 1000, 4000, 10000] {
            let p = m.success_after(a);
            assert!(p > prev);
            prev = p;
        }
        assert!(prev < 1.0);
    }

    #[test]
    fn expected_attempts() {
        let m = AttemptModel::new(0.01).unwrap();
        assert!((m.expected_attempts_to_success() - 100.0).abs() < 1e-9);
    }
}
