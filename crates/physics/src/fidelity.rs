//! Werner-state fidelity tracking and entanglement purification.
//!
//! The paper treats fidelity as an *extension*: "we can easily integrate a
//! constraint into P1, which calculates the fidelity of the chosen route
//! and ensures it remains below the fidelity target in each time slot …
//! analogous to aforementioned capacity constraints" (§III-C). This module
//! provides the standard Werner-state algebra needed for that extension:
//!
//! * [`Fidelity`] — a validated fidelity value in `[1/4, 1]` for two-qubit
//!   Werner states,
//! * [`swap_fidelity`] — fidelity composition under entanglement swapping,
//! * [`route_fidelity`] — end-to-end fidelity of a multi-hop route,
//! * [`purify`] — one round of BBPSSW/DEJMPS-style purification.
//!
//! `qdn-core` exposes a per-slot fidelity constraint built on these
//! primitives (see `qdn_core::problem`).

use serde::{Deserialize, Serialize};

use crate::PhysicsError;

/// Fidelity of a two-qubit Werner state with respect to a maximally
/// entangled Bell state.
///
/// Valid values lie in `[1/4, 1]`: `1/4` is a maximally mixed state, `1`
/// a perfect Bell pair, and values above `1/2` are entangled.
///
/// # Example
///
/// ```
/// use qdn_physics::fidelity::Fidelity;
///
/// # fn main() -> Result<(), qdn_physics::PhysicsError> {
/// let f = Fidelity::new(0.95)?;
/// assert!(f.is_entangled());
/// assert_eq!(f.value(), 0.95);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Fidelity(f64);

impl Fidelity {
    /// The fidelity of a perfect Bell pair.
    pub const PERFECT: Fidelity = Fidelity(1.0);
    /// The fidelity of the maximally mixed two-qubit state.
    pub const MIXED: Fidelity = Fidelity(0.25);

    /// Creates a fidelity value.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidProbability`] unless
    /// `value ∈ [1/4, 1]`.
    pub fn new(value: f64) -> Result<Self, PhysicsError> {
        if !(0.25..=1.0).contains(&value) {
            return Err(PhysicsError::InvalidProbability {
                name: "fidelity",
                value,
            });
        }
        Ok(Fidelity(value))
    }

    /// The raw fidelity value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether the state is entangled (`F > 1/2`).
    pub fn is_entangled(self) -> bool {
        self.0 > 0.5
    }

    /// The Werner parameter `w = (4F − 1) / 3 ∈ [0, 1]`.
    ///
    /// Werner states compose multiplicatively in `w` under swapping, which
    /// is what makes [`route_fidelity`] a simple product.
    pub fn werner_parameter(self) -> f64 {
        (4.0 * self.0 - 1.0) / 3.0
    }

    /// Builds a fidelity from a Werner parameter `w ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidProbability`] for out-of-range `w`.
    pub fn from_werner_parameter(w: f64) -> Result<Self, PhysicsError> {
        if !(0.0..=1.0).contains(&w) {
            return Err(PhysicsError::InvalidProbability {
                name: "werner parameter",
                value: w,
            });
        }
        Fidelity::new((3.0 * w + 1.0) / 4.0)
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F={:.4}", self.0)
    }
}

/// Fidelity after swapping two Werner pairs with fidelities `a` and `b`.
///
/// For Werner states the output Werner parameter is the product of the
/// input parameters: `w_out = w_a · w_b`, i.e.
/// `F_out = (1 + 3·w_a·w_b) / 4 = F_a·F_b + (1−F_a)(1−F_b)/3`.
///
/// # Example
///
/// ```
/// use qdn_physics::fidelity::{swap_fidelity, Fidelity};
///
/// # fn main() -> Result<(), qdn_physics::PhysicsError> {
/// let f = Fidelity::new(0.9)?;
/// let out = swap_fidelity(f, f);
/// assert!(out.value() < f.value()); // swapping degrades fidelity
/// assert!(out.value() > 0.8);
/// # Ok(())
/// # }
/// ```
pub fn swap_fidelity(a: Fidelity, b: Fidelity) -> Fidelity {
    let w = a.werner_parameter() * b.werner_parameter();
    Fidelity::from_werner_parameter(w).expect("product of [0,1] parameters stays in [0,1]")
}

/// End-to-end fidelity of a route whose elementary links have the given
/// fidelities: the Werner parameters multiply across hops.
///
/// Returns [`Fidelity::PERFECT`] for an empty route.
pub fn route_fidelity<I>(links: I) -> Fidelity
where
    I: IntoIterator<Item = Fidelity>,
{
    let w: f64 = links.into_iter().map(Fidelity::werner_parameter).product();
    Fidelity::from_werner_parameter(w.clamp(0.0, 1.0)).expect("clamped parameter is valid")
}

/// Result of one purification round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PurificationOutcome {
    /// Fidelity of the surviving pair, conditioned on success.
    pub fidelity: Fidelity,
    /// Probability that the purification round succeeds.
    pub success_probability: f64,
}

/// One round of BBPSSW purification of two identical Werner pairs with
/// fidelity `f`.
///
/// Output fidelity (conditioned on success):
/// `F' = (F² + ((1−F)/3)²) / (F² + 2F(1−F)/3 + 5((1−F)/3)²)`,
/// success probability = the denominator. Improves fidelity whenever
/// `F > 1/2`.
///
/// # Example
///
/// ```
/// use qdn_physics::fidelity::{purify, Fidelity};
///
/// # fn main() -> Result<(), qdn_physics::PhysicsError> {
/// let f = Fidelity::new(0.8)?;
/// let out = purify(f);
/// assert!(out.fidelity.value() > 0.8);
/// assert!(out.success_probability > 0.5);
/// # Ok(())
/// # }
/// ```
pub fn purify(f: Fidelity) -> PurificationOutcome {
    let fv = f.value();
    let rest = (1.0 - fv) / 3.0;
    let p_success = fv * fv + 2.0 * fv * rest + 5.0 * rest * rest;
    let f_out = (fv * fv + rest * rest) / p_success;
    PurificationOutcome {
        fidelity: Fidelity::new(f_out.clamp(0.25, 1.0)).expect("clamped"),
        success_probability: p_success,
    }
}

/// A nested (recurrence) purification plan: how many BBPSSW levels are
/// needed to lift an elementary fidelity to a target, and what it costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PurificationPlan {
    /// Number of purification levels (0 = the elementary pair already
    /// meets the target).
    pub rounds: u32,
    /// Fidelity after the final level.
    pub final_fidelity: Fidelity,
    /// Expected number of elementary pairs consumed, counting retries of
    /// failed rounds (`2/p_success` branching per level).
    pub expected_pairs: f64,
}

/// Plans nested entanglement purification: at each level two identical
/// pairs from the previous level are purified into one.
///
/// Returns `None` when the target is unreachable within `max_rounds`
/// levels — e.g. a non-entangled input (`F ≤ 1/2`, which purification
/// cannot improve) or a target above the scheme's fixed point.
///
/// # Example
///
/// ```
/// use qdn_physics::fidelity::{plan_purification, Fidelity};
///
/// # fn main() -> Result<(), qdn_physics::PhysicsError> {
/// let elementary = Fidelity::new(0.8)?;
/// let plan = plan_purification(elementary, 0.95, 16).unwrap();
/// assert!(plan.rounds >= 1);
/// assert!(plan.final_fidelity.value() >= 0.95);
/// assert!(plan.expected_pairs > 2.0); // at least one round of two pairs
/// # Ok(())
/// # }
/// ```
pub fn plan_purification(
    initial: Fidelity,
    target: f64,
    max_rounds: u32,
) -> Option<PurificationPlan> {
    if initial.value() >= target {
        return Some(PurificationPlan {
            rounds: 0,
            final_fidelity: initial,
            expected_pairs: 1.0,
        });
    }
    if !initial.is_entangled() {
        return None; // purification cannot create entanglement
    }
    let mut fidelity = initial;
    let mut expected_pairs = 1.0f64;
    for round in 1..=max_rounds {
        let outcome = purify(fidelity);
        if outcome.fidelity.value() <= fidelity.value() + 1e-12 {
            return None; // fixed point reached below the target
        }
        // Each round consumes two pairs of the previous level and retries
        // on failure: expected input pairs double and divide by success.
        expected_pairs = 2.0 * expected_pairs / outcome.success_probability;
        fidelity = outcome.fidelity;
        if fidelity.value() >= target {
            return Some(PurificationPlan {
                rounds: round,
                final_fidelity: fidelity,
                expected_pairs,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert!(Fidelity::new(0.2).is_err());
        assert!(Fidelity::new(1.01).is_err());
        assert!(Fidelity::new(0.25).is_ok());
        assert!(Fidelity::new(1.0).is_ok());
    }

    #[test]
    fn entanglement_threshold() {
        assert!(!Fidelity::new(0.5).unwrap().is_entangled());
        assert!(Fidelity::new(0.51).unwrap().is_entangled());
    }

    #[test]
    fn werner_round_trip() {
        for &f in &[0.25, 0.5, 0.7, 0.95, 1.0] {
            let fid = Fidelity::new(f).unwrap();
            let back = Fidelity::from_werner_parameter(fid.werner_parameter()).unwrap();
            assert!((back.value() - f).abs() < 1e-12);
        }
    }

    #[test]
    fn perfect_and_mixed_extremes() {
        assert_eq!(Fidelity::PERFECT.werner_parameter(), 1.0);
        assert_eq!(Fidelity::MIXED.werner_parameter(), 0.0);
    }

    #[test]
    fn swap_degrades_fidelity() {
        let f = Fidelity::new(0.9).unwrap();
        let out = swap_fidelity(f, f);
        assert!(out.value() < 0.9);
        // Explicit formula check: F_out = F² + (1-F)²/3 ... via Werner:
        let w = f.werner_parameter();
        let expected = (3.0 * w * w + 1.0) / 4.0;
        assert!((out.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn swap_with_perfect_is_identity() {
        let f = Fidelity::new(0.8).unwrap();
        let out = swap_fidelity(f, Fidelity::PERFECT);
        assert!((out.value() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn route_fidelity_is_product_of_parameters() {
        let f = Fidelity::new(0.9).unwrap();
        let route = route_fidelity([f, f, f]);
        let w = f.werner_parameter();
        let expected = (3.0 * w * w * w + 1.0) / 4.0;
        assert!((route.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn route_fidelity_empty_is_perfect() {
        assert_eq!(route_fidelity(std::iter::empty()), Fidelity::PERFECT);
    }

    #[test]
    fn route_fidelity_decreases_with_hops() {
        let f = Fidelity::new(0.9).unwrap();
        let mut prev = 1.0;
        for hops in 1..8 {
            let route = route_fidelity(std::iter::repeat_n(f, hops));
            assert!(route.value() < prev);
            prev = route.value();
        }
    }

    #[test]
    fn purification_improves_entangled_states() {
        for &fv in &[0.6, 0.7, 0.8, 0.9, 0.99] {
            let f = Fidelity::new(fv).unwrap();
            let out = purify(f);
            assert!(out.fidelity.value() > fv, "F={fv}");
            assert!((0.0..=1.0).contains(&out.success_probability));
        }
    }

    #[test]
    fn purification_fixed_points() {
        // F = 1 is a fixed point.
        let out = purify(Fidelity::PERFECT);
        assert!((out.fidelity.value() - 1.0).abs() < 1e-12);
        assert!((out.success_probability - 1.0).abs() < 1e-12);
        // F = 1/4 (Werner parameter 0) stays at 1/4.
        let out = purify(Fidelity::MIXED);
        assert!((out.fidelity.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        assert_eq!(Fidelity::new(0.5).unwrap().to_string(), "F=0.5000");
    }

    #[test]
    fn plan_zero_rounds_when_already_met() {
        let f = Fidelity::new(0.9).unwrap();
        let plan = plan_purification(f, 0.85, 10).unwrap();
        assert_eq!(plan.rounds, 0);
        assert_eq!(plan.final_fidelity, f);
        assert_eq!(plan.expected_pairs, 1.0);
    }

    #[test]
    fn plan_reaches_reachable_target() {
        let plan = plan_purification(Fidelity::new(0.75).unwrap(), 0.9, 20).unwrap();
        assert!(plan.rounds >= 1);
        assert!(plan.final_fidelity.value() >= 0.9);
        // More rounds means strictly more pairs.
        let easier = plan_purification(Fidelity::new(0.75).unwrap(), 0.8, 20).unwrap();
        assert!(easier.rounds <= plan.rounds);
        assert!(easier.expected_pairs <= plan.expected_pairs);
    }

    #[test]
    fn plan_rejects_separable_input() {
        assert!(plan_purification(Fidelity::new(0.5).unwrap(), 0.9, 50).is_none());
        assert!(plan_purification(Fidelity::new(0.3).unwrap(), 0.9, 50).is_none());
    }

    #[test]
    fn plan_rejects_unreachable_target_in_round_budget() {
        // One round from 0.6 cannot reach 0.99.
        assert!(plan_purification(Fidelity::new(0.6).unwrap(), 0.99, 1).is_none());
    }

    #[test]
    fn plan_cost_grows_with_distance_to_target() {
        let cheap = plan_purification(Fidelity::new(0.85).unwrap(), 0.9, 20).unwrap();
        let dear = plan_purification(Fidelity::new(0.7).unwrap(), 0.9, 20).unwrap();
        assert!(dear.expected_pairs > cheap.expected_pairs);
    }
}
