//! Property-based tests for the entanglement physics kernels.

use proptest::prelude::*;
use qdn_physics::fidelity::{purify, route_fidelity, swap_fidelity, Fidelity};
use qdn_physics::link::LinkModel;
use qdn_physics::prob::{at_least_one, d_ln_at_least_one, ln_at_least_one};
use qdn_physics::swap::SwapModel;

proptest! {
    /// `at_least_one` is a probability, monotone in both arguments.
    #[test]
    fn at_least_one_bounds(p in 1e-9f64..1.0, k in 0.0f64..10_000.0) {
        let v = at_least_one(p, k);
        prop_assert!((0.0..=1.0).contains(&v));
        let v_more_k = at_least_one(p, k + 1.0);
        prop_assert!(v_more_k >= v);
        let v_more_p = at_least_one((p * 1.5).min(1.0), k);
        if k > 0.0 {
            prop_assert!(v_more_p >= v - 1e-15);
        }
    }

    /// `ln_at_least_one` agrees with the direct computation where the
    /// direct computation is well-conditioned.
    #[test]
    fn ln_matches_direct(p in 0.01f64..0.99, k in 0.5f64..50.0) {
        let stable = ln_at_least_one(p, k);
        let direct = at_least_one(p, k).ln();
        prop_assert!((stable - direct).abs() < 1e-9,
            "p={p} k={k}: stable={stable} direct={direct}");
    }

    /// The derivative is non-negative and decreasing (concavity).
    #[test]
    fn derivative_monotone(p in 0.01f64..0.99, k in 1.0f64..50.0) {
        let d1 = d_ln_at_least_one(p, k);
        let d2 = d_ln_at_least_one(p, k + 1.0);
        prop_assert!(d1 >= 0.0);
        prop_assert!(d2 <= d1 + 1e-15);
    }

    /// LinkModel success is monotone in channel count and consistent with
    /// the marginal decomposition.
    #[test]
    fn link_success_telescopes(p in 0.01f64..0.99, n in 1u32..20) {
        let link = LinkModel::new(p).unwrap();
        // ln P(n) = ln P(1) + sum of marginals.
        let mut acc = link.ln_success(1.0);
        for i in 1..n {
            acc += link.marginal_ln_gain(i);
        }
        prop_assert!((acc - link.ln_success(n as f64)).abs() < 1e-9);
    }

    /// Route success with perfect swap equals the product of link
    /// successes and never exceeds the weakest link.
    #[test]
    fn route_success_bounded_by_weakest(probs in proptest::collection::vec(0.05f64..0.95, 1..6)) {
        let swap = SwapModel::perfect();
        let p = swap.route_success(probs.iter().copied());
        let min = probs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(p <= min + 1e-12);
        prop_assert!(p >= 0.0);
    }

    /// Swapping Werner pairs never increases fidelity beyond either input.
    #[test]
    fn swap_fidelity_contracts(a in 0.25f64..1.0, b in 0.25f64..1.0) {
        let fa = Fidelity::new(a).unwrap();
        let fb = Fidelity::new(b).unwrap();
        let out = swap_fidelity(fa, fb);
        prop_assert!(out.value() <= a.max(b) + 1e-12);
        prop_assert!(out.value() >= 0.25 - 1e-12);
    }

    /// Route fidelity is permutation-invariant (Werner parameters multiply).
    #[test]
    fn route_fidelity_permutation_invariant(mut vals in proptest::collection::vec(0.3f64..1.0, 2..6)) {
        let fids: Vec<Fidelity> = vals.iter().map(|&v| Fidelity::new(v).unwrap()).collect();
        let fwd = route_fidelity(fids.iter().copied());
        vals.reverse();
        let rev_fids: Vec<Fidelity> = vals.iter().map(|&v| Fidelity::new(v).unwrap()).collect();
        let rev = route_fidelity(rev_fids.iter().copied());
        prop_assert!((fwd.value() - rev.value()).abs() < 1e-12);
    }

    /// Purification improves any strictly entangled state and emits a
    /// valid probability.
    #[test]
    fn purification_improves(f in 0.51f64..0.999) {
        let fid = Fidelity::new(f).unwrap();
        let out = purify(fid);
        prop_assert!(out.fidelity.value() > f);
        prop_assert!((0.0..=1.0).contains(&out.success_probability));
    }
}
