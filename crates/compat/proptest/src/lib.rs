//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! numeric-range and tuple strategies, `collection::vec` /
//! `collection::btree_set`, `bool::ANY`, the [`proptest!`] macro, and the
//! `prop_assert*` family. Cases are generated from a deterministic
//! per-test RNG; there is no shrinking — a failing case reports its case
//! number and message instead.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Error signalled by `prop_assert*` / `prop_assume`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure with its message.
    Fail(String),
    /// Case rejected by `prop_assume` (not a failure).
    Reject,
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising a broad sample (tests needing more set it explicitly).
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values; rejected draws are retried (up to a
    /// bound, then the test case is rejected).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive draws");
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Lengths accepted by [`vec`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// A `Vec` of values drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` with *up to* the requested number of distinct values.
    pub fn btree_set<S: Strategy, L: SizeRange>(element: S, size: L) -> BTreeSetStrategy<S, L>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for BTreeSetStrategy<S, L>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            // Bounded attempts: duplicates simply shrink the set.
            for _ in 0..n * 4 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod prelude {
    //! The glob-import surface mirrored from upstream proptest.

    pub use crate as prop;
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Runs one property-test body over `config.cases` generated cases.
///
/// Not part of the public proptest API — the [`proptest!`] macro expands
/// to calls of this function.
pub fn run_cases<T>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: impl Strategy<Value = T>,
    body: impl Fn(T) -> TestCaseResult,
) {
    // Deterministic per-test seed: stable across runs, distinct per test.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let input = strategy.generate(&mut rng);
        match body(input) {
            Ok(()) | Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case {case}/{} failed: {msg}", config.cases)
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Rejects the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Mirrors upstream's
/// `proptest! { #![proptest_config(...)] #[test] fn name(x in strat) {...} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    stringify!($name),
                    &config,
                    ($($strat,)+),
                    |($($arg,)+)| -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u8..5, 3usize)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            collection::vec(0usize..n, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_header_accepted(b in bool::ANY) {
            let _ = b;
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        crate::run_cases(
            "always_fails",
            &ProptestConfig::with_cases(3),
            (0u32..10,),
            |(_x,)| -> crate::TestCaseResult {
                prop_assert!(false, "forced failure");
                Ok(())
            },
        );
    }
}
