//! Offline stand-in for `criterion`.
//!
//! Mirrors the small API surface the bench suite uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `sample_size`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — on top of a
//! plain wall-clock harness: each benchmark is warmed up, then timed over
//! `samples` batches, and the per-iteration median/mean/min are printed.
//! Setting `CRITERION_JSON=<path>` appends one JSON line per benchmark
//! (used to record `BENCH_*.json` snapshots).

use std::hint::black_box as std_black_box;
use std::io::Write;
use std::time::Instant;

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark("", &name.into(), 20, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&self.group, &name.into(), self.sample_size, f);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Handed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    /// Iterations the routine should run this sample.
    iters: u64,
    /// Measured duration of the sample, in nanoseconds.
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one(f: &mut impl FnMut(&mut Bencher), iters: u64) -> u128 {
    let mut b = Bencher {
        iters,
        elapsed_ns: 0,
    };
    f(&mut b);
    b.elapsed_ns
}

fn run_benchmark(group: &str, name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate the iteration count to ~40 ms per sample (overridable via
    // `CRITERION_TARGET_MS`, e.g. `CRITERION_TARGET_MS=4` for the CI
    // bench smoke job's reduced-iteration run). The target must be much
    // larger than a single iteration of cache-warming benchmarks, so
    // per-sample setup work inside the benchmark closure (before `iter`)
    // amortizes away instead of dominating every sample.
    const DEFAULT_TARGET_MS: u128 = 40;
    let target_ns: u128 = std::env::var("CRITERION_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u128>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(DEFAULT_TARGET_MS)
        * 1_000_000;
    let mut iters = 1u64;
    loop {
        let ns = run_one(&mut f, iters).max(1);
        if ns >= target_ns || iters >= 1 << 24 {
            break;
        }
        let scale = (target_ns / ns).clamp(1, 128) as u64 + 1;
        iters = iters.saturating_mul(scale).min(1 << 24);
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| run_one(&mut f, iters) as f64 / iters as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter[0];
    let full = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    eprintln!("bench {full:<48} median {median:>12.1} ns/iter (mean {mean:.1}, min {min:.1})");

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{full}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\"samples\":{samples},\"iters_per_sample\":{iters}}}"
            );
        }
    }
}

/// Declares a benchmark group entry point, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
