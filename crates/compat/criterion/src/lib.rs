//! Offline stand-in for `criterion`.
//!
//! Mirrors the small API surface the bench suite uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `sample_size`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — on top of a
//! plain wall-clock harness: each benchmark is warmed up, then timed over
//! `samples` batches, and the per-iteration median/mean/min are printed.
//! Setting `CRITERION_JSON=<path>` appends one JSON line per benchmark
//! (used to record `BENCH_*.json` snapshots). A relative path is
//! resolved against `CARGO_WORKSPACE_DIR` — the workspace root, exported
//! to every cargo-run process by the repo's `.cargo/config.toml` —
//! because cargo runs bench binaries with the *package* directory as
//! cwd, which used to make `CRITERION_JSON=BENCH_foo.json` silently
//! write into `crates/bench/`. Outside cargo (no `CARGO_WORKSPACE_DIR`)
//! a relative path fails loudly instead of landing somewhere surprising.

use std::hint::black_box as std_black_box;
use std::io::Write;
use std::time::Instant;

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark("", &name.into(), 20, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&self.group, &name.into(), self.sample_size, f);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Handed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    /// Iterations the routine should run this sample.
    iters: u64,
    /// Measured duration of the sample, in nanoseconds.
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one(f: &mut impl FnMut(&mut Bencher), iters: u64) -> u128 {
    let mut b = Bencher {
        iters,
        elapsed_ns: 0,
    };
    f(&mut b);
    b.elapsed_ns
}

fn run_benchmark(group: &str, name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate the iteration count to ~40 ms per sample (overridable via
    // `CRITERION_TARGET_MS`, e.g. `CRITERION_TARGET_MS=4` for the CI
    // bench smoke job's reduced-iteration run). The target must be much
    // larger than a single iteration of cache-warming benchmarks, so
    // per-sample setup work inside the benchmark closure (before `iter`)
    // amortizes away instead of dominating every sample.
    const DEFAULT_TARGET_MS: u128 = 40;
    let target_ns: u128 = std::env::var("CRITERION_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u128>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(DEFAULT_TARGET_MS)
        * 1_000_000;
    let mut iters = 1u64;
    loop {
        let ns = run_one(&mut f, iters).max(1);
        if ns >= target_ns || iters >= 1 << 24 {
            break;
        }
        let scale = (target_ns / ns).clamp(1, 128) as u64 + 1;
        iters = iters.saturating_mul(scale).min(1 << 24);
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| run_one(&mut f, iters) as f64 / iters as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter[0];
    let full = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    eprintln!("bench {full:<48} median {median:>12.1} ns/iter (mean {mean:.1}, min {min:.1})");

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        let path = resolve_snapshot_path(&path, std::env::var_os("CARGO_WORKSPACE_DIR").as_deref());
        // Snapshot requested but unwritable is a hard error: a bench run
        // that "succeeds" with a missing snapshot surfaces later as a
        // confusing bench-gate failure with no pointer to the cause.
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                    panic!("CRITERION_JSON: cannot create {}: {e}", parent.display())
                });
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("CRITERION_JSON: cannot open {}: {e}", path.display()));
        writeln!(
            file,
            "{{\"bench\":\"{full}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\"samples\":{samples},\"iters_per_sample\":{iters}}}"
        )
        .unwrap_or_else(|e| panic!("CRITERION_JSON: cannot write {}: {e}", path.display()));
    }
}

/// Resolves a `CRITERION_JSON` value: absolute paths pass through;
/// relative paths anchor to the workspace root (cargo runs bench
/// binaries with the package directory as cwd, so resolving against cwd
/// would scatter snapshots across `crates/*`).
///
/// # Panics
///
/// When `path` is relative and no workspace root is available — failing
/// loudly beats silently writing the snapshot to the wrong place.
fn resolve_snapshot_path(
    path: &str,
    workspace_root: Option<&std::ffi::OsStr>,
) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        return p.to_path_buf();
    }
    match workspace_root {
        Some(root) if !root.is_empty() => std::path::Path::new(root).join(p),
        _ => panic!(
            "CRITERION_JSON is a relative path ({path}) but CARGO_WORKSPACE_DIR is unset; \
             cargo runs bench binaries with the package directory as cwd, so resolving \
             relative to cwd would write the snapshot to the wrong place. Run through \
             cargo (the workspace .cargo/config.toml exports CARGO_WORKSPACE_DIR) or \
             pass an absolute path."
        ),
    }
}

/// Declares a benchmark group entry point, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_paths_resolve_against_workspace_root() {
        use std::ffi::OsStr;
        use std::path::PathBuf;
        // Absolute: untouched, workspace root irrelevant.
        assert_eq!(
            resolve_snapshot_path("/tmp/BENCH.json", None),
            PathBuf::from("/tmp/BENCH.json")
        );
        // Relative: anchored to the workspace root, not the cwd.
        assert_eq!(
            resolve_snapshot_path("BENCH.json", Some(OsStr::new("/ws"))),
            PathBuf::from("/ws/BENCH.json")
        );
        assert_eq!(
            resolve_snapshot_path("target/snap/BENCH.json", Some(OsStr::new("/ws"))),
            PathBuf::from("/ws/target/snap/BENCH.json")
        );
    }

    #[test]
    #[should_panic(expected = "CARGO_WORKSPACE_DIR is unset")]
    fn relative_snapshot_without_workspace_root_fails_loudly() {
        resolve_snapshot_path("BENCH.json", None);
    }

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
