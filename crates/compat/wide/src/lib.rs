//! A tiny SIMD helper — the subset of the `wide` crate's `f64x4` this
//! workspace uses, as a plain `[f64; 4]` newtype.
//!
//! No intrinsics and no `unsafe`: the lane-parallel arithmetic below
//! compiles to vector instructions wherever the target has them (LLVM
//! vectorizes fixed-length array arithmetic reliably), and on targets
//! without SIMD it is exactly the four-accumulator scalar unrolling the
//! solver passes want anyway (breaking the single-accumulator dependency
//! chain).
//!
//! **Determinism**: every operation is lane-wise with a fixed lane
//! count, and [`f64x4::reduce_add`] combines lanes in the documented
//! fixed order `(l0 + l2) + (l1 + l3)` — a pairwise tree, the same shape
//! a hardware horizontal add uses. Results are bit-identical across
//! runs, targets, and pool widths; they differ from a naive sequential
//! sum *by construction* (different association), so switching a loop to
//! chunked accumulation is a one-time, deterministic trajectory change.

/// Four f64 lanes.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct f64x4(pub [f64; 4]);

impl f64x4 {
    /// All lanes zero.
    pub const ZERO: f64x4 = f64x4([0.0; 4]);

    /// Broadcasts `v` to every lane.
    #[inline]
    pub fn splat(v: f64) -> f64x4 {
        f64x4([v; 4])
    }

    /// Loads four consecutive lanes from a slice (must be ≥ 4 long).
    #[inline]
    pub fn from_slice(s: &[f64]) -> f64x4 {
        f64x4([s[0], s[1], s[2], s[3]])
    }

    /// Horizontal sum in the fixed pairwise order `(l0+l2) + (l1+l3)`.
    #[inline]
    pub fn reduce_add(self) -> f64 {
        let [a, b, c, d] = self.0;
        (a + c) + (b + d)
    }

    /// Lane-wise fused-shape multiply-add `self + a * b` (not an FMA
    /// instruction — two roundings, bit-identical to `+` and `*`).
    #[inline]
    pub fn mul_add_lanes(self, a: f64x4, b: f64x4) -> f64x4 {
        let mut out = self.0;
        for ((o, &x), &y) in out.iter_mut().zip(&a.0).zip(&b.0) {
            *o += x * y;
        }
        f64x4(out)
    }
}

impl std::ops::Add for f64x4 {
    type Output = f64x4;
    #[inline]
    fn add(self, rhs: f64x4) -> f64x4 {
        let mut out = self.0;
        for (o, &r) in out.iter_mut().zip(&rhs.0) {
            *o += r;
        }
        f64x4(out)
    }
}

impl std::ops::Sub for f64x4 {
    type Output = f64x4;
    #[inline]
    fn sub(self, rhs: f64x4) -> f64x4 {
        let mut out = self.0;
        for (o, &r) in out.iter_mut().zip(&rhs.0) {
            *o -= r;
        }
        f64x4(out)
    }
}

impl std::ops::Mul for f64x4 {
    type Output = f64x4;
    #[inline]
    fn mul(self, rhs: f64x4) -> f64x4 {
        let mut out = self.0;
        for (o, &r) in out.iter_mut().zip(&rhs.0) {
            *o *= r;
        }
        f64x4(out)
    }
}

/// Sums `values` with 4-wide chunked accumulation: one vector
/// accumulator over the 4-aligned prefix (reduced in the fixed
/// [`f64x4::reduce_add`] order), then the ≤3 tail lanes added left to
/// right. Deterministic for a given input length and contents.
#[inline]
pub fn sum_chunked(values: &[f64]) -> f64 {
    let mut acc = f64x4::ZERO;
    let chunks = values.chunks_exact(4);
    let tail = chunks.remainder();
    for chunk in chunks {
        acc = acc + f64x4::from_slice(chunk);
    }
    let mut total = acc.reduce_add();
    for &v in tail {
        total += v;
    }
    total
}

/// Dot product with the same chunking discipline as [`sum_chunked`].
#[inline]
pub fn dot_chunked(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = f64x4::ZERO;
    let n4 = a.len() & !3;
    let mut i = 0;
    while i < n4 {
        acc = acc.mul_add_lanes(f64x4::from_slice(&a[i..]), f64x4::from_slice(&b[i..]));
        i += 4;
    }
    let mut total = acc.reduce_add();
    while i < a.len() {
        total += a[i] * b[i];
        i += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_order_is_fixed() {
        let v = f64x4([1e16, 1.0, -1e16, 1.0]);
        // (1e16 + -1e16) + (1.0 + 1.0) = 2.0 exactly under the pairwise
        // order; the sequential order would lose a ulp.
        assert_eq!(v.reduce_add(), 2.0);
    }

    #[test]
    fn sum_chunked_matches_itself_bitwise() {
        let values: Vec<f64> = (0..37).map(|i| (i as f64).sin() * 1e3).collect();
        let a = sum_chunked(&values);
        let b = sum_chunked(&values);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn sum_chunked_small_and_empty() {
        assert_eq!(sum_chunked(&[]), 0.0);
        assert_eq!(sum_chunked(&[2.5]), 2.5);
        assert_eq!(sum_chunked(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn dot_chunked_exact_on_integers() {
        let a: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..11).map(|i| (i * 2) as f64).collect();
        let expect: f64 = (0..11).map(|i| (i * i * 2) as f64).sum();
        assert_eq!(dot_chunked(&a, &b), expect);
    }

    #[test]
    fn lane_ops() {
        let a = f64x4([1.0, 2.0, 3.0, 4.0]);
        let b = f64x4::splat(2.0);
        assert_eq!((a * b).0, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a + b).0, [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a - b).0, [-1.0, 0.0, 1.0, 2.0]);
    }
}
