//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of serde this workspace relies on: [`Serialize`] /
//! [`Deserialize`] traits that round-trip through an owned JSON-like
//! [`Value`] tree, and derive macros (re-exported from `serde_derive`)
//! that implement them for plain structs and enums using serde's default
//! externally-tagged representation. `serde_json` (the sibling shim)
//! renders [`Value`] to JSON text and parses it back.
//!
//! Supported derive shapes: named-field structs, unit enum variants,
//! tuple variants, struct variants, and the `#[serde(skip)]` field
//! attribute (skipped on serialize, `Default`-filled on deserialize).

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers (and any integer parsed with a sign).
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }
}

/// (De)serialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u)
                    .map_err(|_| Error::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i)
                    .map_err(|_| Error::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for &[T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::msg("expected 2-tuple"))?;
        if items.len() != 2 {
            return Err(Error::msg("expected 2-tuple"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::msg("expected 3-tuple"))?;
        if items.len() != 3 {
            return Err(Error::msg("expected 3-tuple"));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".into(), Value::UInt(self.as_secs())),
            ("nanos".into(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = v
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::msg("expected duration object"))?;
        let nanos = v
            .get("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::msg("expected duration object"))?;
        Ok(std::time::Duration::new(secs, nanos as u32))
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected map entries"))?
            .iter()
            .map(<(K, V)>::from_value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn float_accepts_integral_value() {
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(f64::from_value(&Value::Int(-3)).unwrap(), -3.0);
    }

    #[test]
    fn option_and_vec() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get("b"), None);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
