//! Offline stand-in for `serde_json`.
//!
//! Renders the serde shim's [`Value`] tree to JSON text and parses JSON
//! text back, exposing the `to_string` / `to_string_pretty` / `from_str`
//! entry points this workspace uses.

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------- writing

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::msg("non-finite float in JSON"));
            }
            let text = format!("{f}");
            out.push_str(&text);
            // Keep floats recognizably floating-point ("1.0", not "1").
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex_escape()?;
                            // UTF-16 surrogate pair: a high half must be
                            // followed by `\uXXXX` with a low half
                            // (JSON's only encoding for non-BMP chars).
                            let code = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex_escape()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    /// Reads the four hex digits following an already-consumed `\u`.
    fn hex_escape(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::msg("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::msg(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(u) = stripped.parse::<u64>() {
                    if u <= i64::MAX as u64 + 1 {
                        return Ok(Value::Int(
                            text.parse()
                                .map_err(|_| Error::msg("integer out of range"))?,
                        ));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn vectors_and_options() {
        let xs = vec![1u32, 2, 3];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&text).unwrap(), xs);
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn nested_value_parses() {
        let v = parse_value(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
    }

    #[test]
    fn pretty_printing_is_parseable() {
        let v = Value::Object(vec![
            (
                "x".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("y".into(), Value::Str("s".into())),
        ]);
        let mut out = String::new();
        write_value(&v, &mut out, Some(2), 0).unwrap();
        assert!(out.contains('\n'));
        assert_eq!(parse_value(&out).unwrap(), v);
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("01x").is_err());
        assert!(parse_value("\"abc").is_err());
        assert!(parse_value("{} extra").is_err());
    }

    #[test]
    fn unicode_survives() {
        let s = "héllo ✓".to_string();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }

    #[test]
    fn surrogate_pairs_decode() {
        // "😀" as JSON.stringify / Python json.dumps emit it.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert!(from_str::<String>("\"\\ud83d\"").is_err()); // unpaired high
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err()); // bad low
        assert!(from_str::<String>("\"\\ud83dx\"").is_err()); // no escape
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
