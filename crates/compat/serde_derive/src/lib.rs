//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! serde shim without `syn`/`quote`: the item's token stream is parsed by
//! hand, which is sufficient for the shapes this workspace uses —
//! named-field structs, unit structs, and enums with unit, tuple, and
//! struct variants, all without generic parameters. The `#[serde(skip)]`
//! field attribute is honored (skipped on serialize, `Default`-filled on
//! deserialize). Unsupported shapes produce a compile error naming the
//! offending item.
//!
//! The generated representation matches serde's externally-tagged
//! default:
//!
//! * struct → `{"field": value, ...}`
//! * unit variant → `"Variant"`
//! * one-element tuple variant → `{"Variant": value}`
//! * n-element tuple variant → `{"Variant": [values...]}`
//! * struct variant → `{"Variant": {"field": value, ...}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        generics: Vec<String>,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------- parsing

/// Consumes leading outer attributes (`#[...]`) from `tokens[i..]`,
/// returning whether any of them was `#[serde(skip)]`.
fn eat_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while *i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let text = args.stream().to_string();
                    if text.split(',').any(|part| part.trim() == "skip") {
                        skip = true;
                    }
                }
            }
        }
        *i += 2;
    }
    skip
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn eat_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    eat_attrs(&tokens, &mut i);
    eat_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;

    // Optional generics: plain type parameters only (`<W>`, `<A, B>`).
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut expect_param = true;
            loop {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                        i += 1;
                        break;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        expect_param = true;
                        i += 1;
                    }
                    Some(TokenTree::Ident(id)) if expect_param => {
                        generics.push(id.to_string());
                        expect_param = false;
                        i += 1;
                    }
                    other => {
                        return Err(format!(
                            "serde shim derive: unsupported generics on `{name}` (got {other:?}); \
                             only plain type parameters are handled"
                        ));
                    }
                }
            }
        }
    }
    if !generics.is_empty() && kind == "enum" {
        return Err(format!(
            "serde shim derive: generic enum `{name}` is not supported"
        ));
    }

    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Struct {
                name,
                generics,
                fields: parse_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Ok(Item::UnitStruct { name })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut arity = if inner.is_empty() { 0 } else { 1 };
            let mut depth = 0i32;
            for t in &inner {
                match t {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
                    _ => {}
                }
            }
            Ok(Item::TupleStruct { name, arity })
        }
        ("struct", _) => Err(format!("serde shim derive: cannot parse struct `{name}`")),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        _ => Err(format!("serde shim derive: cannot parse item `{name}`")),
    }
}

fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = eat_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        eat_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Skip the type: consume until a top-level comma. Generic angle
        // brackets contain no top-level commas in token-tree form only if
        // we track depth, so count `<`/`>` (token trees flatten generics).
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        eat_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut arity = if inner.is_empty() { 0 } else { 1 };
                let mut depth = 0i32;
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
                        _ => {}
                    }
                }
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

/// Emits an object-building expression. With `through_self` the fields
/// are read as `&self.f`; otherwise `f` is an in-scope match binding that
/// is already a reference.
fn serialize_fields(fields: &[Field], through_self: bool) -> String {
    let mut out = String::from("{ let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();");
    for f in fields {
        if f.skip {
            continue;
        }
        let access = if through_self {
            format!("&self.{}", f.name)
        } else {
            f.name.clone()
        };
        out.push_str(&format!(
            "__fields.push(({:?}.to_string(), ::serde::Serialize::to_value({})));",
            f.name, access
        ));
    }
    out.push_str("::serde::Value::Object(__fields) }");
    out
}

fn deserialize_fields(ty_path: &str, fields: &[Field], source: &str) -> String {
    let mut out = format!("{ty_path} {{");
    for f in fields {
        if f.skip {
            out.push_str(&format!("{}: ::core::default::Default::default(),", f.name));
        } else {
            out.push_str(&format!(
                "{name}: match ::serde::Value::get({src}, {name_str:?}) {{ \
                     Some(__v) => ::serde::Deserialize::from_value(__v)?, \
                     None => return Err(::serde::Error::msg(concat!(\"missing field `\", {name_str:?}, \"`\"))), \
                 }},",
                name = f.name,
                name_str = f.name,
                src = source
            ));
        }
    }
    out.push('}');
    out
}

/// Renders `impl<G: Bound, ...>` / `Name<G, ...>` header pieces.
fn generic_header(generics: &[String], bound: &str) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), String::new());
    }
    let params: Vec<String> = generics.iter().map(|g| format!("{g}: {bound}")).collect();
    (
        format!("<{}>", params.join(", ")),
        format!("<{}>", generics.join(", ")),
    )
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            generics,
            fields,
        } => {
            let (impl_params, ty_args) = generic_header(generics, "::serde::Serialize");
            format!(
                "impl{impl_params} ::serde::Serialize for {name}{ty_args} {{ \
                     fn to_value(&self) -> ::serde::Value {{ {} }} \
                 }}",
                serialize_fields(fields, true)
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Object(Vec::new()) }} \
             }}"
        ),
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }} \
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                     fn to_value(&self) -> ::serde::Value {{ \
                         ::serde::Value::Array(vec![{}]) \
                     }} \
                 }}",
                items.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__x0) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                         ::serde::Serialize::to_value(__x0))]),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__x{k}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), {})]),",
                            binders.join(", "),
                            serialize_fields(fields, false)
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} \
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            generics,
            fields,
        } => {
            let (impl_params, ty_args) = generic_header(generics, "::serde::Deserialize");
            format!(
                "impl{impl_params} ::serde::Deserialize for {name}{ty_args} {{ \
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ \
                         if __v.as_object().is_none() {{ \
                             return Err(::serde::Error::msg(concat!(\"expected object for \", {name:?}))); \
                         }} \
                         Ok({}) \
                     }} \
                 }}",
                deserialize_fields(name, fields, "__v")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(_: &::serde::Value) -> Result<Self, ::serde::Error> {{ Ok({name}) }} \
             }}"
        ),
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ \
                     Ok({name}(::serde::Deserialize::from_value(__v)?)) \
                 }} \
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ \
                         let __items = __v.as_array().ok_or_else(|| \
                             ::serde::Error::msg(concat!(\"expected array for \", {name:?})))?; \
                         if __items.len() != {arity} {{ \
                             return Err(::serde::Error::msg(\"wrong tuple arity\")); \
                         }} \
                         Ok({name}({})) \
                     }} \
                 }}",
                elems.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),"));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("::serde::Deserialize::from_value(&__items[{k}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{ \
                                 let __items = __payload.as_array().ok_or_else(|| \
                                     ::serde::Error::msg(\"expected array payload\"))?; \
                                 if __items.len() != {n} {{ \
                                     return Err(::serde::Error::msg(\"wrong tuple arity\")); \
                                 }} \
                                 return Ok({name}::{vn}({})); \
                             }}",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => tagged_arms.push_str(&format!(
                        "{vn:?} => {{ \
                             if __payload.as_object().is_none() {{ \
                                 return Err(::serde::Error::msg(\"expected object payload\")); \
                             }} \
                             return Ok({}); \
                         }}",
                        deserialize_fields(&format!("{name}::{vn}"), fields, "__payload")
                    )),
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ \
                         if let Some(__s) = __v.as_str() {{ \
                             match __s {{ {unit_arms} _ => {{}} }} \
                         }} \
                         if let Some(__pairs) = __v.as_object() {{ \
                             if __pairs.len() == 1 {{ \
                                 let (__tag, __payload) = (&__pairs[0].0, &__pairs[0].1); \
                                 match __tag.as_str() {{ {tagged_arms} _ => {{}} }} \
                             }} \
                         }} \
                         Err(::serde::Error::msg(concat!(\"unrecognized \", {name:?}, \" value\"))) \
                     }} \
                 }}"
            )
        }
    }
}
