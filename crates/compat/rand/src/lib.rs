//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand` API it actually uses:
//!
//! * [`Rng`] — the dyn-safe core trait (`next_u64`),
//! * [`RngExt`] — generic sampling helpers (`random`, `random_range`,
//!   `random_bool`), blanket-implemented for every `Rng` including
//!   `dyn Rng`,
//! * [`SeedableRng`] + [`rngs::StdRng`] — a deterministic xoshiro256++
//!   generator seeded through SplitMix64, matching the statistical
//!   quality the simulators need while staying fully reproducible.
//!
//! The generator is *not* the same stream as upstream `rand`'s `StdRng`;
//! all seeds in this repository are interpreted against this
//! implementation.

/// Dyn-safe random source: everything derives from `next_u64`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws uniformly from the range. Panics on empty ranges.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` via Lemire's widening multiply with
/// rejection (unbiased).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = (rng.next_u64() as u128) * (bound as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: raw bits are already uniform.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}

/// Generic sampling helpers over any [`Rng`] (including `dyn Rng`).
pub trait RngExt: Rng {
    /// A value drawn from the type's standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value drawn uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p` (`p` clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (Blackman & Vigna), seeded
    /// via SplitMix64. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start at the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[(rng.random_range(3u32..=5) - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn negative_float_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.random_range(-10.0..10.0);
            assert!((-10.0..10.0).contains(&v));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn dyn_rng_usable() {
        let mut rng = StdRng::seed_from_u64(8);
        let dynr: &mut dyn Rng = &mut rng;
        let v = dynr.random_range(0..10usize);
        assert!(v < 10);
    }

    #[test]
    fn mean_near_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
