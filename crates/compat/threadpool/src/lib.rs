//! A small work-stealing thread pool — the workspace's single parallel
//! execution engine (vendored shim culture: no crates.io, no rayon).
//!
//! # Model
//!
//! A [`ThreadPool`] owns a fixed set of persistent worker threads. Each
//! worker has its own deque; tasks spawned *by* a worker go to its own
//! deque (LIFO, cache-friendly), tasks submitted from outside go to a
//! shared injector (FIFO, fair). An idle worker first drains its own
//! deque, then the injector, then steals the oldest task from another
//! worker's deque — classic work stealing, implemented under one pool
//! mutex (tasks in this workspace are whole Gibbs chains, component
//! solves, and trials: microseconds to milliseconds each, so scheduler
//! lock traffic is noise and the lock-free deque unsafety is not worth
//! buying).
//!
//! # Determinism contract
//!
//! The pool deliberately provides **no** reduction primitive of its own:
//! [`ThreadPool::map_indexed`] returns results in index order regardless
//! of execution order, and [`ThreadPool::scope`] lets callers write into
//! per-index slots. Callers reduce in fixed index order, so any result
//! computed through this pool is bit-identical at every pool width —
//! scheduling chooses only *when* a task runs, never what it computes or
//! how results combine.
//!
//! # Blocking and nesting
//!
//! A thread waiting on a [`ThreadPool::scope`] does not sleep while work
//! is queued: it *helps*, executing pending tasks (its own scope's or any
//! other's). Nested scopes from inside pool tasks therefore cannot
//! deadlock, even on a one-worker pool — the waiter runs the queue dry
//! itself before parking.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, Weak};
use std::time::Duration;

/// A lifetime-erased queued task. Soundness of the erasure is owed by
/// [`ThreadPool::scope`]: it never returns (normally or by unwind)
/// before every task it spawned has finished running.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Scheduler state: the shared injector plus one deque per worker.
struct Sched {
    injector: VecDeque<Task>,
    locals: Vec<VecDeque<Task>>,
    shutdown: bool,
}

struct Inner {
    sched: Mutex<Sched>,
    work_cv: Condvar,
    threads: usize,
    executed: AtomicU64,
    stolen: AtomicU64,
    exited: AtomicUsize,
}

/// Owning side of a pool: dropping the last [`ThreadPool`] clone that
/// holds it signals shutdown and joins every worker.
struct PoolHandle {
    inner: Arc<Inner>,
    joins: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        lock(&self.inner.sched).shutdown = true;
        self.inner.work_cv.notify_all();
        for join in lock(&self.joins).drain(..) {
            let _ = join.join();
        }
    }
}

/// Aggregate pool counters (see [`ThreadPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker count.
    pub threads: usize,
    /// Tasks executed since pool creation (by workers and by helping
    /// scope waiters alike).
    pub executed: u64,
    /// Tasks a worker took from *another* worker's deque — the
    /// work-stealing utilization signal.
    pub stolen: u64,
}

/// The payload of a task that panicked, surfaced as an error by
/// [`ThreadPool::try_map_indexed`].
#[derive(Debug)]
pub struct TaskPanic;

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a pool task panicked")
    }
}

impl std::error::Error for TaskPanic {}

/// A work-stealing pool with persistent workers. Cheap to clone (the
/// clone shares the same workers); the workers shut down and join when
/// the last owning clone drops.
pub struct ThreadPool {
    inner: Arc<Inner>,
    /// `Some` on owning clones; `None` on the non-owning references
    /// [`current`] hands out (so a task holding one cannot deadlock a
    /// drop-join against itself).
    handle: Option<Arc<PoolHandle>>,
}

impl Clone for ThreadPool {
    fn clone(&self) -> Self {
        ThreadPool {
            inner: Arc::clone(&self.inner),
            handle: self.handle.clone(),
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.inner.threads)
            .finish()
    }
}

/// Worker identity, stored thread-locally inside worker threads.
struct WorkerId {
    inner: Weak<Inner>,
    index: usize,
}

thread_local! {
    static WORKER: RefCell<Option<WorkerId>> = const { RefCell::new(None) };
    static INSTALLED: RefCell<Vec<Weak<Inner>>> = const { RefCell::new(Vec::new()) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Tasks run outside the scheduler lock and panics are caught before
    // they can unwind through it, so poison here only means "some
    // unrelated thread died"; the state itself is consistent.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ThreadPool {
    /// Spawns a pool with `threads` persistent workers (0 is clamped
    /// to 1).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            sched: Mutex::new(Sched {
                injector: VecDeque::new(),
                locals: (0..threads).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            threads,
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            exited: AtomicUsize::new(0),
        });
        let joins = (0..threads)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qdn-pool-{index}"))
                    .spawn(move || worker_loop(&inner, index))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            handle: Some(Arc::new(PoolHandle {
                inner: Arc::clone(&inner),
                joins: Mutex::new(joins),
            })),
            inner,
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Aggregate execution counters since pool creation.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.inner.threads,
            executed: self.inner.executed.load(Ordering::Relaxed),
            stolen: self.inner.stolen.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` with this pool as the calling thread's current pool:
    /// within `f` (on this thread), [`current`] resolves here, so nested
    /// parallel stages use these workers. Tasks running *on* the pool
    /// already resolve to their own pool without an install.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED.with(|st| st.borrow_mut().push(Arc::downgrade(&self.inner)));
        struct Uninstall;
        impl Drop for Uninstall {
            fn drop(&mut self) {
                INSTALLED.with(|st| {
                    st.borrow_mut().pop();
                });
            }
        }
        let _guard = Uninstall;
        f()
    }

    /// Structured fork/join: tasks spawned on the [`Scope`] may borrow
    /// anything outliving the call (`'env`); `scope` does not return
    /// until every spawned task has finished. A panicking task is
    /// re-raised here, after the remaining tasks drain — never a hang.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            scope_marker: PhantomData,
            env_marker: PhantomData,
        };
        // The body may panic after spawning; the spawned tasks still
        // borrow `'env`, so they must complete before the unwind
        // continues past this frame.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.help_until_done(&state);
        let task_panic = lock(&state.panic).take();
        match (result, task_panic) {
            (Err(body), _) => resume_unwind(body),
            (_, Some(task)) => resume_unwind(task),
            (Ok(r), None) => r,
        }
    }

    /// Parallel indexed map: computes `f(0..n)` on the pool and returns
    /// the results **in index order** — the deterministic-reduction
    /// primitive every parallel stage in this workspace is built on.
    /// Panics if `f` panics (first panic wins; the rest still run).
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // Width-1 fast path: with no sibling to steal from, task boxing
        // and scheduler lock traffic buy nothing — run inline in index
        // order (bit-identical by the determinism contract). `install`
        // keeps `current()` resolving to this pool for nested stages,
        // and panic semantics match the pooled path: first panic wins,
        // the remaining tasks still run.
        if self.threads() == 1 {
            return self.install(|| {
                let mut first_panic = None;
                let mut out = Vec::with_capacity(n);
                for index in 0..n {
                    match catch_unwind(AssertUnwindSafe(|| f(index))) {
                        Ok(value) => out.push(value),
                        Err(payload) => {
                            first_panic.get_or_insert(payload);
                        }
                    }
                }
                self.inner.executed.fetch_add(n as u64, Ordering::Relaxed);
                if let Some(payload) = first_panic {
                    resume_unwind(payload);
                }
                out
            });
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        self.scope(|scope| {
            for (index, slot) in slots.iter_mut().enumerate() {
                let f = &f;
                scope.spawn(move || {
                    *slot = Some(f(index));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("scope ran every task"))
            .collect()
    }

    /// [`ThreadPool::map_indexed`], but a panicking task surfaces as
    /// `Err(TaskPanic)` instead of propagating the unwind.
    pub fn try_map_indexed<T, F>(&self, n: usize, f: F) -> Result<Vec<T>, TaskPanic>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        catch_unwind(AssertUnwindSafe(|| self.map_indexed(n, &f))).map_err(|_| TaskPanic)
    }

    /// Runs `a` on the pool and `b` inline, returning both results.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        RA: Send,
        B: FnOnce() -> RB,
    {
        let mut ra = None;
        let rb = self.scope(|scope| {
            scope.spawn(|| {
                ra = Some(a());
            });
            b()
        });
        (ra.expect("scope ran the spawned half"), rb)
    }

    /// Enqueues an erased task: a worker pushes to its own deque (when
    /// the worker belongs to *this* pool), anything else to the
    /// injector.
    fn push_task(&self, task: Task) {
        let own_index = WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .and_then(|id| (id.inner.as_ptr() == Arc::as_ptr(&self.inner)).then_some(id.index))
        });
        {
            let mut sched = lock(&self.inner.sched);
            match own_index {
                Some(i) => sched.locals[i].push_back(task),
                None => sched.injector.push_back(task),
            }
        }
        self.inner.work_cv.notify_one();
    }

    /// Help-first wait: executes queued tasks (any scope's) until
    /// `state.pending` reaches zero, parking only when the queues are
    /// dry. The short park timeout re-arms helping when tasks appear
    /// while this thread slept — cheap insurance against lost-wakeup
    /// orderings between the scope and scheduler locks.
    fn help_until_done(&self, state: &ScopeState) {
        let my_index = WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .and_then(|id| (id.inner.as_ptr() == Arc::as_ptr(&self.inner)).then_some(id.index))
        });
        loop {
            if *lock(&state.pending) == 0 {
                return;
            }
            let task = take_task(&mut lock(&self.inner.sched), my_index, &self.inner);
            if let Some(task) = task {
                if my_index.is_some() {
                    task();
                } else {
                    // A non-worker helper (the thread that called
                    // `scope` from outside the pool) must still count as
                    // "inside" the pool while it runs the task, so that
                    // `current()` in nested stages resolves here and not
                    // to the global pool.
                    self.install(task);
                }
                self.inner.executed.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let pending = lock(&state.pending);
            if *pending == 0 {
                return;
            }
            let (pending, _) = state
                .done_cv
                .wait_timeout(pending, Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
            if *pending == 0 {
                return;
            }
        }
    }

    #[cfg(test)]
    fn exited_workers(&self) -> Arc<Inner> {
        Arc::clone(&self.inner)
    }
}

/// Per-scope completion state, shared by the scope waiter and its tasks.
struct ScopeState {
    pending: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Handle for spawning borrowing tasks inside [`ThreadPool::scope`].
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    state: Arc<ScopeState>,
    scope_marker: PhantomData<&'scope mut &'scope ()>,
    env_marker: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from `'env`. Panics inside the task
    /// are caught and re-raised by the owning `scope` call.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *lock(&self.state.pending) += 1;
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                lock(&state.panic).get_or_insert(payload);
            }
            let mut pending = lock(&state.pending);
            *pending -= 1;
            if *pending == 0 {
                state.done_cv.notify_all();
            }
        });
        // SAFETY: the task's borrows live at least `'env`; `scope` (and
        // its unwind path) blocks until `pending == 0`, i.e. until this
        // closure has run to completion, so the erased lifetime is never
        // outlived. This is the same argument std::thread::scope makes.
        #[allow(unsafe_code)]
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        };
        self.pool.push_task(task);
    }
}

/// Pops a task: own deque first (newest first), then the injector
/// (oldest first), then steal the oldest task from another worker.
fn take_task(sched: &mut Sched, my_index: Option<usize>, inner: &Inner) -> Option<Task> {
    if let Some(i) = my_index {
        if let Some(task) = sched.locals[i].pop_back() {
            return Some(task);
        }
    }
    if let Some(task) = sched.injector.pop_front() {
        return Some(task);
    }
    let n = sched.locals.len();
    let start = my_index.map_or(0, |i| i + 1);
    for k in 0..n {
        let victim = (start + k) % n;
        if Some(victim) == my_index {
            continue;
        }
        if let Some(task) = sched.locals[victim].pop_front() {
            if my_index.is_some() {
                inner.stolen.fetch_add(1, Ordering::Relaxed);
            }
            return Some(task);
        }
    }
    None
}

fn worker_loop(inner: &Arc<Inner>, index: usize) {
    WORKER.with(|w| {
        *w.borrow_mut() = Some(WorkerId {
            inner: Arc::downgrade(inner),
            index,
        });
    });
    loop {
        let task = {
            let mut sched = lock(&inner.sched);
            loop {
                if let Some(task) = take_task(&mut sched, Some(index), inner) {
                    break Some(task);
                }
                if sched.shutdown {
                    break None;
                }
                sched = inner
                    .work_cv
                    .wait(sched)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(task) = task else { break };
        task();
        inner.executed.fetch_add(1, Ordering::Relaxed);
    }
    inner.exited.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Current-pool resolution and the global registry
// ---------------------------------------------------------------------

/// One worker per available core (the `threads = 0` meaning in configs).
pub fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Process-wide pools keyed by width, created on first use and kept for
/// the process lifetime. `threads == 0` means [`auto_threads`]. Configs
/// with a `threads` field resolve through here, so every engine in the
/// process with the same width shares one set of workers.
pub fn global_with(threads: usize) -> ThreadPool {
    static REGISTRY: OnceLock<Mutex<Vec<(usize, ThreadPool)>>> = OnceLock::new();
    let width = if threads == 0 {
        auto_threads()
    } else {
        threads
    };
    let registry = REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
    let mut pools = lock(registry);
    if let Some((_, pool)) = pools.iter().find(|(w, _)| *w == width) {
        return pool.clone();
    }
    let pool = ThreadPool::new(width);
    pools.push((width, pool.clone()));
    pool
}

/// The calling context's pool: a worker thread resolves to its own pool,
/// a thread inside [`ThreadPool::install`] to the installed pool, and
/// anything else to the auto-width global pool. The returned handle is
/// non-owning for the first two cases — dropping it never joins workers.
pub fn current() -> ThreadPool {
    let own = WORKER.with(|w| {
        w.borrow()
            .as_ref()
            .and_then(|id| id.inner.upgrade())
            .map(|inner| ThreadPool {
                inner,
                handle: None,
            })
    });
    if let Some(pool) = own {
        return pool;
    }
    let installed = INSTALLED.with(|st| {
        st.borrow()
            .iter()
            .rev()
            .find_map(Weak::upgrade)
            .map(|inner| ThreadPool {
                inner,
                handle: None,
            })
    });
    if let Some(pool) = installed {
        return pool;
    }
    global_with(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn map_indexed_returns_in_index_order() {
        let pool = ThreadPool::new(4);
        let out = pool.map_indexed(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn results_identical_across_pool_widths() {
        let reference: Vec<u64> = (0..40u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        for width in [1, 2, 4] {
            let pool = ThreadPool::new(width);
            let got = pool.map_indexed(40, |i| (i as u64).wrapping_mul(0x9E37_79B9));
            assert_eq!(got, reference, "width {width}");
        }
    }

    #[test]
    fn work_stealing_under_skewed_task_sizes() {
        // One worker spawns many small children into its own deque and
        // then holds its thread (maximal skew: one long task, 64 short
        // ones) until every child has run; the scope owner does the
        // same. Neither can execute a child, so the remaining workers
        // must steal all 64.
        let pool = ThreadPool::new(4);
        let done = AtomicU32::new(0);
        pool.scope(|outer| {
            outer.spawn(|| {
                // Runs on some worker; nested spawns land in that
                // worker's local deque.
                current().scope(|inner_scope| {
                    for _ in 0..64 {
                        inner_scope.spawn(|| {
                            done.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    while done.load(Ordering::Relaxed) < 64 {
                        std::thread::yield_now();
                    }
                });
            });
            while done.load(Ordering::Relaxed) < 64 {
                std::thread::yield_now();
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 64);
        let stats = pool.stats();
        assert!(stats.executed >= 65, "executed {}", stats.executed);
        assert!(
            stats.stolen >= 64,
            "expected every child stolen under skew, stats {stats:?}"
        );
    }

    #[test]
    fn width_one_inline_path_keeps_the_contract() {
        // The inline fast path must be indistinguishable from the
        // pooled one: index order, `current()` resolution, executed
        // accounting, and run-the-rest-then-panic semantics.
        let pool = ThreadPool::new(1);
        let out = pool.map_indexed(16, |i| {
            assert_eq!(current().threads(), 1);
            i * 3
        });
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
        assert!(pool.stats().executed >= 16);
        let ran = AtomicU32::new(0);
        let result = pool.try_map_indexed(8, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            assert!(i != 2, "boom at {i}");
            i
        });
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 8, "remaining tasks still run");
        assert_eq!(pool.map_indexed(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn panic_in_task_surfaces_as_err_not_a_hang() {
        let pool = ThreadPool::new(2);
        let result = pool.try_map_indexed(8, |i| {
            assert!(i != 5, "boom at {i}");
            i
        });
        assert!(result.is_err());
        // The pool survives and keeps scheduling.
        assert_eq!(pool.map_indexed(4, |i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn scope_body_panic_still_drains_tasks() {
        let pool = ThreadPool::new(2);
        let ran = AtomicU32::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                for _ in 0..16 {
                    scope.spawn(|| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body panics after spawning");
            });
        }));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 16, "tasks drained first");
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = ThreadPool::new(3);
        let _ = pool.map_indexed(8, |i| i);
        let probe = pool.exited_workers();
        drop(pool);
        assert_eq!(probe.exited.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nested_scopes_on_one_worker_do_not_deadlock() {
        let pool = ThreadPool::new(1);
        let total: usize = pool
            .map_indexed(4, |i| {
                let inner: Vec<usize> = current().map_indexed(4, move |j| i * 4 + j);
                inner.into_iter().sum::<usize>()
            })
            .into_iter()
            .sum();
        assert_eq!(total, (0..16).sum());
    }

    #[test]
    fn join_runs_both_sides() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 2 + 2, || "inline");
        assert_eq!((a, b), (4, "inline"));
    }

    #[test]
    fn install_scopes_current_to_the_pool() {
        let pool = ThreadPool::new(2);
        let outside = current().threads();
        let inside = pool.install(|| current().threads());
        assert_eq!(inside, 2);
        // Restored after install returns.
        assert_eq!(current().threads(), outside);
    }

    #[test]
    fn current_on_a_worker_is_its_own_pool() {
        let pool = ThreadPool::new(3);
        let widths = pool.map_indexed(6, |_| current().threads());
        assert!(widths.iter().all(|&w| w == 3), "{widths:?}");
    }

    #[test]
    fn global_registry_reuses_by_width() {
        let a = global_with(2);
        let b = global_with(2);
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        let c = global_with(3);
        assert!(!Arc::ptr_eq(&a.inner, &c.inner));
        assert_eq!(global_with(0).threads(), auto_threads());
    }
}
