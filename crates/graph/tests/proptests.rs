//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use qdn_graph::connectivity::{connected_components, is_connected};
use qdn_graph::dijkstra::{shortest_path, shortest_path_filtered, SearchFilter};
use qdn_graph::ksp::yen_k_shortest;
use qdn_graph::paths::{all_simple_paths, hop_weight};
use qdn_graph::waxman::{augment_to_connected, GeometricGraph, WaxmanConfig};
use qdn_graph::{Graph, NodeId};
use rand::SeedableRng;

/// Strategy: a random simple graph with `n in 2..=10` nodes and each
/// possible edge included independently.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=10).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let m = pairs.len();
        proptest::collection::vec(proptest::bool::ANY, m).prop_map(move |mask| {
            let edges = pairs
                .iter()
                .zip(&mask)
                .filter(|(_, keep)| **keep)
                .map(|(&(i, j), _)| (NodeId(i as u32), NodeId(j as u32)));
            Graph::from_edges(n, edges).expect("generated edges are valid")
        })
    })
}

proptest! {
    /// Degrees always sum to twice the edge count (handshake lemma).
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let degree_sum: usize = g.node_ids().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    /// Components partition the node set.
    #[test]
    fn components_partition_nodes(g in arb_graph()) {
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        let mut seen = std::collections::HashSet::new();
        for c in &comps {
            for &v in c {
                prop_assert!(seen.insert(v), "node {} in two components", v);
            }
        }
    }

    /// A shortest path, when it exists, is a valid simple path whose hop
    /// count is minimal among all simple paths.
    #[test]
    fn dijkstra_is_minimal(g in arb_graph()) {
        let src = NodeId(0);
        let dst = NodeId((g.node_count() - 1) as u32);
        let sp = shortest_path(&g, src, dst, &hop_weight);
        let brute = all_simple_paths(&g, src, dst, g.node_count());
        match sp {
            None => prop_assert!(brute.is_empty()),
            Some(p) => {
                let min_hops = brute.iter().map(|q| q.hops()).min().unwrap();
                prop_assert_eq!(p.hops(), min_hops);
                prop_assert_eq!(p.source(), src);
                prop_assert_eq!(p.destination(), dst);
            }
        }
    }

    /// Yen's paths are sorted, distinct, and consistent with brute force.
    #[test]
    fn yen_sorted_distinct_consistent(g in arb_graph(), k in 1usize..6) {
        let src = NodeId(0);
        let dst = NodeId((g.node_count() - 1) as u32);
        let yen = yen_k_shortest(&g, src, dst, k, &hop_weight);
        let mut brute = all_simple_paths(&g, src, dst, g.node_count());
        brute.sort_by_key(|p| p.hops());
        prop_assert_eq!(yen.len(), brute.len().min(k));
        for w in yen.windows(2) {
            prop_assert!(w[0].hops() <= w[1].hops());
        }
        for (y, b) in yen.iter().zip(brute.iter()) {
            prop_assert_eq!(y.hops(), b.hops());
        }
        for (i, p) in yen.iter().enumerate() {
            for q in &yen[i + 1..] {
                prop_assert_ne!(p, q);
            }
        }
    }

    /// Banning every edge of the shortest path forces a strictly different
    /// route (or disconnects the pair).
    #[test]
    fn banning_shortest_path_changes_route(g in arb_graph()) {
        let src = NodeId(0);
        let dst = NodeId((g.node_count() - 1) as u32);
        if let Some(p) = shortest_path(&g, src, dst, &hop_weight) {
            if p.hops() > 0 {
                let mut f = SearchFilter::new();
                for &e in p.edges() {
                    f.ban_edge(e);
                }
                if let Some(q) = shortest_path_filtered(&g, src, dst, &hop_weight, &f) {
                    prop_assert!(q.edges().iter().all(|e| !p.edges().contains(e)));
                    prop_assert!(q.hops() >= p.hops());
                }
            }
        }
    }

    /// A maintainer driven through a random failure/repair sequence ends
    /// up equivalent to recomputing every candidate set from scratch
    /// against the final dead-edge set: same number of routes per pair
    /// and the identical weight sequence (the top-k is unique only up to
    /// Yen's tie order), with every route valid, distinct, and clear of
    /// dead edges.
    #[test]
    fn incremental_ksp_matches_recompute(
        g in arb_graph(),
        k in 1usize..=4,
        events in proptest::collection::vec((0u32..10_000, proptest::bool::ANY), 0..12),
    ) {
        use qdn_graph::maintain::CandidateMaintainer;

        let n = g.node_count();
        let pairs: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (NodeId(i as u32), NodeId(j as u32))))
            .collect();

        let mut m = CandidateMaintainer::new(k);
        for &(a, b) in &pairs {
            m.track(&g, a, b, &hop_weight);
        }
        if g.edge_count() > 0 {
            for (raw, fail) in events {
                let e = qdn_graph::EdgeId(raw % g.edge_count() as u32);
                if fail {
                    m.fail_edge(&g, e, &hop_weight);
                } else {
                    m.restore_edge(&g, e, &hop_weight);
                }
            }
        }

        // Reference: a fresh maintainer over the same final dead set.
        let mut fresh = CandidateMaintainer::new(k);
        let dead: Vec<_> = m.dead_edges().collect();
        for &e in &dead {
            fresh.fail_edge(&g, e, &hop_weight);
        }
        for &(a, b) in &pairs {
            fresh.track(&g, a, b, &hop_weight);
        }

        for &(a, b) in &pairs {
            let inc = m.routes(a, b).unwrap();
            let full = fresh.routes(a, b).unwrap();
            prop_assert_eq!(inc.len(), full.len(), "pair {}-{}", a, b);
            let wi: Vec<f64> = inc.iter().map(|p| p.weight(hop_weight)).collect();
            let wf: Vec<f64> = full.iter().map(|p| p.weight(hop_weight)).collect();
            prop_assert_eq!(&wi, &wf, "pair {}-{}", a, b);
            for w in wi.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            for (i, p) in inc.iter().enumerate() {
                prop_assert_eq!(p.source(), a);
                prop_assert_eq!(p.destination(), b);
                prop_assert!(dead.iter().all(|&e| !p.contains_edge(e)));
                for q in &inc[i + 1..] {
                    prop_assert_ne!(p, q);
                }
            }
        }
    }

    /// A maintainer driven through random *batched* failure/repair
    /// events — edge batches and whole-node cuts/restores — matches a
    /// cold recompute against the final dead-edge set: same route count
    /// and weight sequence per pair, every route valid and clear of dead
    /// edges. This is the batch-path analogue of
    /// `incremental_ksp_matches_recompute`.
    #[test]
    fn batched_repair_matches_cold_recompute(
        g in arb_graph(),
        k in 1usize..=4,
        events in proptest::collection::vec(
            (0u32..10_000, proptest::bool::ANY, proptest::bool::ANY, 1usize..=4),
            0..10,
        ),
    ) {
        use qdn_graph::maintain::CandidateMaintainer;

        let n = g.node_count();
        let pairs: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (NodeId(i as u32), NodeId(j as u32))))
            .collect();

        let mut m = CandidateMaintainer::new(k);
        for &(a, b) in &pairs {
            m.track(&g, a, b, &hop_weight);
        }
        if g.edge_count() > 0 {
            for (raw, fail, node_event, width) in events {
                if node_event {
                    let v = NodeId(raw % n as u32);
                    if fail {
                        m.fail_node(&g, v, &hop_weight);
                    } else {
                        m.restore_node(&g, v, &hop_weight);
                    }
                } else {
                    // A contiguous run of edge ids as one batch (may
                    // include already-dead / already-alive edges).
                    let batch: Vec<_> = (0..width)
                        .map(|i| qdn_graph::EdgeId((raw as usize + i) as u32 % g.edge_count() as u32))
                        .collect();
                    if fail {
                        m.fail_edges(&g, &batch, &hop_weight);
                    } else {
                        m.restore_edges(&g, &batch, &hop_weight);
                    }
                }
            }
        }

        let mut fresh = CandidateMaintainer::new(k);
        let dead: Vec<_> = m.dead_edges().collect();
        fresh.fail_edges(&g, &dead, &hop_weight);
        for &(a, b) in &pairs {
            fresh.track(&g, a, b, &hop_weight);
        }

        for &(a, b) in &pairs {
            let inc = m.routes(a, b).unwrap();
            let full = fresh.routes(a, b).unwrap();
            prop_assert_eq!(inc.len(), full.len(), "pair {}-{}", a, b);
            let wi: Vec<f64> = inc.iter().map(|p| p.weight(hop_weight)).collect();
            let wf: Vec<f64> = full.iter().map(|p| p.weight(hop_weight)).collect();
            prop_assert_eq!(&wi, &wf, "pair {}-{}", a, b);
            for p in inc {
                prop_assert!(dead.iter().all(|&e| !p.contains_edge(e)));
            }
        }
    }

    /// Waxman generation with connectivity always yields one component and
    /// the requested node count; augmentation never duplicates edges.
    #[test]
    fn waxman_connected_valid(seed in 0u64..500, n in 2usize..25) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = WaxmanConfig::paper_default().with_nodes(n).generate(&mut rng);
        prop_assert_eq!(topo.graph.node_count(), n);
        prop_assert!(is_connected(&topo.graph));
        // Simple graph invariant: no more than n(n-1)/2 edges.
        prop_assert!(topo.graph.edge_count() <= n * (n - 1) / 2);
    }

    /// Augmentation adds exactly (components - 1) edges.
    #[test]
    fn augmentation_edge_count(seed in 0u64..200) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = WaxmanConfig {
            nodes: 15,
            alpha: 0.2,
            beta: 0.15,
            side: 100.0,
            connected: false,
        };
        let topo = cfg.generate(&mut rng);
        let comps = connected_components(&topo.graph).len();
        let before = topo.graph.edge_count();
        let mut patched: GeometricGraph = topo;
        augment_to_connected(&mut patched);
        prop_assert!(is_connected(&patched.graph));
        prop_assert_eq!(patched.graph.edge_count(), before + comps.saturating_sub(1));
    }
}
