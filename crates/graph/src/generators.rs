//! Classic regular topologies: ring, grid, star, complete.
//!
//! Early entanglement-routing work studied specialized network structures
//! — sphere/grid [Pant et al.], ring [Chakraborty et al.], star
//! [Vardoyan et al.] — which the paper's related-work section surveys
//! before adopting general Waxman QDNs. These generators let experiments
//! reproduce those settings and give tests well-understood topologies.

use crate::graph::{Graph, NodeId};

/// A cycle of `n ≥ 3` nodes: `0-1-…-(n−1)-0`.
///
/// # Panics
///
/// Panics if `n < 3` (smaller rings degenerate into an edge or a point).
///
/// # Example
///
/// ```
/// use qdn_graph::generators::ring;
///
/// let g = ring(6);
/// assert_eq!(g.node_count(), 6);
/// assert_eq!(g.edge_count(), 6);
/// assert!(g.node_ids().all(|v| g.degree(v) == 2));
/// ```
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut g = Graph::with_node_capacity(n);
    g.add_nodes(n);
    for i in 0..n {
        g.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32))
            .expect("ring edges are distinct");
    }
    g
}

/// A `rows × cols` 4-neighbour lattice with `rows·cols` nodes; node
/// `(r, c)` has id `r·cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
///
/// # Example
///
/// ```
/// use qdn_graph::generators::grid;
///
/// let g = grid(3, 4);
/// assert_eq!(g.node_count(), 12);
/// assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
/// ```
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut g = Graph::with_node_capacity(rows * cols);
    g.add_nodes(rows * cols);
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1)).expect("unique");
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c)).expect("unique");
            }
        }
    }
    g
}

/// A star: node 0 is the hub, nodes `1..=leaves` connect only to it.
///
/// Models the entanglement-switch setting (one central switch serving
/// many users).
///
/// # Panics
///
/// Panics if `leaves == 0`.
///
/// # Example
///
/// ```
/// use qdn_graph::generators::star;
/// use qdn_graph::NodeId;
///
/// let g = star(5);
/// assert_eq!(g.node_count(), 6);
/// assert_eq!(g.degree(NodeId(0)), 5);
/// ```
pub fn star(leaves: usize) -> Graph {
    assert!(leaves > 0, "a star needs at least one leaf");
    let mut g = Graph::with_node_capacity(leaves + 1);
    g.add_nodes(leaves + 1);
    for leaf in 1..=leaves {
        g.add_edge(NodeId(0), NodeId(leaf as u32)).expect("unique");
    }
    g
}

/// The complete graph on `n ≥ 2` nodes.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 2, "a complete graph needs at least 2 nodes");
    let mut g = Graph::with_node_capacity(n);
    g.add_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId(i as u32), NodeId(j as u32))
                .expect("unique");
        }
    }
    g
}

/// A line (path graph) of `n ≥ 2` nodes — the canonical repeater-chain
/// topology of quantum-networking papers.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn line(n: usize) -> Graph {
    assert!(n >= 2, "a line needs at least 2 nodes");
    let mut g = Graph::with_node_capacity(n);
    g.add_nodes(n);
    for i in 0..n - 1 {
        g.add_edge(NodeId(i as u32), NodeId((i + 1) as u32))
            .expect("unique");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use crate::ksp::yen_k_shortest;
    use crate::paths::hop_weight;

    #[test]
    fn ring_structure() {
        for n in [3usize, 4, 7, 12] {
            let g = ring(n);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n);
            assert!(g.node_ids().all(|v| g.degree(v) == 2));
            assert!(is_connected(&g));
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small() {
        let _ = ring(2);
    }

    #[test]
    fn ring_has_two_routes_between_any_pair() {
        let g = ring(8);
        let routes = yen_k_shortest(&g, NodeId(0), NodeId(3), 5, &hop_weight);
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].hops(), 3); // clockwise
        assert_eq!(routes[1].hops(), 5); // counter-clockwise
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 3);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 12);
        assert!(is_connected(&g));
        // Corner degree 2, edge degree 3, center degree 4.
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(1)), 3);
        assert_eq!(g.degree(NodeId(4)), 4);
    }

    #[test]
    fn grid_single_row_is_line() {
        let g = grid(1, 5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.node_ids().all(|v| g.degree(v) <= 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn grid_zero_dimension() {
        let _ = grid(0, 3);
    }

    #[test]
    fn star_structure() {
        let g = star(7);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.degree(NodeId(0)), 7);
        for leaf in 1..=7u32 {
            assert_eq!(g.degree(NodeId(leaf)), 1);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn star_routes_go_through_hub() {
        let g = star(4);
        let routes = yen_k_shortest(&g, NodeId(1), NodeId(2), 3, &hop_weight);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].hops(), 2);
        assert!(routes[0].contains_node(NodeId(0)));
    }

    #[test]
    fn complete_structure() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.node_ids().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn line_structure() {
        let g = line(4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(1)), 2);
        let routes = yen_k_shortest(&g, NodeId(0), NodeId(3), 3, &hop_weight);
        assert_eq!(routes.len(), 1); // repeater chain: unique route
        assert_eq!(routes[0].hops(), 3);
    }
}
