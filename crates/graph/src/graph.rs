//! Compact undirected simple graph with stable integer handles.
//!
//! The QDN model (paper §III-A) is an undirected graph `G = <V, E>` whose
//! nodes are quantum computers or repeaters and whose edges are bundles of
//! quantum channels. This module stores only the topology; capacities,
//! channel counts, and link probabilities are attached by `qdn-net` using
//! the [`NodeId`]/[`EdgeId`] handles as keys.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Stable handle to a node of a [`Graph`].
///
/// Node ids are dense: the nodes of a graph with `n` nodes are exactly
/// `NodeId(0), …, NodeId(n-1)`, which lets downstream crates use plain
/// vectors as node-keyed maps.
///
/// # Example
///
/// ```
/// use qdn_graph::{Graph, NodeId};
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// assert_eq!(a, NodeId(0));
/// assert_eq!(a.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index, for vector-backed node maps.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

/// Stable handle to an edge of a [`Graph`].
///
/// Edge ids are dense, in insertion order, so downstream crates can use
/// plain vectors as edge-keyed maps (e.g. channel capacities `W_e`).
///
/// # Example
///
/// ```
/// use qdn_graph::{Graph, EdgeId};
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(a, b).unwrap();
/// assert_eq!(e, EdgeId(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the id as a `usize` index, for vector-backed edge maps.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(value: u32) -> Self {
        EdgeId(value)
    }
}

/// Error raised by [`Graph`] mutation and validation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operation referenced a node id that is not in the graph.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// An operation referenced an edge id that is not in the graph.
    EdgeOutOfBounds {
        /// The offending edge id.
        edge: EdgeId,
        /// The number of edges in the graph.
        edge_count: usize,
    },
    /// `add_edge(u, u)` was attempted; the QDN graph is simple.
    SelfLoop {
        /// The node on which a self-loop was attempted.
        node: NodeId,
    },
    /// `add_edge(u, v)` was attempted but the edge already exists.
    DuplicateEdge {
        /// The existing edge between the two endpoints.
        edge: EdgeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node {node} out of bounds (graph has {node_count} nodes)"
                )
            }
            GraphError::EdgeOutOfBounds { edge, edge_count } => {
                write!(
                    f,
                    "edge {edge} out of bounds (graph has {edge_count} edges)"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            GraphError::DuplicateEdge { edge } => {
                write!(f, "edge already exists as {edge}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected simple graph stored as an adjacency list.
///
/// Nodes and edges are append-only; ids are never invalidated. Self-loops
/// and parallel edges are rejected (parallel quantum channels are modelled
/// as an integer channel capacity per edge in `qdn-net`, not as multi-edges).
///
/// # Example
///
/// ```
/// use qdn_graph::Graph;
///
/// # fn main() -> Result<(), qdn_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let ab = g.add_edge(a, b)?;
/// assert_eq!(g.endpoints(ab), (a, b));
/// assert_eq!(g.degree(a), 1);
/// assert_eq!(g.edge_between(b, a), Some(ab)); // undirected
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `edges[e] = (u, v)` with `u < v` normalised order.
    edges: Vec<(NodeId, NodeId)>,
    /// `adjacency[v]` lists `(neighbor, edge)` pairs.
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes.
    pub fn with_node_capacity(nodes: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adjacency: Vec::with_capacity(nodes),
        }
    }

    /// Builds a graph with `n` nodes and the given edges.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is out of bounds, an edge is a
    /// self-loop, or an edge is duplicated.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::with_node_capacity(n);
        for _ in 0..n {
            g.add_node();
        }
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.adjacency.len() as u32);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds `count` nodes, returning the id of the first one added.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = NodeId(self.adjacency.len() as u32);
        for _ in 0..count {
            self.add_node();
        }
        first
    }

    /// Adds an undirected edge between `u` and `v` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v`,
    /// [`GraphError::DuplicateEdge`] if the edge already exists, and
    /// [`GraphError::NodeOutOfBounds`] if either endpoint is unknown.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if let Some(edge) = self.edge_between(u, v) {
            return Err(GraphError::DuplicateEdge { edge });
        }
        let (a, b) = if u.0 <= v.0 { (u, v) } else { (v, u) };
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push((a, b));
        self.adjacency[u.index()].push((v, id));
        self.adjacency[v.index()].push((u, id));
        Ok(id)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Returns the endpoints `(u, v)` of `edge` in normalised order
    /// (`u.0 <= v.0`).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds; use [`Graph::try_endpoints`] for a
    /// fallible lookup.
    #[inline]
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        self.edges[edge.index()]
    }

    /// Fallible version of [`Graph::endpoints`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] for unknown edges.
    pub fn try_endpoints(&self, edge: EdgeId) -> Result<(NodeId, NodeId), GraphError> {
        self.edges
            .get(edge.index())
            .copied()
            .ok_or(GraphError::EdgeOutOfBounds {
                edge,
                edge_count: self.edges.len(),
            })
    }

    /// Given an edge and one endpoint, returns the opposite endpoint.
    ///
    /// Returns `None` if `node` is not an endpoint of `edge`.
    pub fn opposite(&self, edge: EdgeId, node: NodeId) -> Option<NodeId> {
        let (u, v) = self.try_endpoints(edge).ok()?;
        if node == u {
            Some(v)
        } else if node == v {
            Some(u)
        } else {
            None
        }
    }

    /// Returns the edge between `u` and `v` if it exists.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (scan, other) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency
            .get(scan.index())?
            .iter()
            .find(|(n, _)| *n == other)
            .map(|(_, e)| *e)
    }

    /// Returns `true` if nodes `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Degree of `node` (number of incident edges).
    ///
    /// Returns 0 for out-of-bounds nodes.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency.get(node.index()).map_or(0, Vec::len)
    }

    /// Average degree `2|E| / |V|`, or 0 for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.adjacency.len() as f64
        }
    }

    /// Iterates over the `(neighbor, edge)` pairs incident to `node`.
    ///
    /// The iterator is empty for out-of-bounds nodes.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adjacency
            .get(node.index())
            .map_or(&[][..], Vec::as_slice)
            .iter()
            .copied()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + use<> {
        (0..self.adjacency.len() as u32).map(NodeId)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + use<> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterates over `(edge, u, v)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId(i as u32), u, v))
    }

    /// Validates that `node` exists.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if it does not.
    pub fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if node.index() < self.adjacency.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node,
                node_count: self.adjacency.len(),
            })
        }
    }

    /// Validates that `edge` exists.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] if it does not.
    pub fn check_edge(&self, edge: EdgeId) -> Result<(), GraphError> {
        if edge.index() < self.edges.len() {
            Ok(())
        } else {
            Err(GraphError::EdgeOutOfBounds {
                edge,
                edge_count: self.edges.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, [NodeId; 3], [EdgeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let ab = g.add_edge(a, b).unwrap();
        let bc = g.add_edge(b, c).unwrap();
        let ca = g.add_edge(c, a).unwrap();
        (g, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn node_ids_are_dense() {
        let mut g = Graph::new();
        for i in 0..5u32 {
            assert_eq!(g.add_node(), NodeId(i));
        }
        assert_eq!(g.node_count(), 5);
        let ids: Vec<_> = g.node_ids().collect();
        assert_eq!(ids, (0..5).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn add_nodes_returns_first_id() {
        let mut g = Graph::new();
        g.add_node();
        let first = g.add_nodes(3);
        assert_eq!(first, NodeId(1));
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn edge_endpoints_are_normalised() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(b, a).unwrap();
        assert_eq!(g.endpoints(e), (a, b));
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new();
        let a = g.add_node();
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop { node: a }));
    }

    #[test]
    fn duplicate_edge_rejected_both_orders() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b).unwrap();
        assert_eq!(g.add_edge(a, b), Err(GraphError::DuplicateEdge { edge: e }));
        assert_eq!(g.add_edge(b, a), Err(GraphError::DuplicateEdge { edge: e }));
    }

    #[test]
    fn out_of_bounds_node_rejected() {
        let mut g = Graph::new();
        let a = g.add_node();
        let bad = NodeId(7);
        assert!(matches!(
            g.add_edge(a, bad),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn neighbors_and_degree() {
        let (g, [a, b, c], [ab, bc, ca]) = triangle();
        assert_eq!(g.degree(a), 2);
        let mut n: Vec<_> = g.neighbors(a).collect();
        n.sort();
        let mut expected = vec![(b, ab), (c, ca)];
        expected.sort();
        assert_eq!(n, expected);
        assert_eq!(g.degree(NodeId(99)), 0);
        let _ = bc;
    }

    #[test]
    fn opposite_endpoint() {
        let (g, [a, b, c], [ab, ..]) = triangle();
        assert_eq!(g.opposite(ab, a), Some(b));
        assert_eq!(g.opposite(ab, b), Some(a));
        assert_eq!(g.opposite(ab, c), None);
    }

    #[test]
    fn edge_between_symmetric() {
        let (g, [a, b, _c], [ab, ..]) = triangle();
        assert_eq!(g.edge_between(a, b), Some(ab));
        assert_eq!(g.edge_between(b, a), Some(ab));
    }

    #[test]
    fn average_degree_triangle() {
        let (g, _, _) = triangle();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(Graph::new().average_degree(), 0.0);
    }

    #[test]
    fn from_edges_builds_graph() {
        let g = Graph::from_edges(3, [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn from_edges_propagates_errors() {
        assert!(Graph::from_edges(1, [(NodeId(0), NodeId(1))]).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let (g, _, _) = triangle();
        let json = serde_json_round_trip(&g);
        assert_eq!(g, json);
    }

    fn serde_json_round_trip(g: &Graph) -> Graph {
        // serde_json is not a dependency; round-trip through the
        // serde-compatible in-memory representation instead.
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        Graph::from_edges(g.node_count(), edges).unwrap()
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "v3");
        assert_eq!(EdgeId(7).to_string(), "e7");
        let err = GraphError::SelfLoop { node: NodeId(1) };
        assert!(err.to_string().contains("self-loop"));
    }
}
