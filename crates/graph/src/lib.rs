//! Graph substrate for quantum data networks.
//!
//! This crate provides the topology layer that the rest of the QDN stack is
//! built on:
//!
//! * [`Graph`] — a compact undirected simple graph with stable integer
//!   [`NodeId`]/[`EdgeId`] handles,
//! * [`geometry`] — 2-D points and distances for geometric topologies,
//! * [`waxman`] — the Waxman random-graph generator used by the paper's
//!   evaluation (§V-A), including average-degree calibration and
//!   connectivity augmentation,
//! * [`dijkstra`] — weighted shortest paths with node/edge filtering,
//! * [`ksp`] — Yen's k-shortest (loopless) paths, used to pre-compute the
//!   candidate route sets `R(φ)`,
//! * [`paths`] — validated [`Path`] values and hop-bounded simple-path
//!   enumeration,
//! * [`connectivity`] — connected components and union-find.
//!
//! # Example
//!
//! ```
//! use qdn_graph::{Graph, ksp::yen_k_shortest, paths::hop_weight};
//!
//! # fn main() -> Result<(), qdn_graph::GraphError> {
//! let mut g = Graph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! let c = g.add_node();
//! g.add_edge(a, b)?;
//! g.add_edge(b, c)?;
//! g.add_edge(a, c)?;
//!
//! let routes = yen_k_shortest(&g, a, c, 2, &hop_weight);
//! assert_eq!(routes.len(), 2);
//! assert_eq!(routes[0].hops(), 1); // direct edge a-c
//! assert_eq!(routes[1].hops(), 2); // a-b-c
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
pub mod connectivity;
pub mod dijkstra;
pub mod generators;
pub mod geometry;
pub mod graph;
pub mod ksp;
pub mod maintain;
pub mod metrics;
pub mod paths;
pub mod waxman;

pub use graph::{EdgeId, Graph, GraphError, NodeId};
pub use paths::Path;
