//! Yen's k-shortest loopless paths.
//!
//! The paper bounds the candidate route set `R(φ)` by `R` routes per SD
//! pair, pre-computed "by choosing routes with shorter lengths/hops"
//! (§III-C). Yen's algorithm produces exactly that: the `k` simple paths of
//! smallest total weight, in non-decreasing order.

use crate::dijkstra::{shortest_path_filtered, SearchFilter};
use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::Path;

/// Computes up to `k` loopless shortest paths from `src` to `dst` under
/// `weight`, ordered by non-decreasing total weight.
///
/// Fewer than `k` paths are returned when the graph does not contain `k`
/// distinct simple paths. Ties are broken deterministically (by the order
/// candidates are generated), so results are reproducible for a fixed
/// graph.
///
/// This is Yen's algorithm: each new path is found by "spurring" off every
/// prefix of the previously accepted path with the conflicting edges
/// removed, keeping a candidate pool `B` of potential next paths.
///
/// # Example
///
/// ```
/// use qdn_graph::{Graph, ksp::yen_k_shortest, paths::hop_weight};
///
/// # fn main() -> Result<(), qdn_graph::GraphError> {
/// let mut g = Graph::new();
/// let n: Vec<_> = (0..4).map(|_| g.add_node()).collect();
/// g.add_edge(n[0], n[1])?;
/// g.add_edge(n[1], n[3])?;
/// g.add_edge(n[0], n[2])?;
/// g.add_edge(n[2], n[3])?;
/// g.add_edge(n[0], n[3])?;
///
/// let paths = yen_k_shortest(&g, n[0], n[3], 5, &hop_weight);
/// assert_eq!(paths.len(), 3);
/// assert_eq!(paths[0].hops(), 1);
/// assert_eq!(paths[1].hops(), 2);
/// assert_eq!(paths[2].hops(), 2);
/// # Ok(())
/// # }
/// ```
pub fn yen_k_shortest<F>(graph: &Graph, src: NodeId, dst: NodeId, k: usize, weight: &F) -> Vec<Path>
where
    F: Fn(EdgeId) -> f64,
{
    yen_k_shortest_filtered(graph, src, dst, k, weight, &SearchFilter::new())
}

/// [`yen_k_shortest`] on the subgraph that survives `base`: every search
/// (the initial shortest path and every spur) additionally respects the
/// base filter, so no returned path touches a banned node or edge.
///
/// This is the primitive behind incremental candidate maintenance
/// ([`crate::maintain`]): a set of dead edges is carried as the base
/// filter instead of mutating the graph, keeping edge/node ids stable
/// across failures and repairs.
pub fn yen_k_shortest_filtered<F>(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    weight: &F,
    base: &SearchFilter,
) -> Vec<Path>
where
    F: Fn(EdgeId) -> f64,
{
    let mut accepted: Vec<Path> = Vec::new();
    if k == 0 {
        return accepted;
    }
    let Some(first) = shortest_path_filtered(graph, src, dst, weight, base) else {
        return accepted;
    };
    accepted.push(first);

    // Candidate pool of (total weight, path). Kept sorted lazily; duplicates
    // filtered on insertion.
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    while accepted.len() < k {
        let prev = accepted.last().expect("at least one accepted path").clone();
        // Spur from every node of the previous path except the destination.
        for i in 0..prev.hops() {
            let spur_node = prev.nodes()[i];
            let root_nodes = &prev.nodes()[..=i];
            let root_edges = &prev.edges()[..i];

            let mut filter = base.clone();
            // Remove edges that would recreate an already-accepted path
            // sharing this root.
            for p in &accepted {
                if p.hops() > i && p.nodes()[..=i] == *root_nodes {
                    filter.ban_edge(p.edges()[i]);
                }
            }
            // Remove root nodes (except the spur node) to keep paths simple.
            for &n in &root_nodes[..i] {
                filter.ban_node(n);
            }

            let Some(spur) = shortest_path_filtered(graph, spur_node, dst, weight, &filter) else {
                continue;
            };

            // Stitch root + spur.
            let mut nodes: Vec<NodeId> = root_nodes[..i].to_vec();
            nodes.extend_from_slice(spur.nodes());
            let mut edges: Vec<EdgeId> = root_edges.to_vec();
            edges.extend_from_slice(spur.edges());
            let Ok(total) = Path::new(graph, nodes, edges) else {
                continue;
            };

            if accepted.contains(&total) || candidates.iter().any(|(_, p)| *p == total) {
                continue;
            }
            let w = total.weight(weight);
            candidates.push((w, total));
        }

        if candidates.is_empty() {
            break;
        }
        // Extract the minimum-weight candidate (stable for ties: first found).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(ia, (wa, _)), (ib, (wb, _))| wa.total_cmp(wb).then(ia.cmp(ib)))
            .map(|(i, _)| i)
            .expect("candidates non-empty");
        let (_, path) = candidates.swap_remove(best);
        accepted.push(path);
    }

    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{all_simple_paths, hop_weight};
    use rand::{RngExt, SeedableRng};

    fn grid3x3() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let nodes: Vec<_> = (0..9).map(|_| g.add_node()).collect();
        for r in 0..3 {
            for c in 0..3 {
                let i = r * 3 + c;
                if c + 1 < 3 {
                    g.add_edge(nodes[i], nodes[i + 1]).unwrap();
                }
                if r + 1 < 3 {
                    g.add_edge(nodes[i], nodes[i + 3]).unwrap();
                }
            }
        }
        (g, nodes)
    }

    #[test]
    fn k_zero_returns_empty() {
        let (g, n) = grid3x3();
        assert!(yen_k_shortest(&g, n[0], n[8], 0, &hop_weight).is_empty());
    }

    #[test]
    fn first_path_is_shortest() {
        let (g, n) = grid3x3();
        let paths = yen_k_shortest(&g, n[0], n[8], 4, &hop_weight);
        assert_eq!(paths[0].hops(), 4);
    }

    #[test]
    fn weights_non_decreasing() {
        let (g, n) = grid3x3();
        let paths = yen_k_shortest(&g, n[0], n[8], 8, &hop_weight);
        let w: Vec<f64> = paths.iter().map(|p| p.weight(hop_weight)).collect();
        for pair in w.windows(2) {
            assert!(pair[0] <= pair[1], "weights must be sorted: {w:?}");
        }
    }

    #[test]
    fn paths_are_distinct_and_valid() {
        let (g, n) = grid3x3();
        let paths = yen_k_shortest(&g, n[0], n[8], 8, &hop_weight);
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(p.source(), n[0]);
            assert_eq!(p.destination(), n[8]);
            for q in &paths[i + 1..] {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn matches_exhaustive_enumeration_on_grid() {
        let (g, n) = grid3x3();
        // All 4-hop (shortest) paths in a 3x3 grid from corner to corner:
        // C(4,2) = 6 monotone lattice paths.
        let shortest: Vec<_> = all_simple_paths(&g, n[0], n[8], 4)
            .into_iter()
            .filter(|p| p.hops() == 4)
            .collect();
        assert_eq!(shortest.len(), 6);
        let yen = yen_k_shortest(&g, n[0], n[8], 6, &hop_weight);
        assert_eq!(yen.len(), 6);
        for p in &yen {
            assert_eq!(p.hops(), 4);
            assert!(shortest.contains(p));
        }
    }

    #[test]
    fn disconnected_returns_empty() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert!(yen_k_shortest(&g, a, b, 3, &hop_weight).is_empty());
    }

    #[test]
    fn exhausts_available_paths() {
        // Diamond has exactly 2 simple a->d paths (plus none longer).
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(c, d).unwrap();
        let paths = yen_k_shortest(&g, a, d, 10, &hop_weight);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn respects_weights_not_hops() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let ab = g.add_edge(a, b).unwrap(); // heavy direct edge
        let ac = g.add_edge(a, c).unwrap();
        let cb = g.add_edge(c, b).unwrap();
        let w = move |e: EdgeId| if e == ab { 10.0 } else { 1.0 };
        let paths = yen_k_shortest(&g, a, b, 2, &w);
        assert_eq!(paths[0].nodes(), &[a, c, b]);
        assert_eq!(paths[1].nodes(), &[a, b]);
        let _ = (ac, cb);
    }

    #[test]
    fn base_filter_excludes_dead_edges() {
        let (g, n) = grid3x3();
        let mut base = SearchFilter::new();
        // Kill both edges out of the corner's row neighbour.
        let dead = g.edge_between(n[0], n[1]).unwrap();
        base.ban_edge(dead);
        let paths = yen_k_shortest_filtered(&g, n[0], n[8], 8, &hop_weight, &base);
        assert!(!paths.is_empty());
        for p in &paths {
            assert!(!p.edges().contains(&dead), "dead edge used: {p:?}");
            assert_eq!(p.source(), n[0]);
            assert_eq!(p.destination(), n[8]);
        }
        // An empty base filter is exactly the unfiltered algorithm.
        assert_eq!(
            yen_k_shortest_filtered(&g, n[0], n[8], 8, &hop_weight, &SearchFilter::new()),
            yen_k_shortest(&g, n[0], n[8], 8, &hop_weight)
        );
    }

    /// Cross-check Yen against brute-force enumeration on random graphs.
    #[test]
    fn random_graphs_match_brute_force() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..30 {
            let n = rng.random_range(4..9usize);
            let mut g = Graph::new();
            let nodes: Vec<_> = (0..n).map(|_| g.add_node()).collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.random_bool(0.45) {
                        let _ = g.add_edge(nodes[i], nodes[j]);
                    }
                }
            }
            let src = nodes[0];
            let dst = nodes[n - 1];
            let k = 4;
            let yen = yen_k_shortest(&g, src, dst, k, &hop_weight);
            let mut brute = all_simple_paths(&g, src, dst, n - 1);
            brute.sort_by_key(|p| p.hops());
            assert_eq!(
                yen.len(),
                brute.len().min(k),
                "trial {trial}: yen found {} paths, brute force {}",
                yen.len(),
                brute.len()
            );
            // Hop counts must agree with the k smallest brute-force counts.
            for (y, b) in yen.iter().zip(brute.iter()) {
                assert_eq!(y.hops(), b.hops(), "trial {trial}");
            }
        }
    }
}
