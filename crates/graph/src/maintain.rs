//! Incremental maintenance of k-shortest candidate sets under edge churn.
//!
//! Recomputing every pair's Yen set after a single link failure is the
//! cold-restart behaviour this module removes. [`CandidateMaintainer`]
//! tracks per-pair candidate sets together with the set of currently
//! *dead* edges and repairs only the pairs a churn event can actually
//! affect:
//!
//! * **Failure** of edge `e`: a cached set that never uses `e` is
//!   untouched — its paths all survive, and since they were the `k`
//!   lightest paths of the larger graph they remain the `k` lightest of
//!   the smaller one. Only pairs with `e` on a cached route re-run Yen.
//! * **Repair** of edge `e`: only a path through `e` can newly enter a
//!   set. Two filtered Dijkstra trees rooted at the endpoints of `e`
//!   give a lower bound on the weight of any such path; saturated pairs
//!   whose worst cached route beats that bound are skipped without any
//!   path search.
//!
//! Equivalence with full recomputation is exact up to Yen's tie order
//! (weight-for-weight identical sets; see the
//! `incremental_ksp_matches_recompute` proptest in `tests/proptests.rs`).
//!
//! Churn rarely arrives one edge at a time: a node cut kills every
//! incident link in the same slot, and a regional blackout kills whole
//! clusters. The batched entry points ([`fail_edges`], [`fail_node`],
//! [`restore_edges`], [`restore_node`]) run the affected-pair proof once
//! over the whole edge set and re-run Yen at most once per affected
//! pair, instead of once per (pair, edge) as a loop over the singular
//! calls would. [`prewarm_fail`] precomputes the post-failure sets for
//! an *announced* outage (a maintenance window) so the repair at
//! cut time is a cache install instead of a path search.
//!
//! [`fail_edges`]: CandidateMaintainer::fail_edges
//! [`fail_node`]: CandidateMaintainer::fail_node
//! [`restore_edges`]: CandidateMaintainer::restore_edges
//! [`restore_node`]: CandidateMaintainer::restore_node
//! [`prewarm_fail`]: CandidateMaintainer::prewarm_fail

use std::collections::{BTreeMap, BTreeSet};

use crate::dijkstra::{distances_from_filtered, SearchFilter};
use crate::graph::{EdgeId, Graph, NodeId};
use crate::ksp::yen_k_shortest_filtered;
use crate::paths::Path;

/// What one failure/repair event did to the tracked candidate sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Pairs whose set was recomputed (sorted canonically).
    pub recomputed: Vec<(NodeId, NodeId)>,
    /// The subset of `recomputed` whose route list actually changed.
    pub changed: Vec<(NodeId, NodeId)>,
    /// Pairs proven unaffected without recomputation.
    pub skipped: usize,
    /// Yen searches actually run. The batch paths bound this at one per
    /// affected pair regardless of how many edges died; a per-edge loop
    /// pays one per (pair, edge) hit.
    pub yen_runs: usize,
    /// Repairs served from the prewarm cache instead of a Yen run.
    pub prewarm_hits: usize,
}

impl RepairReport {
    /// `true` when no tracked pair's routes changed.
    pub fn is_noop(&self) -> bool {
        self.changed.is_empty()
    }

    /// Folds `other` into `self` (for callers that batch a failure
    /// report with a restore report from the same slot).
    pub fn merge(&mut self, other: RepairReport) {
        self.recomputed.extend(other.recomputed);
        self.changed.extend(other.changed);
        self.recomputed.sort_unstable();
        self.recomputed.dedup();
        self.changed.sort_unstable();
        self.changed.dedup();
        self.skipped += other.skipped;
        self.yen_runs += other.yen_runs;
        self.prewarm_hits += other.prewarm_hits;
    }
}

/// Incrementally maintained k-shortest-path sets over a churning graph.
///
/// Dead edges are carried as a [`SearchFilter`] rather than by mutating
/// the graph, so node/edge ids (and everything keyed on them downstream)
/// stay stable across failures and repairs. Pairs are keyed canonically
/// (smaller node id first); stored paths run from the smaller to the
/// larger endpoint.
///
/// # Example
///
/// ```
/// use qdn_graph::{Graph, maintain::CandidateMaintainer, paths::hop_weight};
///
/// # fn main() -> Result<(), qdn_graph::GraphError> {
/// let mut g = Graph::new();
/// let n: Vec<_> = (0..4).map(|_| g.add_node()).collect();
/// let direct = g.add_edge(n[0], n[3])?;
/// g.add_edge(n[0], n[1])?;
/// g.add_edge(n[1], n[3])?;
///
/// let mut m = CandidateMaintainer::new(4);
/// m.track(&g, n[0], n[3], &hop_weight);
/// assert_eq!(m.routes(n[0], n[3]).unwrap().len(), 2);
///
/// let report = m.fail_edge(&g, direct, &hop_weight);
/// assert_eq!(report.changed.len(), 1);
/// assert_eq!(m.routes(n[0], n[3]).unwrap().len(), 1);
///
/// m.restore_edge(&g, direct, &hop_weight);
/// assert_eq!(m.routes(n[0], n[3]).unwrap().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CandidateMaintainer {
    k: usize,
    dead: BTreeSet<EdgeId>,
    // BTreeMap, not HashMap: fail/restore walk every tracked pair, and
    // repair order must not depend on hasher state (qdn-lint D1).
    sets: BTreeMap<(NodeId, NodeId), Vec<Path>>,
    // Post-failure sets computed ahead of an announced outage, keyed by
    // pair and tagged with the exact dead-edge set they assume. Consumed
    // by `fail_edges` when the assumption holds; never snapshotted (a
    // hit installs the same routes Yen would return, so decisions are
    // identical with or without the cache).
    prewarmed: BTreeMap<(NodeId, NodeId), PrewarmEntry>,
}

#[derive(Debug, Clone)]
struct PrewarmEntry {
    /// The full dead-edge set the routes were computed under.
    dead: BTreeSet<EdgeId>,
    routes: Vec<Path>,
}

impl CandidateMaintainer {
    /// Creates a maintainer producing up to `k` routes per pair.
    pub fn new(k: usize) -> Self {
        CandidateMaintainer {
            k,
            dead: BTreeSet::new(),
            sets: BTreeMap::new(),
            prewarmed: BTreeMap::new(),
        }
    }

    /// The per-pair route bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether `edge` is currently dead.
    pub fn is_dead(&self, edge: EdgeId) -> bool {
        self.dead.contains(&edge)
    }

    /// Currently dead edges, ascending.
    pub fn dead_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.dead.iter().copied()
    }

    /// Number of tracked pairs.
    pub fn tracked_pairs(&self) -> usize {
        self.sets.len()
    }

    /// Ensures `(a, b)` is tracked and returns its candidate set
    /// (canonically oriented), computing it on first use.
    pub fn track<F>(&mut self, graph: &Graph, a: NodeId, b: NodeId, weight: &F) -> &[Path]
    where
        F: Fn(EdgeId) -> f64,
    {
        let key = canonical(a, b);
        if !self.sets.contains_key(&key) {
            let filter = self.filter();
            let set = yen_k_shortest_filtered(graph, key.0, key.1, self.k, weight, &filter);
            self.sets.insert(key, set);
        }
        &self.sets[&key]
    }

    /// The cached candidate set for `(a, b)` (canonically oriented), or
    /// `None` if the pair is not tracked.
    pub fn routes(&self, a: NodeId, b: NodeId) -> Option<&[Path]> {
        self.sets.get(&canonical(a, b)).map(Vec::as_slice)
    }

    /// Marks `edge` dead and repairs every tracked set that used it.
    ///
    /// Pairs without `edge` on any cached route are provably unaffected:
    /// their routes were the `k` lightest of the pre-failure graph and
    /// every surviving path keeps its weight, so they remain the `k`
    /// lightest afterwards.
    pub fn fail_edge<F>(&mut self, graph: &Graph, edge: EdgeId, weight: &F) -> RepairReport
    where
        F: Fn(EdgeId) -> f64,
    {
        self.fail_edges(graph, &[edge], weight)
    }

    /// Marks every edge in `edges` dead and repairs each affected set
    /// **once**, against the consolidated post-failure filter.
    ///
    /// Equivalent to calling [`fail_edge`](Self::fail_edge) per edge —
    /// the final dead set is the same, and every affected pair re-runs
    /// Yen against it — but the affected-pair proof runs once over the
    /// whole edge set, so a pair hit by several dying edges pays one Yen
    /// search instead of one per edge ([`RepairReport::yen_runs`]
    /// counts them). Already-dead and duplicate edges are ignored.
    pub fn fail_edges<F>(&mut self, graph: &Graph, edges: &[EdgeId], weight: &F) -> RepairReport
    where
        F: Fn(EdgeId) -> f64,
    {
        let mut report = RepairReport::default();
        let fresh_dead: Vec<EdgeId> = {
            let mut d: Vec<EdgeId> = edges
                .iter()
                .copied()
                .filter(|&e| self.dead.insert(e))
                .collect();
            d.sort_unstable();
            d
        };
        if fresh_dead.is_empty() {
            return report; // every edge was already dead
        }
        let filter = self.filter();
        for (&key, set) in &mut self.sets {
            let affected = set
                .iter()
                .any(|p| fresh_dead.iter().any(|&e| p.contains_edge(e)));
            if !affected {
                report.skipped += 1;
                continue;
            }
            report.recomputed.push(key);
            let fresh = match self.prewarmed.remove(&key) {
                // A prewarmed entry is only valid when the outage it
                // anticipated is exactly the outage that happened.
                Some(entry) if entry.dead == self.dead => {
                    report.prewarm_hits += 1;
                    entry.routes
                }
                _ => {
                    report.yen_runs += 1;
                    yen_k_shortest_filtered(graph, key.0, key.1, self.k, weight, &filter)
                }
            };
            if fresh != *set {
                report.changed.push(key);
                *set = fresh;
            }
        }
        report.recomputed.sort_unstable();
        report.changed.sort_unstable();
        report
    }

    /// Fails every edge incident to `node` in one batch.
    ///
    /// This is the atomic node cut: all incident links die in the same
    /// slot, and each affected pair is repaired once against the final
    /// filter instead of once per incident edge.
    pub fn fail_node<F>(&mut self, graph: &Graph, node: NodeId, weight: &F) -> RepairReport
    where
        F: Fn(EdgeId) -> f64,
    {
        let mut incident: Vec<EdgeId> = graph.neighbors(node).map(|(_, e)| e).collect();
        incident.sort_unstable();
        self.fail_edges(graph, &incident, weight)
    }

    /// Revives `edge` and repairs every tracked set it could improve.
    ///
    /// Any path that newly enters a set must cross `edge`, so its weight
    /// is at least `min(d(s,u) + w + d(v,d), d(s,v) + w + d(u,d))` where
    /// `u, v` are the endpoints of `edge` and distances come from two
    /// filtered Dijkstra trees shared across all pairs. Saturated sets
    /// whose worst route is strictly lighter than that bound are skipped.
    pub fn restore_edge<F>(&mut self, graph: &Graph, edge: EdgeId, weight: &F) -> RepairReport
    where
        F: Fn(EdgeId) -> f64,
    {
        self.restore_edges(graph, &[edge], weight)
    }

    /// Revives every edge in `edges` and repairs each affected set once.
    ///
    /// Any path that newly enters a set must cross at least one revived
    /// edge, so the per-pair admission bound is the minimum of the
    /// single-edge bounds (two filtered Dijkstra trees per revived edge,
    /// all rooted against the post-restore filter). Pairs beating every
    /// bound are skipped; the rest re-run Yen once. Edges that were not
    /// dead (and duplicates) are ignored.
    pub fn restore_edges<F>(&mut self, graph: &Graph, edges: &[EdgeId], weight: &F) -> RepairReport
    where
        F: Fn(EdgeId) -> f64,
    {
        let mut report = RepairReport::default();
        let revived: Vec<EdgeId> = {
            let mut r: Vec<EdgeId> = edges
                .iter()
                .copied()
                .filter(|e| self.dead.remove(e))
                .collect();
            r.sort_unstable();
            r
        };
        if revived.is_empty() {
            return report; // nothing was dead
        }
        let filter = self.filter();
        // One pair of distance trees per revived edge, shared across all
        // pairs: (w, d(u, *), d(v, *)).
        let trees: Vec<(f64, Vec<f64>, Vec<f64>)> = revived
            .iter()
            .map(|&e| {
                let (u, v) = graph.endpoints(e);
                let du = distances_from_filtered(graph, u, weight, &filter);
                let dv = distances_from_filtered(graph, v, weight, &filter);
                (weight(e), du, dv)
            })
            .collect();
        for (&key, set) in &mut self.sets {
            let (s, d) = key;
            let bound = trees
                .iter()
                .map(|(w, du, dv)| {
                    (du[s.index()] + w + dv[d.index()]).min(dv[s.index()] + w + du[d.index()])
                })
                .fold(f64::INFINITY, f64::min);
            let needs = if set.len() < self.k {
                // Unsaturated: every surviving path is already cached, so
                // only a finite bound (some revived edge connects s to d)
                // can add one.
                bound.is_finite()
            } else {
                let worst = set.last().map_or(f64::INFINITY, |p| p.weight(weight));
                bound <= worst
            };
            if needs {
                let fresh = yen_k_shortest_filtered(graph, key.0, key.1, self.k, weight, &filter);
                report.recomputed.push(key);
                report.yen_runs += 1;
                if fresh != *set {
                    report.changed.push(key);
                    *set = fresh;
                }
            } else {
                report.skipped += 1;
            }
        }
        report.recomputed.sort_unstable();
        report.changed.sort_unstable();
        report
    }

    /// Revives every currently-dead edge incident to `node` in one
    /// batch. The maintainer does not track *why* an edge is dead;
    /// callers modelling overlapping outages (two adjacent nodes down,
    /// one repaired) must keep shared edges out of the restore set
    /// themselves.
    pub fn restore_node<F>(&mut self, graph: &Graph, node: NodeId, weight: &F) -> RepairReport
    where
        F: Fn(EdgeId) -> f64,
    {
        let mut incident: Vec<EdgeId> = graph
            .neighbors(node)
            .map(|(_, e)| e)
            .filter(|&e| self.dead.contains(&e))
            .collect();
        incident.sort_unstable();
        self.restore_edges(graph, &incident, weight)
    }

    /// Precomputes the post-failure candidate sets for an *announced*
    /// outage of `edges` (e.g. a maintenance window), without changing
    /// the live sets or the dead-edge set. When the outage later arrives
    /// as a [`fail_edges`](Self::fail_edges) batch and the dead set
    /// matches the announcement exactly, affected pairs install the
    /// precomputed routes instead of running Yen
    /// ([`RepairReport::prewarm_hits`]). If churn drifts in between, the
    /// stale entries are simply ignored and repair falls back to Yen —
    /// decisions are bit-identical either way. Returns the number of
    /// pairs prewarmed.
    pub fn prewarm_fail<F>(&mut self, graph: &Graph, edges: &[EdgeId], weight: &F) -> usize
    where
        F: Fn(EdgeId) -> f64,
    {
        let mut assumed = self.dead.clone();
        let fresh_dead: Vec<EdgeId> = edges
            .iter()
            .copied()
            .filter(|&e| assumed.insert(e))
            .collect();
        if fresh_dead.is_empty() {
            return 0;
        }
        let mut filter = SearchFilter::new();
        for &e in &assumed {
            filter.ban_edge(e);
        }
        let mut warmed = 0;
        for (&key, set) in &self.sets {
            let affected = set
                .iter()
                .any(|p| fresh_dead.iter().any(|&e| p.contains_edge(e)));
            if !affected {
                continue;
            }
            let routes = yen_k_shortest_filtered(graph, key.0, key.1, self.k, weight, &filter);
            self.prewarmed.insert(
                key,
                PrewarmEntry {
                    dead: assumed.clone(),
                    routes,
                },
            );
            warmed += 1;
        }
        warmed
    }

    /// Number of pairs with a live prewarmed repair entry.
    pub fn prewarmed_pairs(&self) -> usize {
        self.prewarmed.len()
    }

    /// Every tracked pair with its cached candidate set, ascending by
    /// canonical key.
    pub fn tracked(&self) -> impl Iterator<Item = ((NodeId, NodeId), &[Path])> + '_ {
        self.sets.iter().map(|(&key, set)| (key, set.as_slice()))
    }

    /// Rebuilds a maintainer from snapshotted parts: the route bound
    /// `k`, the dead-edge set, and the tracked candidate sets exactly
    /// as a live maintainer held them. No recomputation runs — churn
    /// repair only yields weight-equivalent (not tie-identical) sets,
    /// so a restored maintainer must carry the original routes to keep
    /// later decisions bit-identical.
    pub fn from_parts(
        k: usize,
        dead: impl IntoIterator<Item = EdgeId>,
        sets: impl IntoIterator<Item = ((NodeId, NodeId), Vec<Path>)>,
    ) -> Self {
        CandidateMaintainer {
            k,
            dead: dead.into_iter().collect(),
            sets: sets.into_iter().collect(),
            prewarmed: BTreeMap::new(),
        }
    }

    /// Drops every tracked pair and revives every edge.
    pub fn clear(&mut self) {
        self.dead.clear();
        self.sets.clear();
        self.prewarmed.clear();
    }

    fn filter(&self) -> SearchFilter {
        let mut f = SearchFilter::new();
        for &e in &self.dead {
            f.ban_edge(e);
        }
        f
    }
}

fn canonical(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::hop_weight;

    /// Two disjoint diamonds bridged nowhere: 0-1-3 / 0-2-3 and
    /// 4-5-7 / 4-6-7.
    fn two_diamonds() -> (Graph, Vec<NodeId>, Vec<EdgeId>) {
        let mut g = Graph::new();
        let n: Vec<_> = (0..8).map(|_| g.add_node()).collect();
        let mut e = Vec::new();
        for base in [0, 4] {
            e.push(g.add_edge(n[base], n[base + 1]).unwrap());
            e.push(g.add_edge(n[base + 1], n[base + 3]).unwrap());
            e.push(g.add_edge(n[base], n[base + 2]).unwrap());
            e.push(g.add_edge(n[base + 2], n[base + 3]).unwrap());
        }
        (g, n, e)
    }

    #[test]
    fn failure_in_one_component_skips_the_other() {
        let (g, n, e) = two_diamonds();
        let mut m = CandidateMaintainer::new(4);
        m.track(&g, n[0], n[3], &hop_weight);
        m.track(&g, n[4], n[7], &hop_weight);
        let report = m.fail_edge(&g, e[0], &hop_weight);
        assert_eq!(report.recomputed, vec![(n[0], n[3])]);
        assert_eq!(report.changed, vec![(n[0], n[3])]);
        assert_eq!(report.skipped, 1);
        assert_eq!(m.routes(n[0], n[3]).unwrap().len(), 1);
        assert_eq!(m.routes(n[4], n[7]).unwrap().len(), 2);
    }

    #[test]
    fn repair_restores_the_original_set() {
        let (g, n, e) = two_diamonds();
        let mut m = CandidateMaintainer::new(4);
        let before = m.track(&g, n[0], n[3], &hop_weight).to_vec();
        m.fail_edge(&g, e[0], &hop_weight);
        let report = m.restore_edge(&g, e[0], &hop_weight);
        assert_eq!(report.changed, vec![(n[0], n[3])]);
        let after = m.routes(n[0], n[3]).unwrap();
        assert_eq!(after.len(), before.len());
        let wb: Vec<f64> = before.iter().map(|p| p.weight(hop_weight)).collect();
        let wa: Vec<f64> = after.iter().map(|p| p.weight(hop_weight)).collect();
        assert_eq!(wb, wa);
    }

    #[test]
    fn repair_skips_saturated_pairs_it_cannot_improve() {
        // Line 0-1-2 plus a heavy detour edge 0-2 that never beats the
        // 2-hop route when k is already saturated at 1.
        let mut g = Graph::new();
        let n: Vec<_> = (0..3).map(|_| g.add_node()).collect();
        g.add_edge(n[0], n[1]).unwrap();
        g.add_edge(n[1], n[2]).unwrap();
        let detour = g.add_edge(n[0], n[2]).unwrap();
        // Weight: detour costs 10, everything else 1.
        let w = move |e: EdgeId| if e == detour { 10.0 } else { 1.0 };
        let mut m = CandidateMaintainer::new(1);
        m.fail_edge(&g, detour, &w);
        m.track(&g, n[0], n[2], &w);
        let report = m.restore_edge(&g, detour, &w);
        assert!(report.recomputed.is_empty());
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn track_respects_pre_existing_dead_edges() {
        let (g, n, e) = two_diamonds();
        let mut m = CandidateMaintainer::new(4);
        m.fail_edge(&g, e[0], &hop_weight);
        let routes = m.track(&g, n[0], n[3], &hop_weight);
        assert_eq!(routes.len(), 1);
        assert!(routes.iter().all(|p| !p.contains_edge(e[0])));
    }

    #[test]
    fn double_fail_and_double_restore_are_noops() {
        let (g, n, e) = two_diamonds();
        let mut m = CandidateMaintainer::new(4);
        m.track(&g, n[0], n[3], &hop_weight);
        m.fail_edge(&g, e[0], &hop_weight);
        assert_eq!(m.fail_edge(&g, e[0], &hop_weight), RepairReport::default());
        m.restore_edge(&g, e[0], &hop_weight);
        assert_eq!(
            m.restore_edge(&g, e[0], &hop_weight),
            RepairReport::default()
        );
    }

    #[test]
    fn disconnecting_failure_leaves_empty_set() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let only = g.add_edge(a, b).unwrap();
        let mut m = CandidateMaintainer::new(3);
        m.track(&g, a, b, &hop_weight);
        m.fail_edge(&g, only, &hop_weight);
        assert!(m.routes(a, b).unwrap().is_empty());
        m.restore_edge(&g, only, &hop_weight);
        assert_eq!(m.routes(a, b).unwrap().len(), 1);
    }

    #[test]
    fn batch_fail_runs_yen_once_per_affected_pair() {
        // 0-1-3 / 0-2-3 diamond: one edge of each arm dies in the same
        // slot. The pair is hit by both, but the batch repairs it once.
        let (g, n, e) = two_diamonds();
        let mut m = CandidateMaintainer::new(4);
        m.track(&g, n[0], n[3], &hop_weight);
        let report = m.fail_edges(&g, &[e[0], e[2]], &hop_weight);
        assert_eq!(report.recomputed, vec![(n[0], n[3])]);
        assert_eq!(report.yen_runs, 1);
        assert!(m.routes(n[0], n[3]).unwrap().is_empty());

        // The per-edge loop pays twice for the same outage.
        let mut per_edge = CandidateMaintainer::new(4);
        per_edge.track(&g, n[0], n[3], &hop_weight);
        let total: usize = [e[0], e[2]]
            .iter()
            .map(|&edge| per_edge.fail_edge(&g, edge, &hop_weight).yen_runs)
            .sum();
        assert_eq!(total, 2);
        assert_eq!(m.routes(n[0], n[3]), per_edge.routes(n[0], n[3]));
    }

    #[test]
    fn fail_node_matches_failing_incident_edges() {
        let (g, n, _) = two_diamonds();
        let mut a = CandidateMaintainer::new(4);
        let mut b = CandidateMaintainer::new(4);
        for m in [&mut a, &mut b] {
            m.track(&g, n[0], n[3], &hop_weight);
            m.track(&g, n[4], n[7], &hop_weight);
        }
        let mut incident: Vec<EdgeId> = g.neighbors(n[1]).map(|(_, e)| e).collect();
        incident.sort_unstable();
        let ra = a.fail_node(&g, n[1], &hop_weight);
        let rb = b.fail_edges(&g, &incident, &hop_weight);
        assert_eq!(ra, rb);
        assert_eq!(a.routes(n[0], n[3]), b.routes(n[0], n[3]));
        let restored_a = a.restore_node(&g, n[1], &hop_weight);
        let restored_b = b.restore_edges(&g, &incident, &hop_weight);
        assert_eq!(restored_a, restored_b);
        assert_eq!(a.routes(n[0], n[3]).unwrap().len(), 2);
    }

    #[test]
    fn batch_restore_repairs_once_and_recovers_the_sets() {
        let (g, n, e) = two_diamonds();
        let mut m = CandidateMaintainer::new(4);
        let before = m.track(&g, n[0], n[3], &hop_weight).to_vec();
        m.fail_edges(&g, &[e[0], e[1]], &hop_weight);
        let report = m.restore_edges(&g, &[e[0], e[1]], &hop_weight);
        assert_eq!(report.recomputed, vec![(n[0], n[3])]);
        assert_eq!(report.yen_runs, 1);
        let after = m.routes(n[0], n[3]).unwrap();
        let wb: Vec<f64> = before.iter().map(|p| p.weight(hop_weight)).collect();
        let wa: Vec<f64> = after.iter().map(|p| p.weight(hop_weight)).collect();
        assert_eq!(wb, wa);
    }

    #[test]
    fn prewarm_hit_skips_yen_and_installs_identical_routes() {
        let (g, n, e) = two_diamonds();
        let outage = [e[0], e[1]];

        let mut cold = CandidateMaintainer::new(4);
        cold.track(&g, n[0], n[3], &hop_weight);
        cold.fail_edges(&g, &outage, &hop_weight);

        let mut warm = CandidateMaintainer::new(4);
        warm.track(&g, n[0], n[3], &hop_weight);
        assert_eq!(warm.prewarm_fail(&g, &outage, &hop_weight), 1);
        assert_eq!(warm.prewarmed_pairs(), 1);
        let report = warm.fail_edges(&g, &outage, &hop_weight);
        assert_eq!(report.prewarm_hits, 1);
        assert_eq!(report.yen_runs, 0);
        assert_eq!(warm.prewarmed_pairs(), 0);
        assert_eq!(warm.routes(n[0], n[3]), cold.routes(n[0], n[3]));
    }

    #[test]
    fn stale_prewarm_falls_back_to_yen() {
        let (g, n, e) = two_diamonds();
        let mut m = CandidateMaintainer::new(4);
        m.track(&g, n[0], n[3], &hop_weight);
        // Announce {e0}, but e2 dies first: the assumed dead set no
        // longer matches, so the entry must be ignored.
        m.prewarm_fail(&g, &[e[0]], &hop_weight);
        m.fail_edge(&g, e[2], &hop_weight);
        let report = m.fail_edge(&g, e[0], &hop_weight);
        assert_eq!(report.prewarm_hits, 0);
        assert_eq!(report.yen_runs, 1);

        let mut cold = CandidateMaintainer::new(4);
        cold.track(&g, n[0], n[3], &hop_weight);
        cold.fail_edges(&g, &[e[0], e[2]], &hop_weight);
        assert_eq!(m.routes(n[0], n[3]), cold.routes(n[0], n[3]));
    }

    #[test]
    fn orientation_is_canonical() {
        let (g, n, _) = two_diamonds();
        let mut m = CandidateMaintainer::new(4);
        m.track(&g, n[3], n[0], &hop_weight);
        let r = m.routes(n[0], n[3]).unwrap();
        assert_eq!(r[0].source(), n[0]);
        assert_eq!(r[0].destination(), n[3]);
        assert!(m.routes(n[3], n[0]).is_some());
        assert_eq!(m.tracked_pairs(), 1);
    }
}
