//! Waxman random geometric topologies.
//!
//! The paper's evaluation (§V-A-1) generates QDN topologies by placing
//! nodes uniformly in a `100 × 100` square and connecting `u, v` with
//! probability `β · exp(−d(u,v) / (α · d_max))` (the Waxman model, used by
//! several of the quantum-network papers the authors cite). Two additions
//! are needed to make this usable for the experiments:
//!
//! * **degree calibration** — the paper adjusts the Waxman parameter so the
//!   average node degree stays ≈ 4 across network sizes (Fig. 6); we binary
//!   search `β` against the analytic expected degree of the sampled point
//!   set ([`calibrate_beta`]);
//! * **connectivity augmentation** — entanglement routing needs every SD
//!   pair to have a route, so [`WaxmanConfig::connected`] patches
//!   disconnected outputs by repeatedly adding the shortest edge between
//!   components.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::connectivity::{connected_components, is_connected};
use crate::geometry::{max_pairwise_distance, sample_uniform_square, Point};
use crate::graph::{EdgeId, Graph, NodeId};

/// A graph embedded in the plane: topology plus node positions.
///
/// # Example
///
/// ```
/// use qdn_graph::waxman::WaxmanConfig;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let topo = WaxmanConfig::paper_default().generate(&mut rng);
/// assert_eq!(topo.graph.node_count(), 20);
/// assert!(qdn_graph::connectivity::is_connected(&topo.graph));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeometricGraph {
    /// The topology.
    pub graph: Graph,
    /// `positions[v.index()]` is the planar position of node `v`.
    pub positions: Vec<Point>,
}

impl GeometricGraph {
    /// Euclidean length of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds.
    pub fn edge_length(&self, edge: EdgeId) -> f64 {
        let (u, v) = self.graph.endpoints(edge);
        self.positions[u.index()].distance(self.positions[v.index()])
    }

    /// Position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }
}

/// Parameters of the Waxman topology generator.
///
/// `alpha` stretches the distance decay (larger ⇒ long edges more likely);
/// `beta` scales overall edge density. The paper's defaults are
/// `alpha = beta = 0.5` on 20 nodes in a 100×100 square with average
/// degree ≈ 4 ([`WaxmanConfig::paper_default`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaxmanConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Distance-decay parameter `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Density parameter `β ∈ (0, 1]`.
    pub beta: f64,
    /// Side length of the deployment square.
    pub side: f64,
    /// If `true`, augment the generated graph to a single connected
    /// component by adding shortest inter-component edges.
    pub connected: bool,
}

impl WaxmanConfig {
    /// The paper's §V-A default: 20 nodes, α = β = 0.5, 100×100 square,
    /// connectivity enforced.
    pub fn paper_default() -> Self {
        WaxmanConfig {
            nodes: 20,
            alpha: 0.5,
            beta: 0.5,
            side: 100.0,
            connected: true,
        }
    }

    /// Returns a copy with a different node count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Returns a copy with a different `β`.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Generates a topology.
    ///
    /// Positions are sampled uniformly in the square; each pair is linked
    /// with the Waxman probability; if [`WaxmanConfig::connected`] is set,
    /// disconnected outputs are augmented via [`augment_to_connected`].
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> GeometricGraph {
        let positions = sample_uniform_square(rng, self.nodes, self.side);
        let dmax = max_pairwise_distance(&positions);
        let mut graph = Graph::with_node_capacity(self.nodes);
        graph.add_nodes(self.nodes);
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                let p = waxman_probability(
                    positions[i].distance(positions[j]),
                    dmax,
                    self.alpha,
                    self.beta,
                );
                if rng.random_bool(p) {
                    graph
                        .add_edge(NodeId(i as u32), NodeId(j as u32))
                        .expect("pairs visited once, no self-loops");
                }
            }
        }
        let mut topo = GeometricGraph { graph, positions };
        if self.connected {
            augment_to_connected(&mut topo);
        }
        topo
    }

    /// Expected average degree for a *given* point placement: the sum of
    /// pairwise Waxman probabilities times `2 / n`.
    pub fn expected_average_degree(&self, positions: &[Point]) -> f64 {
        let n = positions.len();
        if n == 0 {
            return 0.0;
        }
        let dmax = max_pairwise_distance(positions);
        let mut sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += waxman_probability(
                    positions[i].distance(positions[j]),
                    dmax,
                    self.alpha,
                    self.beta,
                );
            }
        }
        2.0 * sum / n as f64
    }
}

/// The Waxman link probability `β · exp(−d / (α · d_max))`, clamped to
/// `[0, 1]`.
///
/// Degenerate inputs (`d_max = 0`) yield probability `β` (all points are
/// coincident, distance decay vanishes).
pub fn waxman_probability(d: f64, dmax: f64, alpha: f64, beta: f64) -> f64 {
    let decay = if dmax > 0.0 {
        (-d / (alpha * dmax)).exp()
    } else {
        1.0
    };
    (beta * decay).clamp(0.0, 1.0)
}

/// Adds edges until the graph is connected.
///
/// Components are merged greedily: at each step the geometrically shortest
/// node pair spanning two different components is linked. This mimics how
/// physical deployments would patch a disconnected fibre plant and keeps
/// the added edges short (thus realistic for the loss model).
pub fn augment_to_connected(topo: &mut GeometricGraph) {
    while !is_connected(&topo.graph) {
        let comps = connected_components(&topo.graph);
        // Find closest pair across the first component and any other.
        let base = &comps[0];
        let mut best: Option<(f64, NodeId, NodeId)> = None;
        for other in &comps[1..] {
            for &u in base {
                for &v in other {
                    let d = topo.positions[u.index()].distance(topo.positions[v.index()]);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, u, v));
                    }
                }
            }
        }
        let (_, u, v) = best.expect("disconnected graph has >= 2 components");
        topo.graph
            .add_edge(u, v)
            .expect("edge between distinct components cannot exist yet");
    }
}

/// Binary-searches the Waxman `β` so the *expected* average degree of a
/// reference placement matches `target_degree`.
///
/// A fresh placement of `config.nodes` points is sampled from `rng` and
/// `β` is tuned against its analytic expected degree (the placement is
/// discarded — only `β` is returned). This reproduces the paper's "we
/// adjust the Waxman graph parameter to ensure an average node degree of
/// approximately 4 across all network sizes" (§V-B-3).
///
/// Returns `β` clamped to `[0, 1]`; if even `β = 1` cannot reach the
/// target (dense target on a tiny graph), `1.0` is returned.
///
/// # Example
///
/// ```
/// use qdn_graph::waxman::{calibrate_beta, WaxmanConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let cfg = WaxmanConfig::paper_default().with_nodes(30);
/// let beta = calibrate_beta(&cfg, 4.0, &mut rng);
/// assert!((0.0..=1.0).contains(&beta));
/// ```
pub fn calibrate_beta<R: Rng + ?Sized>(
    config: &WaxmanConfig,
    target_degree: f64,
    rng: &mut R,
) -> f64 {
    // Average the expected degree over a few placements to reduce variance.
    const PLACEMENTS: usize = 8;
    let placements: Vec<Vec<Point>> = (0..PLACEMENTS)
        .map(|_| sample_uniform_square(rng, config.nodes, config.side))
        .collect();
    let mean_degree = |beta: f64| -> f64 {
        let cfg = WaxmanConfig {
            beta,
            ..config.clone()
        };
        placements
            .iter()
            .map(|p| cfg.expected_average_degree(p))
            .sum::<f64>()
            / PLACEMENTS as f64
    };

    // Expected degree is linear in beta: E[deg](β) = β · E[deg](1).
    let at_one = mean_degree(1.0);
    if at_one <= 0.0 {
        return 1.0;
    }
    (target_degree / at_one).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn probability_bounds() {
        for &(d, dmax, a, b) in &[
            (0.0, 100.0, 0.5, 0.5),
            (100.0, 100.0, 0.5, 0.5),
            (50.0, 100.0, 0.1, 1.0),
            (10.0, 0.0, 0.5, 0.7),
        ] {
            let p = waxman_probability(d, dmax, a, b);
            assert!((0.0..=1.0).contains(&p), "p={p}");
        }
    }

    #[test]
    fn probability_decays_with_distance() {
        let p_near = waxman_probability(1.0, 100.0, 0.5, 0.5);
        let p_far = waxman_probability(90.0, 100.0, 0.5, 0.5);
        assert!(p_near > p_far);
    }

    #[test]
    fn zero_dmax_gives_beta() {
        assert_eq!(waxman_probability(0.0, 0.0, 0.5, 0.3), 0.3);
    }

    #[test]
    fn paper_default_shape() {
        let cfg = WaxmanConfig::paper_default();
        assert_eq!(cfg.nodes, 20);
        assert_eq!(cfg.alpha, 0.5);
        assert_eq!(cfg.beta, 0.5);
        assert_eq!(cfg.side, 100.0);
        assert!(cfg.connected);
    }

    #[test]
    fn generate_produces_connected_graph() {
        for seed in 0..10 {
            let topo = WaxmanConfig::paper_default().generate(&mut rng(seed));
            assert_eq!(topo.graph.node_count(), 20);
            assert!(is_connected(&topo.graph), "seed {seed}");
        }
    }

    #[test]
    fn generate_without_connectivity_flag_leaves_graph_as_is() {
        let cfg = WaxmanConfig {
            nodes: 30,
            alpha: 0.05,
            beta: 0.02, // sparse: almost surely disconnected
            side: 100.0,
            connected: false,
        };
        let topo = cfg.generate(&mut rng(11));
        // With such a sparse configuration some component structure remains;
        // just check determinism of the flag (no augmentation edges added
        // beyond sampled ones is hard to observe directly, so check the
        // graph is *allowed* to be disconnected).
        let _ = is_connected(&topo.graph);
        assert_eq!(topo.graph.node_count(), 30);
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let cfg = WaxmanConfig::paper_default();
        let t1 = cfg.generate(&mut rng(42));
        let t2 = cfg.generate(&mut rng(42));
        assert_eq!(t1, t2);
    }

    #[test]
    fn average_degree_close_to_four_with_default_calibration() {
        // Calibrate beta for degree 4 and check realized degrees.
        let cfg = WaxmanConfig::paper_default();
        let mut r = rng(7);
        let beta = calibrate_beta(&cfg, 4.0, &mut r);
        let cfg = cfg.with_beta(beta);
        let mut total = 0.0;
        const TRIALS: usize = 40;
        for _ in 0..TRIALS {
            let topo = cfg.generate(&mut r);
            total += topo.graph.average_degree();
        }
        let avg = total / TRIALS as f64;
        // Connectivity augmentation can only add edges, so allow upward bias.
        assert!(
            (3.2..=5.2).contains(&avg),
            "calibrated average degree {avg} should be near 4"
        );
    }

    #[test]
    fn calibration_scales_across_sizes() {
        let mut r = rng(13);
        for &n in &[10usize, 20, 30, 40] {
            let cfg = WaxmanConfig::paper_default().with_nodes(n);
            let beta = calibrate_beta(&cfg, 4.0, &mut r);
            let cfg = cfg.with_beta(beta);
            let mut total = 0.0;
            const TRIALS: usize = 30;
            for _ in 0..TRIALS {
                total += cfg.generate(&mut r).graph.average_degree();
            }
            let avg = total / TRIALS as f64;
            assert!(
                (2.8..=5.6).contains(&avg),
                "n={n}: calibrated degree {avg} not near 4"
            );
        }
    }

    #[test]
    fn edge_length_matches_positions() {
        let topo = WaxmanConfig::paper_default().generate(&mut rng(3));
        for (e, u, v) in topo.graph.edges() {
            let expected = topo.positions[u.index()].distance(topo.positions[v.index()]);
            assert_eq!(topo.edge_length(e), expected);
        }
    }

    #[test]
    fn augment_connects_two_clusters() {
        // Two far-apart pairs, no edges: augmentation must add >= 3 edges
        // overall? No: 4 isolated nodes -> 3 edges to connect.
        let mut g = Graph::new();
        for _ in 0..4 {
            g.add_node();
        }
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(101.0, 0.0),
        ];
        let mut topo = GeometricGraph {
            graph: g,
            positions,
        };
        augment_to_connected(&mut topo);
        assert!(is_connected(&topo.graph));
        assert_eq!(topo.graph.edge_count(), 3);
        // The near pairs should be joined by short edges.
        assert!(topo.graph.has_edge(NodeId(0), NodeId(1)));
        assert!(topo.graph.has_edge(NodeId(2), NodeId(3)));
    }

    #[test]
    fn expected_degree_linear_in_beta() {
        let mut r = rng(5);
        let pts = sample_uniform_square(&mut r, 15, 100.0);
        let base = WaxmanConfig::paper_default().with_nodes(15);
        let d_half = base.clone().with_beta(0.5).expected_average_degree(&pts);
        let d_one = base.with_beta(1.0).expected_average_degree(&pts);
        assert!((d_half * 2.0 - d_one).abs() < 1e-9);
    }
}
