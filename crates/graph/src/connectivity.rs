//! Connected components and union-find.
//!
//! The Waxman generator can produce disconnected graphs; the QDN
//! evaluation requires every SD pair to have at least one route, so
//! [`crate::waxman`] augments generated topologies to a single component
//! using the helpers here.

use crate::graph::{Graph, NodeId};

/// A weighted-union, path-compressing disjoint-set forest over `n` items.
///
/// # Example
///
/// ```
/// use qdn_graph::connectivity::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.component_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Finds the representative of `x`'s set (with path compression).
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` if a merge happened (they were previously disjoint).
    ///
    /// # Panics
    ///
    /// Panics if `a >= n` or `b >= n`.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

/// Returns the connected components of `graph` as lists of node ids.
///
/// Components are ordered by their smallest node id; nodes within a
/// component are sorted ascending, so the output is deterministic.
///
/// # Example
///
/// ```
/// use qdn_graph::{Graph, connectivity::connected_components};
///
/// # fn main() -> Result<(), qdn_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b)?;
/// let comps = connected_components(&g);
/// assert_eq!(comps.len(), 2);
/// assert_eq!(comps[0], vec![a, b]);
/// assert_eq!(comps[1], vec![c]);
/// # Ok(())
/// # }
/// ```
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut uf = UnionFind::new(n);
    for (_, u, v) in graph.edges() {
        uf.union(u.index(), v.index());
    }
    let mut by_root: std::collections::BTreeMap<usize, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for v in graph.node_ids() {
        by_root.entry(uf.find(v.index())).or_default().push(v);
    }
    let mut comps: Vec<Vec<NodeId>> = by_root.into_values().collect();
    comps.sort_by_key(|c| c[0]);
    comps
}

/// Returns `true` if `graph` has at most one connected component.
///
/// The empty graph is considered connected.
pub fn is_connected(graph: &Graph) -> bool {
    connected_components(graph).len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.component_count(), 2);
        assert!(uf.connected(1, 2));
        assert!(!uf.connected(1, 4));
    }

    #[test]
    fn union_find_idempotent() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn path_compression_keeps_correctness() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        for i in 0..100 {
            assert!(uf.connected(0, i));
        }
    }

    #[test]
    fn components_of_empty_graph() {
        let g = Graph::new();
        assert!(connected_components(&g).is_empty());
        assert!(is_connected(&g));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(c, d).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![a, b], vec![c, d]]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn single_component_detected() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).len(), 1);
    }

    #[test]
    fn isolated_nodes_are_own_components() {
        let mut g = Graph::new();
        g.add_node();
        g.add_node();
        assert_eq!(connected_components(&g).len(), 2);
    }
}
