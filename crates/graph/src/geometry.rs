//! 2-D geometry for geometric random graphs.
//!
//! The paper's evaluation places quantum nodes uniformly at random in a
//! `100 × 100` unit square (§V-A-1) and connects them with the Waxman
//! model, whose edge probability depends on Euclidean distance. This module
//! provides the [`Point`] type and sampling helpers used by
//! [`crate::waxman`].

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A point in the 2-D plane.
///
/// # Example
///
/// ```
/// use qdn_graph::geometry::Point;
///
/// let origin = Point::new(0.0, 0.0);
/// let p = Point::new(3.0, 4.0);
/// assert_eq!(origin.distance(p), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx.hypot(dy)
    }

    /// Squared Euclidean distance to `other` (avoids the square root).
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// Samples `n` points uniformly at random in the `side × side` square.
///
/// The paper uses `side = 100`.
///
/// # Example
///
/// ```
/// use qdn_graph::geometry::sample_uniform_square;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pts = sample_uniform_square(&mut rng, 20, 100.0);
/// assert_eq!(pts.len(), 20);
/// assert!(pts.iter().all(|p| (0.0..=100.0).contains(&p.x)));
/// ```
pub fn sample_uniform_square<R: Rng + ?Sized>(rng: &mut R, n: usize, side: f64) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.random_range(0.0..=side), rng.random_range(0.0..=side)))
        .collect()
}

/// Maximum pairwise distance among `points` (`d_max` in the Waxman model).
///
/// Returns 0 when fewer than two points are given.
pub fn max_pairwise_distance(points: &[Point]) -> f64 {
    let mut dmax: f64 = 0.0;
    for (i, a) in points.iter().enumerate() {
        for b in &points[i + 1..] {
            dmax = dmax.max(a.distance(*b));
        }
    }
    dmax
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.5);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_squared_consistent() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance_squared(b) - 25.0).abs() < 1e-12);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let pts = sample_uniform_square(&mut rng, 200, 100.0);
        assert_eq!(pts.len(), 200);
        for p in pts {
            assert!((0.0..=100.0).contains(&p.x));
            assert!((0.0..=100.0).contains(&p.y));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        assert_eq!(
            sample_uniform_square(&mut r1, 10, 50.0),
            sample_uniform_square(&mut r2, 10, 50.0)
        );
    }

    #[test]
    fn max_pairwise_distance_examples() {
        assert_eq!(max_pairwise_distance(&[]), 0.0);
        assert_eq!(max_pairwise_distance(&[Point::new(1.0, 1.0)]), 0.0);
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 2.0),
        ];
        let d = max_pairwise_distance(&pts);
        assert!((d - (1.0f64 + 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn display_point() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1.00, 2.50)");
    }
}
