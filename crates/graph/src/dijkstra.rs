//! Weighted shortest paths with node/edge filtering.
//!
//! Used to pre-compute candidate route sets (the paper suggests "any
//! established shortest path finding algorithm, such as Dijkstra's
//! Algorithm", §III-C) and as the inner search of Yen's algorithm in
//! [`crate::ksp`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::Path;

/// A heap entry ordered by ascending distance (min-heap via reversed cmp).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the smallest distance.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Restrictions applied during a filtered shortest-path search.
///
/// Yen's algorithm removes "spur" edges and root-path nodes; this type
/// carries those removals without mutating the graph.
#[derive(Debug, Clone, Default)]
pub struct SearchFilter {
    banned_nodes: HashSet<NodeId>,
    banned_edges: HashSet<EdgeId>,
}

impl SearchFilter {
    /// An empty filter: nothing banned.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bans a node (it will never be visited).
    pub fn ban_node(&mut self, node: NodeId) -> &mut Self {
        self.banned_nodes.insert(node);
        self
    }

    /// Bans an edge (it will never be traversed).
    pub fn ban_edge(&mut self, edge: EdgeId) -> &mut Self {
        self.banned_edges.insert(edge);
        self
    }

    /// Returns `true` if `node` is banned.
    pub fn node_banned(&self, node: NodeId) -> bool {
        self.banned_nodes.contains(&node)
    }

    /// Returns `true` if `edge` is banned.
    pub fn edge_banned(&self, edge: EdgeId) -> bool {
        self.banned_edges.contains(&edge)
    }
}

/// Computes the minimum-weight path from `src` to `dst` under `weight`,
/// ignoring anything banned by `filter`.
///
/// Returns `None` when `dst` is unreachable (or either endpoint is banned
/// or out of bounds). Edge weights must be non-negative; this is the
/// caller's responsibility (hop counts and physical lengths always are).
///
/// # Example
///
/// ```
/// use qdn_graph::{Graph, dijkstra::{shortest_path_filtered, SearchFilter}, paths::hop_weight};
///
/// # fn main() -> Result<(), qdn_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// let ab = g.add_edge(a, b)?;
/// g.add_edge(b, c)?;
/// g.add_edge(a, c)?;
///
/// let direct = shortest_path_filtered(&g, a, c, &hop_weight, &SearchFilter::new()).unwrap();
/// assert_eq!(direct.hops(), 1);
///
/// let mut filter = SearchFilter::new();
/// filter.ban_edge(g.edge_between(a, c).unwrap());
/// let detour = shortest_path_filtered(&g, a, c, &hop_weight, &filter).unwrap();
/// assert_eq!(detour.hops(), 2);
/// assert!(detour.edges().contains(&ab));
/// # Ok(())
/// # }
/// ```
pub fn shortest_path_filtered<F>(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    weight: &F,
    filter: &SearchFilter,
) -> Option<Path>
where
    F: Fn(EdgeId) -> f64,
{
    graph.check_node(src).ok()?;
    graph.check_node(dst).ok()?;
    if filter.node_banned(src) || filter.node_banned(dst) {
        return None;
    }
    if src == dst {
        return Path::trivial(graph, src).ok();
    }

    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });

    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        if node == dst {
            break;
        }
        for (next, edge) in graph.neighbors(node) {
            if settled[next.index()] || filter.node_banned(next) || filter.edge_banned(edge) {
                continue;
            }
            let w = weight(edge);
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let nd = d + w;
            if nd < dist[next.index()] {
                dist[next.index()] = nd;
                prev[next.index()] = Some((node, edge));
                heap.push(HeapEntry {
                    dist: nd,
                    node: next,
                });
            }
        }
    }

    if !dist[dst.index()].is_finite() {
        return None;
    }

    // Reconstruct backwards.
    let mut nodes = vec![dst];
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, e) = prev[cur.index()].expect("finite distance implies predecessor");
        nodes.push(p);
        edges.push(e);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    Some(Path::new(graph, nodes, edges).expect("Dijkstra builds valid paths"))
}

/// Convenience wrapper: unfiltered shortest path.
///
/// See [`shortest_path_filtered`] for details and an example.
pub fn shortest_path<F>(graph: &Graph, src: NodeId, dst: NodeId, weight: &F) -> Option<Path>
where
    F: Fn(EdgeId) -> f64,
{
    shortest_path_filtered(graph, src, dst, weight, &SearchFilter::new())
}

/// Single-source distances (in `weight` units) from `src` to every node.
///
/// Unreachable nodes get `f64::INFINITY`. Returns an empty vector if `src`
/// is out of bounds.
pub fn distances_from<F>(graph: &Graph, src: NodeId, weight: &F) -> Vec<f64>
where
    F: Fn(EdgeId) -> f64,
{
    distances_from_filtered(graph, src, weight, &SearchFilter::new())
}

/// Single-source distances ignoring anything banned by `filter`.
///
/// Banned nodes (including a banned `src`) and nodes only reachable
/// through banned edges get `f64::INFINITY`. Used by the incremental
/// candidate maintainer ([`crate::maintain`]) to bound the best possible
/// path through a restored edge without re-running Yen.
pub fn distances_from_filtered<F>(
    graph: &Graph,
    src: NodeId,
    weight: &F,
    filter: &SearchFilter,
) -> Vec<f64>
where
    F: Fn(EdgeId) -> f64,
{
    if graph.check_node(src).is_err() {
        return Vec::new();
    }
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    if filter.node_banned(src) {
        return dist;
    }
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        for (next, edge) in graph.neighbors(node) {
            if settled[next.index()] || filter.node_banned(next) || filter.edge_banned(edge) {
                continue;
            }
            let nd = d + weight(edge);
            if nd < dist[next.index()] {
                dist[next.index()] = nd;
                heap.push(HeapEntry {
                    dist: nd,
                    node: next,
                });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::hop_weight;

    /// Builds the weighted graph:
    ///
    /// ```text
    ///     a --1-- b --1-- d
    ///      \              /
    ///       --- 1.5 c 1 --
    /// ```
    fn weighted() -> (Graph, [NodeId; 4], impl Fn(EdgeId) -> f64) {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        let ab = g.add_edge(a, b).unwrap();
        let bd = g.add_edge(b, d).unwrap();
        let ac = g.add_edge(a, c).unwrap();
        let cd = g.add_edge(c, d).unwrap();
        let weights = move |e: EdgeId| -> f64 {
            if e == ab || e == bd || e == cd {
                1.0
            } else if e == ac {
                1.5
            } else {
                unreachable!()
            }
        };
        (g, [a, b, c, d], weights)
    }

    #[test]
    fn shortest_by_hops() {
        let (g, [a, _b, _c, d], _) = weighted();
        let p = shortest_path(&g, a, d, &hop_weight).unwrap();
        assert_eq!(p.hops(), 2);
        assert_eq!(p.source(), a);
        assert_eq!(p.destination(), d);
    }

    #[test]
    fn shortest_by_weight_prefers_cheaper_route() {
        let (g, [a, b, _c, d], w) = weighted();
        let p = shortest_path(&g, a, d, &w).unwrap();
        // a-b-d costs 2.0; a-c-d costs 2.5.
        assert_eq!(p.nodes(), &[a, b, d]);
    }

    #[test]
    fn banned_edge_forces_detour() {
        let (g, [a, b, c, d], w) = weighted();
        let mut f = SearchFilter::new();
        f.ban_edge(g.edge_between(a, b).unwrap());
        let p = shortest_path_filtered(&g, a, d, &w, &f).unwrap();
        assert_eq!(p.nodes(), &[a, c, d]);
        let _ = b;
    }

    #[test]
    fn banned_node_forces_detour() {
        let (g, [a, b, c, d], w) = weighted();
        let mut f = SearchFilter::new();
        f.ban_node(b);
        let p = shortest_path_filtered(&g, a, d, &w, &f).unwrap();
        assert_eq!(p.nodes(), &[a, c, d]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert!(shortest_path(&g, a, b, &hop_weight).is_none());
    }

    #[test]
    fn banned_endpoint_returns_none() {
        let (g, [a, _b, _c, d], w) = weighted();
        let mut f = SearchFilter::new();
        f.ban_node(a);
        assert!(shortest_path_filtered(&g, a, d, &w, &f).is_none());
    }

    #[test]
    fn same_node_gives_trivial_path() {
        let (g, [a, ..], w) = weighted();
        let p = shortest_path(&g, a, a, &w).unwrap();
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn out_of_bounds_returns_none() {
        let (g, [a, ..], w) = weighted();
        assert!(shortest_path(&g, a, NodeId(99), &w).is_none());
    }

    #[test]
    fn distances_from_source() {
        let (g, [a, b, c, d], w) = weighted();
        let dist = distances_from(&g, a, &w);
        assert_eq!(dist[a.index()], 0.0);
        assert_eq!(dist[b.index()], 1.0);
        assert_eq!(dist[c.index()], 1.5);
        assert_eq!(dist[d.index()], 2.0);
    }

    #[test]
    fn distances_unreachable_infinite() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let dist = distances_from(&g, a, &hop_weight);
        assert!(dist[b.index()].is_infinite());
    }

    #[test]
    fn filtered_distances_respect_bans() {
        let (g, [a, b, c, d], w) = weighted();
        let mut f = SearchFilter::new();
        f.ban_edge(g.edge_between(a, b).unwrap());
        let dist = distances_from_filtered(&g, a, &w, &f);
        assert_eq!(dist[a.index()], 0.0);
        assert_eq!(dist[b.index()], 3.5); // a-c-d-b instead of a-b
        assert_eq!(dist[c.index()], 1.5);
        assert_eq!(dist[d.index()], 2.5);

        let mut f = SearchFilter::new();
        f.ban_node(b);
        let dist = distances_from_filtered(&g, a, &w, &f);
        assert!(dist[b.index()].is_infinite());
        assert_eq!(dist[d.index()], 2.5);

        let mut f = SearchFilter::new();
        f.ban_node(a);
        let dist = distances_from_filtered(&g, a, &w, &f);
        assert!(dist.iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn heap_entry_ordering_is_min_first() {
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: 2.0,
            node: NodeId(0),
        });
        heap.push(HeapEntry {
            dist: 1.0,
            node: NodeId(1),
        });
        heap.push(HeapEntry {
            dist: 3.0,
            node: NodeId(2),
        });
        assert_eq!(heap.pop().unwrap().dist, 1.0);
        assert_eq!(heap.pop().unwrap().dist, 2.0);
        assert_eq!(heap.pop().unwrap().dist, 3.0);
    }
}
