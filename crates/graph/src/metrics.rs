//! Topology metrics: diameter, characteristic path length, density.
//!
//! Used by the topology studies behind Fig. 6 (route lengths grow with
//! network size, which drives the success-rate decline) and by the
//! `topology_explorer` example.

use crate::dijkstra::distances_from;
use crate::graph::Graph;
use crate::paths::hop_weight;

/// Hop-count metrics of a graph, computed over all connected ordered
/// pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathMetrics {
    /// Largest finite shortest-path hop count (graph diameter).
    pub diameter: usize,
    /// Mean shortest-path hop count over connected pairs
    /// (characteristic path length).
    pub characteristic_path_length: f64,
    /// Number of ordered node pairs that are connected.
    pub connected_pairs: usize,
    /// Number of ordered node pairs that are disconnected.
    pub disconnected_pairs: usize,
}

/// Computes hop-count path metrics via one Dijkstra per node.
///
/// Runs in `O(V · (E + V log V))`; fine for the network sizes of the
/// paper's evaluation (≤ 40 nodes).
///
/// # Example
///
/// ```
/// use qdn_graph::generators::ring;
/// use qdn_graph::metrics::path_metrics;
///
/// let m = path_metrics(&ring(6));
/// assert_eq!(m.diameter, 3);
/// assert_eq!(m.disconnected_pairs, 0);
/// ```
pub fn path_metrics(graph: &Graph) -> PathMetrics {
    let mut diameter = 0usize;
    let mut total = 0.0f64;
    let mut connected = 0usize;
    let mut disconnected = 0usize;
    for src in graph.node_ids() {
        let dist = distances_from(graph, src, &hop_weight);
        for dst in graph.node_ids() {
            if src == dst {
                continue;
            }
            let d = dist[dst.index()];
            if d.is_finite() {
                connected += 1;
                total += d;
                diameter = diameter.max(d as usize);
            } else {
                disconnected += 1;
            }
        }
    }
    PathMetrics {
        diameter,
        characteristic_path_length: if connected == 0 {
            0.0
        } else {
            total / connected as f64
        },
        connected_pairs: connected,
        disconnected_pairs: disconnected,
    }
}

/// Edge density: `|E| / (|V|·(|V|−1)/2)`, in `[0, 1]`; 0 for graphs with
/// fewer than two nodes.
pub fn density(graph: &Graph) -> f64 {
    let n = graph.node_count();
    if n < 2 {
        return 0.0;
    }
    let max_edges = n * (n - 1) / 2;
    graph.edge_count() as f64 / max_edges as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, grid, line, ring, star};

    #[test]
    fn ring_metrics() {
        let m = path_metrics(&ring(8));
        assert_eq!(m.diameter, 4);
        assert_eq!(m.connected_pairs, 8 * 7);
        assert_eq!(m.disconnected_pairs, 0);
        // CPL of an even ring: sum_{d=1}^{n/2} weighted — just bounds here.
        assert!(m.characteristic_path_length > 1.0);
        assert!(m.characteristic_path_length < 4.0);
    }

    #[test]
    fn star_diameter_two() {
        let m = path_metrics(&star(6));
        assert_eq!(m.diameter, 2);
    }

    #[test]
    fn line_diameter_is_length() {
        let m = path_metrics(&line(5));
        assert_eq!(m.diameter, 4);
    }

    #[test]
    fn complete_diameter_one() {
        let m = path_metrics(&complete(5));
        assert_eq!(m.diameter, 1);
        assert_eq!(m.characteristic_path_length, 1.0);
        assert_eq!(density(&complete(5)), 1.0);
    }

    #[test]
    fn grid_metrics() {
        let m = path_metrics(&grid(3, 3));
        assert_eq!(m.diameter, 4); // corner to corner
        assert_eq!(m.disconnected_pairs, 0);
    }

    #[test]
    fn disconnected_pairs_counted() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_node(); // isolated
        g.add_edge(a, b).unwrap();
        let m = path_metrics(&g);
        assert_eq!(m.connected_pairs, 2);
        assert_eq!(m.disconnected_pairs, 4);
    }

    #[test]
    fn density_bounds() {
        assert_eq!(density(&Graph::new()), 0.0);
        assert!(density(&ring(6)) < 1.0);
        assert!(density(&ring(6)) > 0.0);
    }

    use crate::graph::Graph;
}
