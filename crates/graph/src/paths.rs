//! Validated routes and hop-bounded simple-path enumeration.
//!
//! A route `r ∈ R(φ)` in the paper is "a subset of graph edges that form a
//! connected route between the source node and the destination node"
//! (§III-C). [`Path`] stores both the node sequence and the edge sequence
//! and guarantees the two are mutually consistent with respect to a graph.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, Graph, GraphError, NodeId};

/// A simple path through a [`Graph`]: a node sequence plus the edges that
/// connect consecutive nodes.
///
/// Invariants (enforced by [`Path::new`]):
/// * `nodes.len() == edges.len() + 1`,
/// * `edges[i]` connects `nodes[i]` and `nodes[i+1]` in the graph,
/// * no node repeats (the path is simple/loopless).
///
/// # Example
///
/// ```
/// use qdn_graph::{Graph, Path};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// let ab = g.add_edge(a, b)?;
/// let bc = g.add_edge(b, c)?;
/// let p = Path::new(&g, vec![a, b, c], vec![ab, bc])?;
/// assert_eq!(p.hops(), 2);
/// assert_eq!(p.source(), a);
/// assert_eq!(p.destination(), c);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

/// Error raised when constructing an invalid [`Path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The node and edge sequences have inconsistent lengths.
    LengthMismatch {
        /// Number of nodes supplied.
        nodes: usize,
        /// Number of edges supplied.
        edges: usize,
    },
    /// The path is empty (a path must contain at least one node).
    Empty,
    /// An edge does not connect its two adjacent nodes in the sequence.
    Disconnected {
        /// Position of the offending edge in the edge sequence.
        position: usize,
    },
    /// A node appears more than once (the path would contain a loop).
    RepeatedNode {
        /// The repeated node.
        node: NodeId,
    },
    /// A referenced node or edge is not in the graph.
    Graph(GraphError),
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::LengthMismatch { nodes, edges } => write!(
                f,
                "path with {nodes} nodes must have {} edges, got {edges}",
                nodes.saturating_sub(1)
            ),
            PathError::Empty => write!(f, "path must contain at least one node"),
            PathError::Disconnected { position } => {
                write!(
                    f,
                    "edge at position {position} does not connect its endpoints"
                )
            }
            PathError::RepeatedNode { node } => {
                write!(f, "node {node} appears more than once in the path")
            }
            PathError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PathError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PathError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for PathError {
    fn from(e: GraphError) -> Self {
        PathError::Graph(e)
    }
}

impl Path {
    /// Creates a validated path.
    ///
    /// # Errors
    ///
    /// Returns a [`PathError`] if the sequences are inconsistent, an edge
    /// does not connect consecutive nodes, a node repeats, or any id is out
    /// of bounds for `graph`.
    pub fn new(graph: &Graph, nodes: Vec<NodeId>, edges: Vec<EdgeId>) -> Result<Self, PathError> {
        if nodes.is_empty() {
            return Err(PathError::Empty);
        }
        if nodes.len() != edges.len() + 1 {
            return Err(PathError::LengthMismatch {
                nodes: nodes.len(),
                edges: edges.len(),
            });
        }
        let mut seen = HashSet::with_capacity(nodes.len());
        for &n in &nodes {
            graph.check_node(n)?;
            if !seen.insert(n) {
                return Err(PathError::RepeatedNode { node: n });
            }
        }
        for (i, &e) in edges.iter().enumerate() {
            graph.check_edge(e)?;
            let (u, v) = graph.endpoints(e);
            let (a, b) = (nodes[i], nodes[i + 1]);
            if !((u == a && v == b) || (u == b && v == a)) {
                return Err(PathError::Disconnected { position: i });
            }
        }
        Ok(Path { nodes, edges })
    }

    /// Builds a path from a node sequence, looking up the connecting edges.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::Disconnected`] if two consecutive nodes are not
    /// adjacent, plus any validation error from [`Path::new`].
    pub fn from_nodes(graph: &Graph, nodes: Vec<NodeId>) -> Result<Self, PathError> {
        if nodes.is_empty() {
            return Err(PathError::Empty);
        }
        let mut edges = Vec::with_capacity(nodes.len().saturating_sub(1));
        for (i, w) in nodes.windows(2).enumerate() {
            let e = graph
                .edge_between(w[0], w[1])
                .ok_or(PathError::Disconnected { position: i })?;
            edges.push(e);
        }
        Path::new(graph, nodes, edges)
    }

    /// A single-node path (source equals destination, zero hops).
    ///
    /// # Errors
    ///
    /// Returns an error if `node` is not in `graph`.
    pub fn trivial(graph: &Graph, node: NodeId) -> Result<Self, PathError> {
        graph.check_node(node)?;
        Ok(Path {
            nodes: vec![node],
            edges: Vec::new(),
        })
    }

    /// The node sequence, from source to destination.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edge sequence; `edges()[i]` connects `nodes()[i]` and
    /// `nodes()[i+1]`.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of hops (edges).
    #[inline]
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// First node of the path.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node of the path.
    #[inline]
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path is never empty")
    }

    /// Returns `true` if the path visits `node`.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Returns `true` if the path uses `edge`.
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        self.edges.contains(&edge)
    }

    /// Returns `true` if this path shares at least one edge with `other`.
    pub fn shares_edge_with(&self, other: &Path) -> bool {
        self.edges.iter().any(|e| other.edges.contains(e))
    }

    /// Returns `true` if this path shares at least one node with `other`.
    pub fn shares_node_with(&self, other: &Path) -> bool {
        self.nodes.iter().any(|n| other.nodes.contains(n))
    }

    /// Total weight of the path under `weight`.
    pub fn weight<F>(&self, weight: F) -> f64
    where
        F: Fn(EdgeId) -> f64,
    {
        self.edges.iter().map(|&e| weight(e)).sum()
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for n in &self.nodes {
            if !first {
                write!(f, " - ")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        Ok(())
    }
}

/// Unit edge weight: every edge costs 1 hop.
///
/// Pass to the path-finding functions to search by hop count, which is how
/// the paper pre-computes candidate routes ("choosing routes with shorter
/// lengths/hops", §III-C).
pub fn hop_weight(_: EdgeId) -> f64 {
    1.0
}

/// Enumerates all simple paths from `src` to `dst` with at most `max_hops`
/// edges, in depth-first order.
///
/// This is exponential in general; it is intended for candidate-route
/// generation on sparse topologies with a small `max_hops` bound (the
/// paper's `L`), and for cross-checking Yen's algorithm in tests.
///
/// # Example
///
/// ```
/// use qdn_graph::{Graph, paths::all_simple_paths};
///
/// # fn main() -> Result<(), qdn_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b)?;
/// g.add_edge(b, c)?;
/// g.add_edge(a, c)?;
/// let paths = all_simple_paths(&g, a, c, 2);
/// assert_eq!(paths.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn all_simple_paths(graph: &Graph, src: NodeId, dst: NodeId, max_hops: usize) -> Vec<Path> {
    let mut result = Vec::new();
    if graph.check_node(src).is_err() || graph.check_node(dst).is_err() {
        return result;
    }
    if src == dst {
        if let Ok(p) = Path::trivial(graph, src) {
            result.push(p);
        }
        return result;
    }
    let mut node_stack = vec![src];
    let mut edge_stack: Vec<EdgeId> = Vec::new();
    let mut on_path: HashSet<NodeId> = HashSet::from([src]);
    dfs(
        graph,
        dst,
        max_hops,
        &mut node_stack,
        &mut edge_stack,
        &mut on_path,
        &mut result,
    );
    result
}

fn dfs(
    graph: &Graph,
    dst: NodeId,
    max_hops: usize,
    node_stack: &mut Vec<NodeId>,
    edge_stack: &mut Vec<EdgeId>,
    on_path: &mut HashSet<NodeId>,
    result: &mut Vec<Path>,
) {
    let current = *node_stack.last().expect("stack starts non-empty");
    if edge_stack.len() >= max_hops {
        return;
    }
    let neighbors: Vec<(NodeId, EdgeId)> = graph.neighbors(current).collect();
    for (next, edge) in neighbors {
        if on_path.contains(&next) {
            continue;
        }
        node_stack.push(next);
        edge_stack.push(edge);
        if next == dst {
            result.push(
                Path::new(graph, node_stack.clone(), edge_stack.clone())
                    .expect("DFS builds valid paths"),
            );
        } else {
            on_path.insert(next);
            dfs(
                graph, dst, max_hops, node_stack, edge_stack, on_path, result,
            );
            on_path.remove(&next);
        }
        node_stack.pop();
        edge_stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, [NodeId; 4]) {
        // a - b - d
        //  \- c -/
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn path_new_validates_connectivity() {
        let (g, [a, b, c, d]) = diamond();
        let ab = g.edge_between(a, b).unwrap();
        let cd = g.edge_between(c, d).unwrap();
        let err = Path::new(&g, vec![a, b, d], vec![ab, cd]).unwrap_err();
        assert_eq!(err, PathError::Disconnected { position: 1 });
    }

    #[test]
    fn path_new_rejects_length_mismatch() {
        let (g, [a, b, ..]) = diamond();
        let ab = g.edge_between(a, b).unwrap();
        assert!(matches!(
            Path::new(&g, vec![a, b], vec![ab, ab]),
            Err(PathError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn path_new_rejects_repeats() {
        let (g, [a, b, ..]) = diamond();
        let ab = g.edge_between(a, b).unwrap();
        assert_eq!(
            Path::new(&g, vec![a, b, a], vec![ab, ab]),
            Err(PathError::RepeatedNode { node: a })
        );
    }

    #[test]
    fn path_new_rejects_empty() {
        let (g, _) = diamond();
        assert_eq!(Path::new(&g, vec![], vec![]), Err(PathError::Empty));
    }

    #[test]
    fn from_nodes_looks_up_edges() {
        let (g, [a, b, _c, d]) = diamond();
        let p = Path::from_nodes(&g, vec![a, b, d]).unwrap();
        assert_eq!(p.hops(), 2);
        assert_eq!(p.source(), a);
        assert_eq!(p.destination(), d);
    }

    #[test]
    fn from_nodes_fails_for_non_adjacent() {
        let (g, [a, _b, _c, d]) = diamond();
        assert_eq!(
            Path::from_nodes(&g, vec![a, d]),
            Err(PathError::Disconnected { position: 0 })
        );
    }

    #[test]
    fn trivial_path() {
        let (g, [a, ..]) = diamond();
        let p = Path::trivial(&g, a).unwrap();
        assert_eq!(p.hops(), 0);
        assert_eq!(p.source(), p.destination());
    }

    #[test]
    fn sharing_predicates() {
        let (g, [a, b, c, d]) = diamond();
        let top = Path::from_nodes(&g, vec![a, b, d]).unwrap();
        let bottom = Path::from_nodes(&g, vec![a, c, d]).unwrap();
        assert!(!top.shares_edge_with(&bottom));
        assert!(top.shares_node_with(&bottom)); // share a and d
        assert!(top.shares_edge_with(&top));
    }

    #[test]
    fn weight_sums_edges() {
        let (g, [a, b, _c, d]) = diamond();
        let p = Path::from_nodes(&g, vec![a, b, d]).unwrap();
        assert_eq!(p.weight(hop_weight), 2.0);
        assert_eq!(p.weight(|e| (e.index() + 1) as f64), {
            let e0 = p.edges()[0].index() as f64 + 1.0;
            let e1 = p.edges()[1].index() as f64 + 1.0;
            e0 + e1
        });
    }

    #[test]
    fn all_simple_paths_diamond() {
        let (g, [a, _b, _c, d]) = diamond();
        let paths = all_simple_paths(&g, a, d, 4);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.source(), a);
            assert_eq!(p.destination(), d);
            assert_eq!(p.hops(), 2);
        }
    }

    #[test]
    fn all_simple_paths_respects_hop_bound() {
        let (g, [a, _b, _c, d]) = diamond();
        assert_eq!(all_simple_paths(&g, a, d, 1).len(), 0);
        assert_eq!(all_simple_paths(&g, a, d, 2).len(), 2);
    }

    #[test]
    fn all_simple_paths_same_node() {
        let (g, [a, ..]) = diamond();
        let paths = all_simple_paths(&g, a, a, 3);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops(), 0);
    }

    #[test]
    fn all_simple_paths_out_of_bounds_is_empty() {
        let (g, [a, ..]) = diamond();
        assert!(all_simple_paths(&g, a, NodeId(99), 3).is_empty());
    }

    #[test]
    fn display_path() {
        let (g, [a, b, _c, d]) = diamond();
        let p = Path::from_nodes(&g, vec![a, b, d]).unwrap();
        assert_eq!(p.to_string(), "v0 - v1 - v3");
    }
}
