//! Property-based tests for the discrete-event substrate.

use std::time::Duration;

use proptest::prelude::*;
use qdn_des::exec::{execute_route, EdgeTask, ExecutionConfig};
use qdn_des::queue::EventQueue;
use qdn_des::sampler::AttemptProcess;
use qdn_des::time::SimTime;
use qdn_des::{attempt_probability, LatencySummary};
use qdn_graph::EdgeId;
use rand::SeedableRng;

proptest! {
    /// Events always come out of the queue in non-decreasing time order.
    #[test]
    fn queue_is_time_ordered(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut prev = SimTime::ZERO;
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= prev);
            prev = e.time;
        }
    }

    /// Equal-time events preserve insertion order (determinism).
    #[test]
    fn queue_ties_are_fifo(n in 2usize..100) {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(42);
        for i in 0..n {
            q.schedule(t, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// `attempt_probability` inverts the paper's per-slot composition
    /// wherever the per-slot probability is representable. Once `p_slot`
    /// saturates toward 1 the round trip necessarily loses information
    /// `f64` cannot hold, so the property is parameterized by the window
    /// exponent `λ = −A·ln(1 − p̃)` (giving `p_slot = 1 − e^{−λ}`) capped
    /// at 15 — i.e. `1 − p_slot ≥ 3e-7` — which covers every regime the
    /// simulator meets (the paper's operating point is λ ≈ 0.8).
    #[test]
    fn attempt_probability_inverts_composition(
        exponent in 1e-4f64..15.0,
        rounds in 1u64..10_000,
    ) {
        let p_attempt = -(-exponent / rounds as f64).exp_m1();
        let p_slot = -(-exponent).exp_m1();
        prop_assume!(p_attempt > 0.0 && p_attempt < 1.0 && p_slot < 1.0);
        let back = attempt_probability(p_slot, rounds);
        prop_assert!(
            (back - p_attempt).abs() < 1e-6 * p_attempt,
            "p̃={p_attempt} A={rounds} p_slot={p_slot}: got {back}"
        );
    }

    /// The truncated geometric success probability equals the paper's
    /// Eq. 1 for any (p̃, n, A).
    #[test]
    fn sampler_window_probability_is_eq1(
        p_attempt in 1e-5f64..0.3,
        channels in 1u32..12,
        rounds in 1u64..8_000,
    ) {
        let proc = AttemptProcess::new(p_attempt, channels).unwrap();
        let direct = {
            let p_e = qdn_physics::prob::at_least_one(p_attempt, rounds as f64);
            qdn_physics::prob::at_least_one(p_e, channels as f64)
        };
        prop_assert!((proc.success_within(rounds) - direct).abs() < 1e-9);
    }

    /// Sampled first-success rounds are always ≥ 1, and within the window
    /// when `Some`.
    #[test]
    fn sampled_rounds_respect_window(
        p_attempt in 0.001f64..0.9,
        channels in 1u32..8,
        window in 1u64..500,
        seed in 0u64..1_000,
    ) {
        let proc = AttemptProcess::new(p_attempt, channels).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            if let Some(k) = proc.sample_within(&mut rng, window) {
                prop_assert!((1..=window).contains(&k));
            }
        }
    }

    /// Every execution outcome is internally consistent: success XOR
    /// failure metadata, link bookkeeping matches, attempts are bounded
    /// by channels × window.
    #[test]
    fn execution_outcomes_are_consistent(
        p_attempt in 0.0005f64..0.5,
        channels in 1u32..5,
        hops in 1usize..6,
        window in 10u64..2_000,
        seed in 0u64..500,
    ) {
        let cfg = ExecutionConfig::new(
            Duration::from_micros(165),
            window,
            Duration::from_secs(100), // memory long enough to isolate link logic
            Duration::ZERO,
            1.0,
        ).unwrap();
        let tasks: Vec<EdgeTask> = (0..hops)
            .map(|i| EdgeTask::new(EdgeId(i as u32), p_attempt, channels).unwrap())
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let start = SimTime::from_secs_f64(1.0);
        let out = execute_route(start, &tasks, &cfg, &mut rng);

        prop_assert_eq!(out.link_up_at.len(), hops);
        prop_assert_eq!(out.rounds_used.len(), hops);
        prop_assert_eq!(out.success, out.completed_at.is_some());
        prop_assert_eq!(out.success, out.cause.is_none());
        prop_assert_eq!(out.success, out.failed_at.is_none());
        let max_attempts = channels as u64 * window * hops as u64;
        prop_assert!(out.attempts_consumed >= hops as u64);
        prop_assert!(out.attempts_consumed <= max_attempts);
        for (up, rounds) in out.link_up_at.iter().zip(&out.rounds_used) {
            match up {
                Some(t) => {
                    prop_assert!(*t > start);
                    prop_assert!(*rounds >= 1 && *rounds <= window);
                    prop_assert_eq!(
                        t.as_nanos() - start.as_nanos(),
                        rounds * 165_000
                    );
                }
                None => prop_assert_eq!(*rounds, window),
            }
        }
        if out.success {
            // With perfect instantaneous swapping, delivery is the last
            // link-up instant.
            let last = out.link_up_at.iter().map(|t| t.unwrap()).max().unwrap();
            prop_assert_eq!(out.completed_at.unwrap(), last);
            prop_assert!(out.resolved_at() <= cfg.window_end(start));
        } else {
            prop_assert!(out.resolved_at() <= cfg.window_end(start) + cfg.decoherence);
        }
    }

    /// Latency summaries are order statistics: monotone across the
    /// percentile ladder and bounded by the sample extremes.
    #[test]
    fn latency_summary_is_monotone(
        sample in prop::collection::vec(1u64..10_000_000u64, 1..300),
    ) {
        let durations: Vec<Duration> =
            sample.iter().map(|&n| Duration::from_nanos(n)).collect();
        let s = LatencySummary::from_durations(&durations).unwrap();
        prop_assert_eq!(s.count, durations.len());
        prop_assert!(s.p50_secs <= s.p90_secs);
        prop_assert!(s.p90_secs <= s.p99_secs);
        prop_assert!(s.p99_secs <= s.max_secs);
        let min = durations.iter().min().unwrap().as_secs_f64();
        prop_assert!(s.p50_secs >= min);
        prop_assert!(s.mean_secs >= min && s.mean_secs <= s.max_secs);
    }
}
