//! Attempt-level replay of slotted routing policies.
//!
//! `qdn-sim` scores a policy's decisions with the analytic success
//! probabilities of Eq. 2 (optionally drawing one Bernoulli per request).
//! This runner executes the *same* decisions against the attempt-level
//! physics of [`crate::exec`]: every allocated channel races geometric
//! attempt processes, links must survive decoherence, swaps may fail.
//!
//! Two things come out of it:
//!
//! 1. **Model validation** — with the paper's parameters the realized
//!    success frequency must converge to the analytic rate (the workspace
//!    `des_validation` integration test asserts this), closing the loop
//!    between Eq. 1–2 and the process they abstract;
//! 2. **Quantities the analytic model cannot express** — delivery
//!    latency within the slot, attempts burned, and failure causes.

use std::time::Duration;

use qdn_core::policy::RoutingPolicy;
use qdn_core::types::{Decision, SlotState};
use qdn_net::dynamics::ResourceDynamics;
use qdn_net::workload::Workload;
use qdn_net::QdnNetwork;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::exec::{execute_route, EdgeTask, ExecutionConfig, FailureCause};
use crate::stats::LatencySummary;
use crate::time::SimTime;
use crate::{attempt_probability, DesError};

/// Configuration of a slotted attempt-level run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlottedDesConfig {
    /// Number of slots `T`.
    pub horizon: u64,
    /// Physical execution parameters (attempt window, memory, swapping).
    pub execution: ExecutionConfig,
    /// Wall-clock length of one slot; slot `t` starts at `t × slot_len`.
    pub slot_len: Duration,
}

impl SlottedDesConfig {
    /// Paper defaults: `T = 200`, 165 µs × 4000 attempt window inside a
    /// 1.46 s slot, perfect instantaneous swapping.
    pub fn paper_default() -> Self {
        let execution = ExecutionConfig::paper_default();
        SlottedDesConfig {
            horizon: 200,
            execution,
            slot_len: execution.decoherence,
        }
    }
}

impl Default for SlottedDesConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Physical record of one slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesSlotRecord {
    /// Slot index.
    pub t: u64,
    /// Slot start instant.
    pub start: SimTime,
    /// Requests issued (`|Φ_t|`).
    pub requests: usize,
    /// Requests the policy served.
    pub served: usize,
    /// Budget units spent (`c_t`).
    pub cost: u64,
    /// Analytic expectation `Σ_φ P(r(φ), N(φ))` over served requests.
    pub expected_successes: f64,
    /// End-to-end pairs actually delivered.
    pub realized_successes: usize,
    /// Delivery latencies of the successful connections (from slot
    /// start).
    pub latencies: Vec<Duration>,
    /// Individual entanglement attempts consumed across all executions.
    pub attempts_consumed: u64,
    /// Failure causes of the unsuccessful executions.
    pub failures: Vec<FailureCause>,
}

/// Aggregated metrics of an attempt-level run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesRunMetrics {
    policy: String,
    slots: Vec<DesSlotRecord>,
}

impl DesRunMetrics {
    /// The policy name this run executed.
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// Per-slot records.
    pub fn slots(&self) -> &[DesSlotRecord] {
        &self.slots
    }

    /// Total requests across the run (served or not).
    pub fn total_requests(&self) -> usize {
        self.slots.iter().map(|s| s.requests).sum()
    }

    /// Delivered end-to-end pairs across the run.
    pub fn total_delivered(&self) -> usize {
        self.slots.iter().map(|s| s.realized_successes).sum()
    }

    /// Total budget units spent.
    pub fn total_cost(&self) -> u64 {
        self.slots.iter().map(|s| s.cost).sum()
    }

    /// Total attempts burned.
    pub fn total_attempts(&self) -> u64 {
        self.slots.iter().map(|s| s.attempts_consumed).sum()
    }

    /// Realized success rate: delivered / requested (unserved requests
    /// count as failures, mirroring `qdn-sim`'s convention).
    pub fn realized_success_rate(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            return 0.0;
        }
        self.total_delivered() as f64 / total as f64
    }

    /// The analytic success rate of the same decisions (Eq. 2 averaged
    /// over all requests).
    pub fn expected_success_rate(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            return 0.0;
        }
        let expected: f64 = self.slots.iter().map(|s| s.expected_successes).sum();
        expected / total as f64
    }

    /// Absolute gap between realized and analytic success rates — the
    /// model-validation number (≈ 0 at the paper's parameters).
    pub fn model_gap(&self) -> f64 {
        (self.realized_success_rate() - self.expected_success_rate()).abs()
    }

    /// Latency summary over every delivered connection.
    pub fn latency_summary(&self) -> Option<LatencySummary> {
        let all: Vec<Duration> = self
            .slots
            .iter()
            .flat_map(|s| s.latencies.iter().copied())
            .collect();
        LatencySummary::from_durations(&all)
    }

    /// Failure-cause histogram: `(window-expired, decohered, swap-failed)`.
    pub fn failure_histogram(&self) -> (usize, usize, usize) {
        let mut h = (0, 0, 0);
        for s in &self.slots {
            for f in &s.failures {
                match f {
                    FailureCause::LinkWindowExpired { .. } => h.0 += 1,
                    FailureCause::LinkDecohered { .. } => h.1 += 1,
                    FailureCause::SwapFailed { .. } => h.2 += 1,
                }
            }
        }
        h
    }
}

/// Builds the edge tasks of one assignment, translating each edge's
/// per-slot success into a per-attempt probability.
///
/// # Errors
///
/// Propagates parameter validation errors ([`EdgeTask::new`] rejects a
/// zero channel count, which [`qdn_core::types::RouteAssignment`] already
/// makes impossible).
pub fn assignment_tasks(
    network: &QdnNetwork,
    assignment: &qdn_core::types::RouteAssignment,
    execution: &ExecutionConfig,
) -> Result<Vec<EdgeTask>, DesError> {
    assignment
        .route
        .edges()
        .iter()
        .zip(&assignment.allocation)
        .map(|(&edge, &n)| {
            let p_slot = network.link(edge).channel_success();
            EdgeTask::new(edge, attempt_probability(p_slot, execution.max_rounds), n)
        })
        .collect()
}

/// Runs one policy over one sample path, realizing every decision at the
/// attempt level.
///
/// RNG discipline mirrors `qdn_sim::engine::run`: `env_rng` drives the
/// workload, resource dynamics, and physical realization; `policy_rng`
/// drives the policy's internal randomization. Policies therefore see
/// identical request sequences across compared runs with equal seeds.
///
/// # Panics
///
/// Panics if a policy's assignment cannot be translated into edge tasks
/// (impossible for well-formed [`qdn_core::types::RouteAssignment`]s).
pub fn run_slotted(
    network: &QdnNetwork,
    workload: &mut dyn Workload,
    dynamics: &mut dyn ResourceDynamics,
    policy: &mut dyn RoutingPolicy,
    config: &SlottedDesConfig,
    env_rng: &mut dyn Rng,
    policy_rng: &mut dyn Rng,
) -> DesRunMetrics {
    let mut slots = Vec::with_capacity(config.horizon as usize);
    for t in 0..config.horizon {
        let start = SimTime::ZERO + config.slot_len * t as u32;
        let requests = workload.requests(t, network, env_rng);
        let snapshot = dynamics.snapshot(t, network, env_rng);
        let slot = SlotState::new(t, requests.clone(), snapshot);
        let decision: Decision = policy.decide(network, &slot, policy_rng);

        let mut expected = 0.0;
        let mut realized = 0usize;
        let mut latencies = Vec::new();
        let mut attempts = 0u64;
        let mut failures = Vec::new();
        for assignment in decision.assignments() {
            expected += assignment.success_probability(network);
            let tasks = assignment_tasks(network, assignment, &config.execution)
                .expect("assignments are validated at construction");
            let outcome = execute_route(start, &tasks, &config.execution, env_rng);
            attempts += outcome.attempts_consumed;
            if outcome.success {
                realized += 1;
                latencies.push(
                    outcome
                        .latency(start)
                        .expect("successful outcomes have a latency"),
                );
            } else {
                failures.push(outcome.cause.expect("failed outcomes carry a cause"));
            }
        }

        slots.push(DesSlotRecord {
            t,
            start,
            requests: requests.len(),
            served: decision.assignments().len(),
            cost: decision.total_cost(),
            expected_successes: expected,
            realized_successes: realized,
            latencies,
            attempts_consumed: attempts,
            failures,
        });
    }
    DesRunMetrics {
        policy: policy.name(),
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_core::oscar::{OscarConfig, OscarPolicy};
    use qdn_net::dynamics::StaticDynamics;
    use qdn_net::workload::UniformWorkload;
    use qdn_net::NetworkConfig;
    use rand::SeedableRng;

    fn run_oscar(horizon: u64, seed: u64) -> DesRunMetrics {
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xdead);
        let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
        let mut wl = UniformWorkload::paper_default();
        let mut dyn_ = StaticDynamics;
        let mut policy = OscarPolicy::new(OscarConfig::paper_default());
        let config = SlottedDesConfig {
            horizon,
            ..SlottedDesConfig::paper_default()
        };
        run_slotted(
            &net,
            &mut wl,
            &mut dyn_,
            &mut policy,
            &config,
            &mut env_rng,
            &mut policy_rng,
        )
    }

    #[test]
    fn records_every_slot_with_consistent_counts() {
        let m = run_oscar(12, 3);
        assert_eq!(m.policy(), "OSCAR");
        assert_eq!(m.slots().len(), 12);
        for s in m.slots() {
            assert!(s.served <= s.requests);
            assert_eq!(
                s.realized_successes + s.failures.len(),
                s.served,
                "every served request delivers or fails"
            );
            assert_eq!(s.latencies.len(), s.realized_successes);
            assert!(s.expected_successes <= s.served as f64 + 1e-12);
            assert_eq!(
                s.start,
                SimTime::ZERO + Duration::from_millis(1460) * s.t as u32
            );
        }
    }

    #[test]
    fn latencies_fit_inside_the_attempt_window() {
        let m = run_oscar(10, 5);
        let window = Duration::from_micros(165) * 4000;
        for s in m.slots() {
            for &l in &s.latencies {
                assert!(l >= Duration::from_micros(165));
                assert!(l <= window, "latency {l:?} outside window {window:?}");
            }
        }
    }

    #[test]
    fn realized_rate_tracks_analytic_rate() {
        // 60 slots ≈ 180 requests: 4σ ≈ 0.15 on the success frequency.
        let m = run_oscar(60, 7);
        assert!(m.total_requests() > 50);
        assert!(
            m.model_gap() < 0.15,
            "realized {:.3} vs analytic {:.3}",
            m.realized_success_rate(),
            m.expected_success_rate()
        );
    }

    #[test]
    fn attempts_are_positive_and_bounded() {
        let m = run_oscar(5, 11);
        assert!(m.total_attempts() > 0);
        for s in m.slots() {
            // Each execution burns at most channels × window attempts;
            // cost = total channels, so the bound is cost × window.
            assert!(s.attempts_consumed <= s.cost * 4000);
        }
    }

    #[test]
    fn deterministic_under_fixed_seeds() {
        let a = run_oscar(8, 13);
        let b = run_oscar(8, 13);
        assert_eq!(a, b);
    }

    #[test]
    fn no_decoherence_or_swap_failures_at_paper_defaults() {
        let m = run_oscar(30, 17);
        let (window, decohered, swap) = m.failure_histogram();
        assert_eq!(decohered, 0, "paper window cannot decohere");
        assert_eq!(swap, 0, "paper swapping is perfect");
        // Window failures are the only physical failure mode.
        let failed: usize = m.slots().iter().map(|s| s.failures.len()).sum();
        assert_eq!(window, failed);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = DesRunMetrics {
            policy: "noop".into(),
            slots: Vec::new(),
        };
        assert_eq!(m.realized_success_rate(), 0.0);
        assert_eq!(m.expected_success_rate(), 0.0);
        assert!(m.latency_summary().is_none());
    }
}
