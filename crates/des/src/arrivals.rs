//! Request arrival processes in continuous time.
//!
//! The paper's related work motivates processing EC requests "upon
//! arrival" (online entanglement routing) instead of batching them into
//! slots. [`PoissonArrivals`] is the canonical memoryless arrival model:
//! exponential inter-arrival times at a configurable rate, each arrival
//! carrying a uniformly random SD pair. The slotted workload's
//! `U[1, 5]` pairs per 1.46 s slot corresponds to a mean rate of
//! 3 / 1.46 ≈ 2.05 requests/s, which [`PoissonArrivals::paper_rate`]
//! mirrors so online-vs-slotted comparisons carry equal load.

use std::time::Duration;

use qdn_net::workload::random_sd_pair;
use qdn_net::{QdnNetwork, SdPair};
use rand::{Rng, RngExt};

use crate::time::SimTime;
use crate::DesError;

/// A continuous-time source of EC requests.
pub trait ArrivalProcess: std::fmt::Debug + Send {
    /// The next arrival strictly after `now`, or `None` when the process
    /// has run dry (e.g. past its horizon).
    fn next_arrival(
        &mut self,
        now: SimTime,
        network: &QdnNetwork,
        rng: &mut dyn Rng,
    ) -> Option<(SimTime, SdPair)>;
}

/// Poisson arrivals: exponential inter-arrival times with mean `1/rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
    horizon: SimTime,
}

impl PoissonArrivals {
    /// Creates a Poisson arrival process that stops issuing requests
    /// after `horizon` of simulated time.
    ///
    /// # Errors
    ///
    /// Returns [`DesError::InvalidParameter`] unless `rate_per_sec` is
    /// positive and finite.
    pub fn new(rate_per_sec: f64, horizon: Duration) -> Result<Self, DesError> {
        if !(rate_per_sec > 0.0 && rate_per_sec.is_finite()) {
            return Err(DesError::InvalidParameter {
                name: "rate_per_sec",
                reason: "arrival rate must be positive and finite",
            });
        }
        Ok(PoissonArrivals {
            rate_per_sec,
            horizon: SimTime::ZERO + horizon,
        })
    }

    /// The arrival rate matching the paper's slotted workload: an average
    /// of 3 requests per 1.46 s slot.
    pub fn paper_rate() -> f64 {
        3.0 / 1.46
    }

    /// Requests per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// The instant after which no more requests arrive.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_arrival(
        &mut self,
        now: SimTime,
        network: &QdnNetwork,
        rng: &mut dyn Rng,
    ) -> Option<(SimTime, SdPair)> {
        let u: f64 = rng.random();
        // Exponential inversion; ln_1p for stability near u = 0.
        let dt_secs = -(-u).ln_1p() / self.rate_per_sec;
        let at = now + Duration::from_secs_f64(dt_secs.max(1e-12));
        if at > self.horizon {
            return None;
        }
        Some((at, random_sd_pair(rng, network)))
    }
}

/// Replays a fixed list of timed requests (for tests and trace-driven
/// experiments). Arrivals must be provided in non-decreasing time order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArrivals {
    trace: Vec<(SimTime, SdPair)>,
    cursor: usize,
}

impl TraceArrivals {
    /// Creates the replay process.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time.
    pub fn new(trace: Vec<(SimTime, SdPair)>) -> Self {
        assert!(
            trace.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace arrivals must be time-ordered"
        );
        TraceArrivals { trace, cursor: 0 }
    }

    /// Number of requests not yet replayed.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.cursor
    }
}

impl ArrivalProcess for TraceArrivals {
    fn next_arrival(
        &mut self,
        _now: SimTime,
        _network: &QdnNetwork,
        _rng: &mut dyn Rng,
    ) -> Option<(SimTime, SdPair)> {
        let item = self.trace.get(self.cursor).copied();
        if item.is_some() {
            self.cursor += 1;
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_net::NetworkConfig;
    use rand::SeedableRng;

    fn setup() -> (QdnNetwork, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
        (net, rng)
    }

    #[test]
    fn new_validates_rate() {
        assert!(PoissonArrivals::new(0.0, Duration::from_secs(1)).is_err());
        assert!(PoissonArrivals::new(-2.0, Duration::from_secs(1)).is_err());
        assert!(PoissonArrivals::new(f64::INFINITY, Duration::from_secs(1)).is_err());
        assert!(PoissonArrivals::new(2.0, Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_bounded() {
        let (net, mut rng) = setup();
        let mut p = PoissonArrivals::new(50.0, Duration::from_secs(2)).unwrap();
        let mut now = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, pair)) = p.next_arrival(now, &net, &mut rng) {
            assert!(at > now);
            assert!(at <= p.horizon());
            assert_ne!(pair.source(), pair.destination());
            now = at;
            count += 1;
        }
        // ~100 expected; allow wide slack.
        assert!((50..200).contains(&count), "got {count} arrivals");
    }

    #[test]
    fn empirical_rate_close_to_nominal() {
        let (net, mut rng) = setup();
        let rate = 100.0;
        let horizon = Duration::from_secs(20);
        let mut p = PoissonArrivals::new(rate, horizon).unwrap();
        let mut now = SimTime::ZERO;
        let mut count = 0u64;
        while let Some((at, _)) = p.next_arrival(now, &net, &mut rng) {
            now = at;
            count += 1;
        }
        let empirical = count as f64 / horizon.as_secs_f64();
        // 2000 expected arrivals: 4σ ≈ 4·sqrt(2000)/20 ≈ 9.
        assert!(
            (empirical - rate).abs() < 10.0,
            "empirical rate {empirical} vs nominal {rate}"
        );
    }

    #[test]
    fn paper_rate_matches_slotted_load() {
        // 3 requests per 1.46 s slot.
        assert!((PoissonArrivals::paper_rate() * 1.46 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_replays_in_order() {
        let (net, mut rng) = setup();
        let pair = random_sd_pair(&mut rng, &net);
        let trace = vec![
            (SimTime::from_micros(5), pair),
            (SimTime::from_micros(9), pair),
        ];
        let mut p = TraceArrivals::new(trace);
        assert_eq!(p.remaining(), 2);
        let (t1, _) = p.next_arrival(SimTime::ZERO, &net, &mut rng).unwrap();
        assert_eq!(t1, SimTime::from_micros(5));
        let (t2, _) = p.next_arrival(t1, &net, &mut rng).unwrap();
        assert_eq!(t2, SimTime::from_micros(9));
        assert!(p.next_arrival(t2, &net, &mut rng).is_none());
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unsorted_trace_rejected() {
        let (net, mut rng) = setup();
        let pair = random_sd_pair(&mut rng, &net);
        let _ = TraceArrivals::new(vec![
            (SimTime::from_micros(9), pair),
            (SimTime::from_micros(5), pair),
        ]);
    }
}
