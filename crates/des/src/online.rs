//! Online entanglement routing: serve each EC request upon arrival.
//!
//! The paper batches requests into slots; its related work (online
//! entanglement routing, asynchronous provisioning) processes them as
//! they arrive. This module carries OSCAR's user-centric machinery into
//! that regime:
//!
//! * requests arrive in continuous time ([`crate::arrivals`]);
//! * each arrival is routed immediately against the *residual* network —
//!   resources held by in-flight executions are unavailable
//!   ([`crate::ledger`]);
//! * the admitted execution plays out physically ([`crate::exec`]) and
//!   releases its resources when it delivers or fails;
//! * the long-term budget is paced by a continuous-time virtual queue,
//!   the natural analogue of the paper's Eq. 7: between arrivals the
//!   queue drains at the budget rate `C / span`, and every admission
//!   charges its cost,
//!   `q(t⁺) = max(0, q(t_prev) − ρ·(t − t_prev)) + cost`.
//!
//! Per-arrival decisions reuse the exact per-slot pipeline
//! ([`qdn_core::engine::decide`]) with a single-request "slot": with one
//! pair, exhaustive route selection (Eq. 13) is exact and cheap, so the
//! online router inherits Algorithm 2's allocation guarantees unchanged.

use std::time::Duration;

use qdn_core::allocation::AllocationMethod;
use qdn_core::engine::{decide, EngineState, SlotDecisionRequest};
use qdn_core::problem::PerSlotContext;
use qdn_core::route_selection::RouteSelector;
use qdn_net::routes::RouteLimits;
use qdn_net::{QdnNetwork, SdPair};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::arrivals::ArrivalProcess;
use crate::exec::{execute_route, ExecutionConfig, FailureCause};
use crate::ledger::ResourceLedger;
use crate::queue::EventQueue;
use crate::slotted::assignment_tasks;
use crate::stats::LatencySummary;
use crate::time::SimTime;

/// How the online router paces the long-term budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pacing {
    /// The continuous-time virtual queue (the default): drains at
    /// `C / span`, charges every admission.
    VirtualQueue,
    /// No pacing — the admission price is always 0, so every request is
    /// served at capacity-saturating width (the online analogue of the
    /// budget-oblivious throughput maximizer). Ablation only.
    None,
}

/// Configuration of the online router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Drift-plus-penalty weight `V`.
    pub v: f64,
    /// Initial virtual queue `q0`.
    pub q0: f64,
    /// Total budget `C` paced over `budget_span`.
    pub total_budget: f64,
    /// The wall-clock span the budget must last.
    pub budget_span: Duration,
    /// Candidate route limits.
    pub route_limits: RouteLimits,
    /// Qubit-allocation method (Algorithm 2 by default).
    pub allocation: AllocationMethod,
    /// Physical execution parameters.
    pub execution: ExecutionConfig,
    /// Budget pacing mode.
    pub pacing: Pacing,
}

impl OnlineConfig {
    /// The paper's defaults mapped to continuous time: `V = 2500`,
    /// `q0 = 10`, `C = 5000` over 200 × 1.46 s = 292 s.
    pub fn paper_default() -> Self {
        OnlineConfig {
            v: 2500.0,
            q0: 10.0,
            total_budget: 5000.0,
            budget_span: Duration::from_secs_f64(200.0 * 1.46),
            route_limits: RouteLimits::paper_default(),
            allocation: AllocationMethod::default(),
            execution: ExecutionConfig::paper_default(),
            pacing: Pacing::VirtualQueue,
        }
    }

    /// Returns a copy with pacing disabled (the budget-oblivious online
    /// ablation).
    pub fn unpaced(mut self) -> Self {
        self.pacing = Pacing::None;
        self
    }

    /// Budget replenishment rate `ρ = C / span` in units per second.
    pub fn budget_rate(&self) -> f64 {
        self.total_budget / self.budget_span.as_secs_f64()
    }
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The user-centric online router: a continuous-time virtual queue plus
/// the per-slot P2 solver applied to each arrival.
#[derive(Debug)]
pub struct OnlineRouter {
    config: OnlineConfig,
    /// The per-arrival route selector, built once: with one pair,
    /// exhaustive search (Eq. 13) over its ≤ R candidates is exact and
    /// the cap is generous.
    selector: RouteSelector,
    /// Slot-spanning decision state reused across arrivals (the
    /// event-driven analogue of a policy-owned engine state): the
    /// candidate cache, evaluator arena, and λ stores persist for the
    /// run instead of being rebuilt per admission decision.
    state: EngineState,
    queue: f64,
    last_drain: SimTime,
    spent: u64,
}

impl OnlineRouter {
    /// Creates the router.
    pub fn new(config: OnlineConfig) -> Self {
        let state = EngineState::new(config.route_limits);
        OnlineRouter {
            queue: config.q0,
            config,
            selector: RouteSelector::exhaustive(4096),
            state,
            last_drain: SimTime::ZERO,
            spent: 0,
        }
    }

    /// The router configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Current virtual-queue value.
    pub fn queue_value(&self) -> f64 {
        self.queue
    }

    /// Budget units spent so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Restores the initial state for a fresh run.
    pub fn reset(&mut self) {
        self.queue = self.config.q0;
        self.last_drain = SimTime::ZERO;
        self.spent = 0;
        // The candidate cache survives (topology is unchanged between
        // runs and no churn repair happens in continuous time here);
        // only the selection session's cross-run state is dropped.
        self.state.session_mut().reset();
    }

    /// The queue value a decision at `now` would see, without mutating
    /// state.
    pub fn peek_queue(&self, now: SimTime) -> f64 {
        if self.config.pacing == Pacing::None {
            return 0.0;
        }
        let elapsed = now.saturating_duration_since(self.last_drain);
        (self.queue - self.config.budget_rate() * elapsed.as_secs_f64()).max(0.0)
    }

    /// Drains the virtual queue for the time elapsed since the last
    /// decision (the continuous analogue of subtracting `C/T` per slot).
    /// Pins the queue to 0 under [`Pacing::None`].
    fn drain_until(&mut self, now: SimTime) {
        self.queue = self.peek_queue(now);
        self.last_drain = now;
    }

    /// Decides route and allocation for one arrival against the residual
    /// capacities; returns `None` when the request is not admitted.
    fn admit(
        &mut self,
        network: &QdnNetwork,
        ledger: &ResourceLedger,
        pair: SdPair,
        now: SimTime,
        rng: &mut dyn Rng,
    ) -> Option<qdn_core::types::RouteAssignment> {
        self.drain_until(now);
        let snapshot = ledger.snapshot(network);
        let ctx = PerSlotContext::oscar(network, &snapshot, self.config.v, self.queue);
        let decision = decide(
            &mut self.state,
            SlotDecisionRequest {
                network,
                requests: &[pair],
                ctx: &ctx,
                selector: &self.selector,
                allocation: &self.config.allocation,
                fidelity_target: None,
                rng,
            },
        );
        let assignment = decision.assignments().first().cloned()?;
        let cost = assignment.cost();
        self.spent += cost;
        if self.config.pacing == Pacing::VirtualQueue {
            self.queue += cost as f64;
        }
        Some(assignment)
    }
}

/// The life of one online request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineRequestRecord {
    /// Arrival instant.
    pub arrival: SimTime,
    /// The requested SD pair.
    pub pair: SdPair,
    /// Whether the router admitted (served) the request.
    pub served: bool,
    /// Virtual-queue value the decision saw.
    pub queue_at_decision: f64,
    /// Budget units charged (0 when not served).
    pub cost: u64,
    /// Analytic success probability of the chosen route/allocation.
    pub analytic_success: Option<f64>,
    /// Whether the physical execution delivered (`None` when unserved).
    pub delivered: Option<bool>,
    /// Delivery instant (successful executions only).
    pub completed_at: Option<SimTime>,
    /// Failure cause (failed executions only).
    pub cause: Option<FailureCause>,
}

/// Aggregated results of an online run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineRunMetrics {
    records: Vec<OnlineRequestRecord>,
    /// The instant the last event resolved.
    pub end_time: SimTime,
}

impl OnlineRunMetrics {
    /// Per-request records in arrival order.
    pub fn records(&self) -> &[OnlineRequestRecord] {
        &self.records
    }

    /// Total requests that arrived.
    pub fn total_requests(&self) -> usize {
        self.records.len()
    }

    /// Requests the router admitted.
    pub fn served(&self) -> usize {
        self.records.iter().filter(|r| r.served).count()
    }

    /// End-to-end pairs delivered.
    pub fn delivered(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.delivered == Some(true))
            .count()
    }

    /// Realized success rate over *all* arrivals (unserved requests count
    /// as failures).
    pub fn realized_success_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.delivered() as f64 / self.records.len() as f64
    }

    /// Mean analytic success probability over all arrivals (0 for
    /// unserved ones) — comparable to the slotted average success rate.
    pub fn expected_success_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .records
            .iter()
            .map(|r| r.analytic_success.unwrap_or(0.0))
            .sum();
        sum / self.records.len() as f64
    }

    /// Total budget units spent.
    pub fn total_cost(&self) -> u64 {
        self.records.iter().map(|r| r.cost).sum()
    }

    /// Latency summary (arrival → delivery) over delivered requests.
    pub fn latency_summary(&self) -> Option<LatencySummary> {
        let sample: Vec<Duration> = self
            .records
            .iter()
            .filter_map(|r| {
                r.completed_at
                    .map(|done| done.saturating_duration_since(r.arrival))
            })
            .collect();
        LatencySummary::from_durations(&sample)
    }

    /// Delivered connections per second of simulated time.
    pub fn throughput_per_sec(&self) -> f64 {
        let span = self.end_time.as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.delivered() as f64 / span
    }
}

/// Internal event alphabet of the online loop.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// A request arrives.
    Arrival(SdPair),
    /// The execution of request `record` resolves (deliver or fail).
    Resolve { record: usize },
}

/// Runs the online router against an arrival process until every arrival
/// has been processed and every admitted execution has resolved.
///
/// `env_rng` drives arrivals and physical realization; `policy_rng`
/// drives the router's internal randomization (tie-breaking inside route
/// selection) — the same two-stream discipline as the slotted engines.
pub fn run_online(
    network: &QdnNetwork,
    router: &mut OnlineRouter,
    arrivals: &mut dyn ArrivalProcess,
    env_rng: &mut dyn Rng,
    policy_rng: &mut dyn Rng,
) -> OnlineRunMetrics {
    let mut events: EventQueue<Event> = EventQueue::new();
    let mut ledger = ResourceLedger::full(network);
    let mut records: Vec<OnlineRequestRecord> = Vec::new();
    // Holdings of in-flight executions, indexed by record.
    let mut holdings: Vec<Option<qdn_core::types::RouteAssignment>> = Vec::new();
    let mut end_time = SimTime::ZERO;

    if let Some((at, pair)) = arrivals.next_arrival(SimTime::ZERO, network, env_rng) {
        events.schedule(at, Event::Arrival(pair));
    }

    while let Some(scheduled) = events.pop() {
        let now = scheduled.time;
        end_time = end_time.max(now);
        match scheduled.payload {
            Event::Arrival(pair) => {
                let record_idx = records.len();
                // The post-drain queue the decision will see (admit()
                // drains internally; peeking avoids double-draining).
                let queue_before = router.peek_queue(now);
                match router.admit(network, &ledger, pair, now, policy_rng) {
                    Some(assignment) => {
                        ledger
                            .try_reserve(network, &assignment.route, &assignment.allocation)
                            .expect("solver respects the residual snapshot");
                        let tasks =
                            assignment_tasks(network, &assignment, &router.config.execution)
                                .expect("assignments are validated at construction");
                        let outcome = execute_route(now, &tasks, &router.config.execution, env_rng);
                        events
                            .schedule(outcome.resolved_at(), Event::Resolve { record: record_idx });
                        records.push(OnlineRequestRecord {
                            arrival: now,
                            pair,
                            served: true,
                            queue_at_decision: queue_before,
                            cost: assignment.cost(),
                            analytic_success: Some(assignment.success_probability(network)),
                            delivered: Some(outcome.success),
                            completed_at: outcome.completed_at,
                            cause: outcome.cause,
                        });
                        holdings.push(Some(assignment));
                    }
                    None => {
                        records.push(OnlineRequestRecord {
                            arrival: now,
                            pair,
                            served: false,
                            queue_at_decision: queue_before,
                            cost: 0,
                            analytic_success: None,
                            delivered: None,
                            completed_at: None,
                            cause: None,
                        });
                        holdings.push(None);
                    }
                }
                if let Some((at, next_pair)) = arrivals.next_arrival(now, network, env_rng) {
                    events.schedule(at, Event::Arrival(next_pair));
                }
            }
            Event::Resolve { record } => {
                let assignment = holdings[record]
                    .take()
                    .expect("resolve fires once per admitted execution");
                ledger.release(network, &assignment.route, &assignment.allocation);
            }
        }
    }
    debug_assert_eq!(
        ledger,
        ResourceLedger::full(network),
        "all resources must be back after the run"
    );
    OnlineRunMetrics { records, end_time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{PoissonArrivals, TraceArrivals};
    use qdn_net::workload::random_sd_pair;
    use qdn_net::NetworkConfig;
    use rand::SeedableRng;

    fn network(seed: u64) -> (QdnNetwork, rand::rngs::StdRng, rand::rngs::StdRng) {
        let mut env = rand::rngs::StdRng::seed_from_u64(seed);
        let policy = rand::rngs::StdRng::seed_from_u64(seed ^ 0xbeef);
        let net = NetworkConfig::paper_default().build(&mut env).unwrap();
        (net, env, policy)
    }

    fn quick_run(seed: u64, secs: f64, rate: f64) -> OnlineRunMetrics {
        let (net, mut env, mut policy) = network(seed);
        let mut router = OnlineRouter::new(OnlineConfig::paper_default());
        let mut arrivals = PoissonArrivals::new(rate, Duration::from_secs_f64(secs)).unwrap();
        run_online(&net, &mut router, &mut arrivals, &mut env, &mut policy)
    }

    #[test]
    fn serves_most_requests_at_paper_load() {
        let m = quick_run(1, 30.0, PoissonArrivals::paper_rate());
        assert!(m.total_requests() > 20, "got {}", m.total_requests());
        let served_frac = m.served() as f64 / m.total_requests() as f64;
        assert!(
            served_frac > 0.9,
            "paper load should be nearly always admissible, served {served_frac}"
        );
        assert!(m.realized_success_rate() > 0.5);
        assert!(m.expected_success_rate() > 0.5);
    }

    #[test]
    fn latencies_positive_and_within_window() {
        let m = quick_run(2, 20.0, 2.0);
        let summary = m.latency_summary().expect("some deliveries");
        assert!(summary.mean_secs > 0.0);
        // One attempt window is 0.66 s.
        assert!(summary.max_secs <= 0.66 + 1e-9);
    }

    #[test]
    fn queue_paces_budget_spend() {
        // Overload the network: 20 req/s against a budget paced for ~2/s.
        // P2 never rejects a feasible request (n_e ≥ 1 is mandatory), so
        // under 10x overload the *mandatory* spend alone exceeds the
        // paced allowance — the paper's Assumption 1 boundary. What the
        // queue must deliver is suppression: early arrivals see a small
        // price and allocate wide; late arrivals see a huge price and
        // get pinned near the per-route minimum.
        let m = quick_run(3, 60.0, 20.0);
        let served: Vec<&OnlineRequestRecord> = m.records().iter().filter(|r| r.served).collect();
        assert!(served.len() > 100);
        let mean = |rs: &[&OnlineRequestRecord]| {
            rs.iter().map(|r| r.cost as f64).sum::<f64>() / rs.len() as f64
        };
        // The queue saturates within a handful of overloaded arrivals, so
        // "cheap" only describes the very first admissions.
        let early = mean(&served[..10]);
        let third = served.len() / 3;
        let late = mean(&served[served.len() - third..]);
        assert!(
            late < 0.6 * early,
            "queue price should suppress per-request spend: early {early:.2}, late {late:.2}"
        );
        // And the late queue must indeed be large.
        let max_late_queue = served[served.len() - third..]
            .iter()
            .map(|r| r.queue_at_decision)
            .fold(0.0f64, f64::max);
        assert!(max_late_queue > 100.0, "late queue {max_late_queue}");
    }

    #[test]
    fn high_price_suppresses_admission_cost() {
        let (net, mut env, mut policy) = network(4);
        let mut cfg = OnlineConfig::paper_default();
        cfg.total_budget = 50.0; // starvation budget
        let mut router = OnlineRouter::new(cfg);
        let mut arrivals = PoissonArrivals::new(5.0, Duration::from_secs(60)).unwrap();
        let m = run_online(&net, &mut router, &mut arrivals, &mut env, &mut policy);
        // Late requests must see a large queue and be served minimally.
        let late: Vec<_> = m
            .records()
            .iter()
            .filter(|r| r.arrival.as_secs_f64() > 30.0 && r.served)
            .collect();
        assert!(!late.is_empty());
        for r in &late {
            assert!(r.queue_at_decision > 100.0, "queue {}", r.queue_at_decision);
        }
    }

    #[test]
    fn trace_arrivals_are_deterministic() {
        let (net, mut env, _) = network(5);
        let pair = random_sd_pair(&mut env, &net);
        let trace: Vec<(SimTime, SdPair)> = (1..=5)
            .map(|i| (SimTime::from_secs_f64(i as f64), pair))
            .collect();
        let run = |seed: u64| {
            let (net, mut env, mut policy) = network(5);
            let _ = seed;
            let mut router = OnlineRouter::new(OnlineConfig::paper_default());
            let mut arrivals = TraceArrivals::new(trace.clone());
            run_online(&net, &mut router, &mut arrivals, &mut env, &mut policy)
        };
        let _ = &net;
        let a = run(0);
        let b = run(0);
        assert_eq!(a, b);
        assert_eq!(a.total_requests(), 5);
    }

    #[test]
    fn contention_forces_minimal_or_no_admission() {
        // A burst of simultaneous long-lived requests between the same
        // pair must drain the residual capacity: later ones in the burst
        // see less and eventually nothing.
        let (net, mut env, mut policy) = network(6);
        let pair = random_sd_pair(&mut env, &net);
        let t = SimTime::from_secs_f64(1.0);
        let trace = vec![(t, pair); 40];
        let mut router = OnlineRouter::new(OnlineConfig::paper_default());
        let mut arrivals = TraceArrivals::new(trace);
        let m = run_online(&net, &mut router, &mut arrivals, &mut env, &mut policy);
        assert_eq!(m.total_requests(), 40);
        // The burst arrives at one instant: nothing releases in between,
        // so the residual capacity along the pair's candidate routes is
        // consumed monotonically and the burst cannot be served in full.
        assert!(m.served() >= 1, "abundant initial capacity serves someone");
        assert!(
            m.served() < 40,
            "a 40-deep simultaneous burst cannot all fit"
        );
        // Rejections are a capacity effect, so they form a suffix: once
        // the candidate routes are exhausted, they stay exhausted.
        let first_reject = m
            .records()
            .iter()
            .position(|r| !r.served)
            .expect("some rejection");
        assert!(
            m.records()[first_reject..].iter().all(|r| !r.served),
            "rejections must be a suffix of the simultaneous burst"
        );
        for r in m.records().iter().filter(|r| r.served) {
            assert!(r.cost > 0);
            assert!(r.analytic_success.unwrap() > 0.0);
        }
    }

    #[test]
    fn unpaced_router_outspends_paced_under_overload() {
        let run = |config: OnlineConfig| {
            let (net, mut env, mut policy) = network(9);
            let mut router = OnlineRouter::new(config);
            let mut arrivals = PoissonArrivals::new(8.0, Duration::from_secs(40)).unwrap();
            run_online(&net, &mut router, &mut arrivals, &mut env, &mut policy)
        };
        let paced = run(OnlineConfig::paper_default());
        let unpaced = run(OnlineConfig::paper_default().unpaced());
        // Identical sample paths (same seeds): the unpaced ablation must
        // spend far more ...
        assert!(
            unpaced.total_cost() as f64 > 1.5 * paced.total_cost() as f64,
            "unpaced {} vs paced {}",
            unpaced.total_cost(),
            paced.total_cost()
        );
        // ... and buy at least as much expected success with it.
        assert!(unpaced.expected_success_rate() >= paced.expected_success_rate() - 0.02);
        // The unpaced router's queue never prices anything.
        assert!(unpaced.records().iter().all(|r| r.queue_at_decision == 0.0));
    }

    #[test]
    fn reset_restores_router_state() {
        let (net, mut env, mut policy) = network(7);
        let mut router = OnlineRouter::new(OnlineConfig::paper_default());
        let mut arrivals = PoissonArrivals::new(3.0, Duration::from_secs(5)).unwrap();
        let _ = run_online(&net, &mut router, &mut arrivals, &mut env, &mut policy);
        assert!(router.spent() > 0);
        router.reset();
        assert_eq!(router.spent(), 0);
        assert_eq!(router.queue_value(), 10.0);
    }

    #[test]
    fn empty_arrivals_yield_empty_metrics() {
        let (net, mut env, mut policy) = network(8);
        let mut router = OnlineRouter::new(OnlineConfig::paper_default());
        let mut arrivals = TraceArrivals::new(Vec::new());
        let m = run_online(&net, &mut router, &mut arrivals, &mut env, &mut policy);
        assert_eq!(m.total_requests(), 0);
        assert_eq!(m.realized_success_rate(), 0.0);
        assert_eq!(m.throughput_per_sec(), 0.0);
        assert!(m.latency_summary().is_none());
    }
}
