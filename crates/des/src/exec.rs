//! Attempt-level execution of one entanglement connection.
//!
//! Given a chosen route and qubit allocation (a
//! [`qdn_core::types::RouteAssignment`], or raw per-edge channel counts),
//! this module plays out the physical process the paper's Eq. 2
//! aggregates into a single probability:
//!
//! 1. every edge races its allocated channels in lockstep attempt rounds
//!    ([`crate::sampler::AttemptProcess`]) until the link is up or the
//!    attempt window closes;
//! 2. links that come up early must *survive* (not decohere) until the
//!    last link arrives;
//! 3. a chain of entanglement swaps then splices the links into an
//!    end-to-end pair, each swap succeeding with probability `q`.
//!
//! With the paper's parameters (window = 4000 × 165 µs = 0.66 s, memory
//! 1.46 s, `q = 1`) steps 2–3 never fail and the end-to-end success
//! probability collapses to `Π_e P_e(n_e)` — exactly Eq. 2, which the
//! workspace `des_validation` test verifies empirically. The DES earns
//! its keep beyond that check: it reports *when* the connection becomes
//! available (latency), what failures look like when memory or swapping
//! is imperfect, and how many attempts were burned.

use std::time::Duration;

use qdn_graph::EdgeId;
use qdn_physics::swap::SwapModel;
use qdn_physics::timing::SlotTiming;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::sampler::AttemptProcess;
use crate::time::SimTime;
use crate::DesError;

/// Physical parameters governing one execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// Duration of one attempt round.
    pub attempt_duration: Duration,
    /// Attempt window in rounds (the paper's `A`).
    pub max_rounds: u64,
    /// Quantum-memory lifetime of an established link.
    pub decoherence: Duration,
    /// Time per swap operation (Bell-state measurement + classical
    /// message to the next node); the paper treats this as negligible.
    pub swap_duration: Duration,
    /// Per-swap success probability `q ∈ (0, 1]`.
    pub swap_success: f64,
}

impl ExecutionConfig {
    /// The paper's §V-A physical layer: 165 µs rounds, `A = 4000`,
    /// 1.46 s memory, instantaneous perfect swapping.
    pub fn paper_default() -> Self {
        let timing = SlotTiming::paper_default();
        ExecutionConfig {
            attempt_duration: timing.attempt_duration,
            max_rounds: 4000,
            decoherence: timing.decoherence_time,
            swap_duration: Duration::ZERO,
            swap_success: 1.0,
        }
    }

    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DesError::InvalidParameter`] when the attempt duration
    /// or window is zero, and [`DesError::InvalidProbability`] unless
    /// `swap_success ∈ (0, 1]`.
    pub fn new(
        attempt_duration: Duration,
        max_rounds: u64,
        decoherence: Duration,
        swap_duration: Duration,
        swap_success: f64,
    ) -> Result<Self, DesError> {
        if attempt_duration.is_zero() {
            return Err(DesError::InvalidParameter {
                name: "attempt_duration",
                reason: "must be positive",
            });
        }
        if max_rounds == 0 {
            return Err(DesError::InvalidParameter {
                name: "max_rounds",
                reason: "the attempt window needs at least one round",
            });
        }
        if decoherence.is_zero() {
            return Err(DesError::InvalidParameter {
                name: "decoherence",
                reason: "must be positive",
            });
        }
        if !(swap_success > 0.0 && swap_success <= 1.0) {
            return Err(DesError::InvalidProbability {
                name: "swap_success",
                value: swap_success,
            });
        }
        Ok(ExecutionConfig {
            attempt_duration,
            max_rounds,
            decoherence,
            swap_duration,
            swap_success,
        })
    }

    /// Returns a copy with a different swap model (success probability).
    pub fn with_swap(mut self, swap: SwapModel) -> Self {
        self.swap_success = swap.success();
        self
    }

    /// Returns a copy with a different memory lifetime.
    pub fn with_decoherence(mut self, decoherence: Duration) -> Self {
        self.decoherence = decoherence;
        self
    }

    /// When the attempt window closes, relative to the execution start.
    pub fn window_end(&self, start: SimTime) -> SimTime {
        start + self.attempt_duration * self.max_rounds as u32
    }
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One edge of an execution: which edge, and its attempt process
/// (per-attempt success × allocated channels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeTask {
    /// The network edge this link lives on.
    pub edge: EdgeId,
    /// The attempt process (carries the channel count).
    pub process: AttemptProcess,
}

impl EdgeTask {
    /// Creates a task for `channels` parallel channels with per-attempt
    /// success `p_attempt`.
    ///
    /// # Errors
    ///
    /// Propagates [`AttemptProcess::new`] validation errors.
    pub fn new(edge: EdgeId, p_attempt: f64, channels: u32) -> Result<Self, DesError> {
        Ok(EdgeTask {
            edge,
            process: AttemptProcess::new(p_attempt, channels)?,
        })
    }
}

/// Why an execution failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureCause {
    /// An elementary link never came up within the attempt window.
    LinkWindowExpired {
        /// The edge whose link failed (first such edge in route order).
        edge: EdgeId,
    },
    /// An early link decohered before the route's last link arrived (or
    /// before the swap chain finished).
    LinkDecohered {
        /// The edge whose link expired.
        edge: EdgeId,
    },
    /// A swap operation failed.
    SwapFailed {
        /// Zero-based index of the failing swap in the chain.
        index: usize,
    },
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::LinkWindowExpired { edge } => {
                write!(f, "link on edge {edge} never established")
            }
            FailureCause::LinkDecohered { edge } => {
                write!(f, "link on edge {edge} decohered")
            }
            FailureCause::SwapFailed { index } => write!(f, "swap {index} failed"),
        }
    }
}

/// The full physical record of one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOutcome {
    /// Whether the end-to-end pair was delivered.
    pub success: bool,
    /// Delivery instant (present iff `success`).
    pub completed_at: Option<SimTime>,
    /// The instant the failure became known (present iff `!success`).
    pub failed_at: Option<SimTime>,
    /// The failure cause (present iff `!success`).
    pub cause: Option<FailureCause>,
    /// Per edge (route order): when its link came up, `None` if never.
    pub link_up_at: Vec<Option<SimTime>>,
    /// Per edge: attempt rounds consumed (the window size for links that
    /// never came up).
    pub rounds_used: Vec<u64>,
    /// Total individual attempts across all edges and channels
    /// (`Σ_e n_e · rounds_e`).
    pub attempts_consumed: u64,
}

impl RouteOutcome {
    /// The instant the execution's resources can be released: delivery on
    /// success, the failure instant otherwise.
    pub fn resolved_at(&self) -> SimTime {
        self.completed_at
            .or(self.failed_at)
            .expect("an outcome is either completed or failed")
    }

    /// Time from `start` to delivery (`None` on failure).
    pub fn latency(&self, start: SimTime) -> Option<Duration> {
        self.completed_at
            .map(|done| done.saturating_duration_since(start))
    }
}

/// Plays out one execution starting at `start`.
///
/// RNG discipline: exactly one uniform draw per edge (the geometric
/// inversion), then one per swap actually performed — so a fixed seed
/// yields a reproducible trajectory regardless of outcome.
///
/// # Panics
///
/// Panics if `tasks` is empty: a route has at least one edge.
pub fn execute_route<R: Rng + ?Sized>(
    start: SimTime,
    tasks: &[EdgeTask],
    config: &ExecutionConfig,
    rng: &mut R,
) -> RouteOutcome {
    assert!(!tasks.is_empty(), "an execution needs at least one edge");
    let window_end = config.window_end(start);

    // Phase 1: race the links.
    let mut link_up_at = Vec::with_capacity(tasks.len());
    let mut rounds_used = Vec::with_capacity(tasks.len());
    let mut first_expired: Option<EdgeId> = None;
    for task in tasks {
        match task.process.sample_within(rng, config.max_rounds) {
            Some(k) => {
                link_up_at.push(Some(start + config.attempt_duration * k as u32));
                rounds_used.push(k);
            }
            None => {
                link_up_at.push(None);
                rounds_used.push(config.max_rounds);
                if first_expired.is_none() {
                    first_expired = Some(task.edge);
                }
            }
        }
    }
    let attempts_consumed = tasks
        .iter()
        .zip(&rounds_used)
        .map(|(t, &r)| t.process.channels() as u64 * r)
        .sum();

    if let Some(edge) = first_expired {
        // Failure is known when the window closes (links that came up are
        // held — and wasted — until then).
        return RouteOutcome {
            success: false,
            completed_at: None,
            failed_at: Some(window_end),
            cause: Some(FailureCause::LinkWindowExpired { edge }),
            link_up_at,
            rounds_used,
            attempts_consumed,
        };
    }

    // Phase 2: all links are up; the earliest-established link must
    // survive until the swap chain completes.
    let last_up = link_up_at
        .iter()
        .map(|t| t.expect("all links up"))
        .max()
        .expect("non-empty");
    let swaps = SwapModel::swaps_for_hops(tasks.len());
    let delivery = last_up + config.swap_duration * swaps as u32;
    let mut earliest_decoherence: Option<(SimTime, EdgeId)> = None;
    for (task, up) in tasks.iter().zip(&link_up_at) {
        let deadline = up.expect("all links up") + config.decoherence;
        if deadline < delivery {
            let candidate = (deadline, task.edge);
            if earliest_decoherence.is_none_or(|cur| candidate.0 < cur.0) {
                earliest_decoherence = Some(candidate);
            }
        }
    }
    if let Some((deadline, edge)) = earliest_decoherence {
        return RouteOutcome {
            success: false,
            completed_at: None,
            failed_at: Some(deadline),
            cause: Some(FailureCause::LinkDecohered { edge }),
            link_up_at,
            rounds_used,
            attempts_consumed,
        };
    }

    // Phase 3: the swap chain.
    for index in 0..swaps {
        if config.swap_success < 1.0 {
            let u: f64 = rng.random();
            if u >= config.swap_success {
                let failed_at = last_up + config.swap_duration * (index + 1) as u32;
                return RouteOutcome {
                    success: false,
                    completed_at: None,
                    failed_at: Some(failed_at),
                    cause: Some(FailureCause::SwapFailed { index }),
                    link_up_at,
                    rounds_used,
                    attempts_consumed,
                };
            }
        }
    }

    RouteOutcome {
        success: true,
        completed_at: Some(delivery),
        failed_at: None,
        cause: None,
        link_up_at,
        rounds_used,
        attempts_consumed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn tasks(p: f64, channels: u32, hops: usize) -> Vec<EdgeTask> {
        (0..hops)
            .map(|i| EdgeTask::new(EdgeId(i as u32), p, channels).unwrap())
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(ExecutionConfig::new(
            Duration::ZERO,
            10,
            Duration::from_secs(1),
            Duration::ZERO,
            1.0
        )
        .is_err());
        assert!(ExecutionConfig::new(
            Duration::from_micros(1),
            0,
            Duration::from_secs(1),
            Duration::ZERO,
            1.0
        )
        .is_err());
        assert!(ExecutionConfig::new(
            Duration::from_micros(1),
            10,
            Duration::ZERO,
            Duration::ZERO,
            1.0
        )
        .is_err());
        assert!(ExecutionConfig::new(
            Duration::from_micros(1),
            10,
            Duration::from_secs(1),
            Duration::ZERO,
            0.0
        )
        .is_err());
        assert!(ExecutionConfig::new(
            Duration::from_micros(1),
            10,
            Duration::from_secs(1),
            Duration::ZERO,
            1.0
        )
        .is_ok());
    }

    #[test]
    fn paper_default_window() {
        let cfg = ExecutionConfig::paper_default();
        let end = cfg.window_end(SimTime::ZERO);
        assert_eq!(end.as_nanos(), 4000 * 165_000);
        // Window (0.66 s) fits inside the memory lifetime (1.46 s).
        assert!(end.as_secs_f64() < cfg.decoherence.as_secs_f64());
    }

    #[test]
    fn strong_links_always_succeed() {
        let cfg = ExecutionConfig::paper_default();
        let tasks = tasks(0.9, 4, 3);
        let mut r = rng(1);
        for _ in 0..50 {
            let out = execute_route(SimTime::ZERO, &tasks, &cfg, &mut r);
            assert!(out.success);
            let done = out.completed_at.unwrap();
            assert!(done > SimTime::ZERO);
            assert_eq!(out.resolved_at(), done);
            assert!(out.latency(SimTime::ZERO).unwrap() >= cfg.attempt_duration);
            assert!(out.link_up_at.iter().all(Option::is_some));
            assert!(out.cause.is_none());
        }
    }

    #[test]
    fn hopeless_links_fail_at_window_end() {
        let cfg = ExecutionConfig::new(
            Duration::from_micros(165),
            10,
            Duration::from_secs(2),
            Duration::ZERO,
            1.0,
        )
        .unwrap();
        let tasks = tasks(1e-9, 1, 2);
        let mut r = rng(2);
        let out = execute_route(SimTime::ZERO, &tasks, &cfg, &mut r);
        assert!(!out.success);
        assert_eq!(out.failed_at, Some(cfg.window_end(SimTime::ZERO)));
        assert!(matches!(
            out.cause,
            Some(FailureCause::LinkWindowExpired { .. })
        ));
        // Every channel burned the whole window.
        assert_eq!(out.attempts_consumed, 2 * 10);
    }

    #[test]
    fn empirical_route_success_matches_eq2() {
        // 2-hop route, p̃ chosen so P_e(n) is mid-range.
        let p_attempt = 0.002;
        let rounds = 400u64;
        let channels = 2u32;
        let cfg = ExecutionConfig::new(
            Duration::from_micros(165),
            rounds,
            Duration::from_secs(10),
            Duration::ZERO,
            1.0,
        )
        .unwrap();
        let tasks = tasks(p_attempt, channels, 2);
        let p_edge = tasks[0].process.success_within(rounds);
        let expected = p_edge * p_edge;
        let mut r = rng(3);
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| execute_route(SimTime::ZERO, &tasks, &cfg, &mut r).success)
            .count();
        let rate = hits as f64 / trials as f64;
        assert!(
            (rate - expected).abs() < 0.02,
            "DES {rate:.4} vs Eq.2 {expected:.4}"
        );
    }

    #[test]
    fn lossy_swapping_scales_success_by_route_factor() {
        let cfg = ExecutionConfig::paper_default().with_swap(SwapModel::new(0.7).unwrap());
        // 3 hops -> 2 swaps; strong links so only swaps can fail.
        let tasks = tasks(0.9, 4, 3);
        let mut r = rng(4);
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| execute_route(SimTime::ZERO, &tasks, &cfg, &mut r).success)
            .count();
        let rate = hits as f64 / trials as f64;
        let expected = 0.7f64.powi(2);
        assert!(
            (rate - expected).abs() < 0.02,
            "swap-lossy DES {rate:.4} vs q^swaps {expected:.4}"
        );
    }

    #[test]
    fn swap_failure_reports_index_and_time() {
        let cfg = ExecutionConfig::new(
            Duration::from_micros(165),
            100,
            Duration::from_secs(10),
            Duration::from_micros(10),
            1e-9, // swaps essentially always fail
        )
        .unwrap();
        let tasks = tasks(0.9, 4, 3);
        let mut r = rng(5);
        let out = execute_route(SimTime::ZERO, &tasks, &cfg, &mut r);
        assert!(!out.success);
        match out.cause {
            Some(FailureCause::SwapFailed { index }) => {
                assert_eq!(index, 0, "first swap should fail with q≈0");
                let last_up = out.link_up_at.iter().map(|t| t.unwrap()).max().unwrap();
                assert_eq!(out.failed_at, Some(last_up + Duration::from_micros(10)));
            }
            other => panic!("expected swap failure, got {other:?}"),
        }
    }

    #[test]
    fn short_memory_triggers_decoherence() {
        // Window far longer than memory: an early link often dies before
        // a late one arrives.
        let cfg = ExecutionConfig::new(
            Duration::from_micros(165),
            50_000,
            Duration::from_millis(5), // ~30 rounds of memory
            Duration::ZERO,
            1.0,
        )
        .unwrap();
        let tasks = tasks(0.005, 1, 3); // mean ≈ 200 rounds per link
        let mut r = rng(6);
        let mut decohered = 0;
        for _ in 0..500 {
            let out = execute_route(SimTime::ZERO, &tasks, &cfg, &mut r);
            if let Some(FailureCause::LinkDecohered { .. }) = out.cause {
                decohered += 1;
                assert!(out.failed_at.unwrap() <= cfg.window_end(SimTime::ZERO) + cfg.decoherence);
            }
        }
        assert!(
            decohered > 100,
            "expected frequent decoherence failures, got {decohered}/500"
        );
    }

    #[test]
    fn paper_window_never_decoheres() {
        // 0.66 s window < 1.46 s memory: decoherence is impossible, as the
        // paper's slot design intends.
        let cfg = ExecutionConfig::paper_default();
        let tasks = tasks(0.001, 1, 4);
        let mut r = rng(7);
        for _ in 0..2000 {
            let out = execute_route(SimTime::ZERO, &tasks, &cfg, &mut r);
            assert!(!matches!(
                out.cause,
                Some(FailureCause::LinkDecohered { .. })
            ));
        }
    }

    #[test]
    fn failure_display_messages() {
        let m1 = FailureCause::LinkWindowExpired { edge: EdgeId(3) }.to_string();
        assert!(m1.contains("never established"));
        let m2 = FailureCause::LinkDecohered { edge: EdgeId(1) }.to_string();
        assert!(m2.contains("decohered"));
        let m3 = FailureCause::SwapFailed { index: 2 }.to_string();
        assert!(m3.contains("swap 2"));
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn empty_route_rejected() {
        let cfg = ExecutionConfig::paper_default();
        let mut r = rng(8);
        let _ = execute_route(SimTime::ZERO, &[], &cfg, &mut r);
    }

    #[test]
    fn single_hop_has_no_swaps() {
        let cfg = ExecutionConfig::new(
            Duration::from_micros(165),
            100,
            Duration::from_secs(10),
            Duration::from_micros(10),
            0.5, // lossy swaps, but 1 hop needs none
        )
        .unwrap();
        let tasks = tasks(0.9, 4, 1);
        let mut r = rng(9);
        for _ in 0..200 {
            let out = execute_route(SimTime::ZERO, &tasks, &cfg, &mut r);
            assert!(out.success, "single-hop route cannot fail a swap");
            assert_eq!(out.completed_at, out.link_up_at[0]);
        }
    }
}
