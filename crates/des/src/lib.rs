//! Attempt-level discrete-event simulation for quantum data networks.
//!
//! The paper — and the `qdn-sim` engine that reproduces its evaluation —
//! abstracts the physical layer into per-slot success probabilities
//! (Eq. 1–2). This crate drops below that abstraction and simulates the
//! processes those formulas summarize, on a continuous time axis:
//!
//! * [`time`] / [`queue`] — a nanosecond simulation clock and a
//!   deterministic future-event list (the DES core),
//! * [`sampler`] — per-link entanglement attempt processes (lockstep
//!   attempt rounds of ≈ 165 µs, geometric first-success sampling),
//! * [`exec`] — end-to-end execution of one entanglement connection:
//!   link races, decoherence deadlines, and the swap chain,
//! * [`ledger`] — continuous-time resource holding (qubits/channels are
//!   occupied from admission until delivery or failure),
//! * [`slotted`] — replays any slotted [`qdn_core::policy::RoutingPolicy`]
//!   (OSCAR, MF, MA, …) against the attempt-level physics, validating
//!   that Eq. 2's analytic success rates match realized frequencies and
//!   measuring what the analytic model cannot express: delivery latency,
//!   attempt consumption, and failure causes,
//! * [`arrivals`] / [`online`] — the paper's related-work extension:
//!   requests processed *upon arrival* (online entanglement routing)
//!   with a continuous-time virtual queue pacing the budget.
//!
//! # Example
//!
//! ```
//! use qdn_des::exec::{execute_route, EdgeTask, ExecutionConfig};
//! use qdn_des::time::SimTime;
//! use qdn_graph::EdgeId;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), qdn_des::DesError> {
//! // A two-hop route, paper physics: p̃ = 2e-4, 3 channels per edge.
//! let tasks = vec![
//!     EdgeTask::new(EdgeId(0), 2e-4, 3)?,
//!     EdgeTask::new(EdgeId(1), 2e-4, 3)?,
//! ];
//! let config = ExecutionConfig::paper_default();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let outcome = execute_route(SimTime::ZERO, &tasks, &config, &mut rng);
//! if outcome.success {
//!     println!("EC delivered after {:?}", outcome.latency(SimTime::ZERO));
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
pub mod arrivals;
pub mod exec;
pub mod ledger;
pub mod online;
pub mod queue;
pub mod sampler;
pub mod slotted;
pub mod stats;
pub mod time;

pub use exec::{ExecutionConfig, FailureCause, RouteOutcome};
pub use ledger::ResourceLedger;
pub use online::{OnlineConfig, OnlineRouter, OnlineRunMetrics};
pub use sampler::AttemptProcess;
pub use slotted::{DesRunMetrics, SlottedDesConfig};
pub use stats::LatencySummary;
pub use time::SimTime;

/// Error type for invalid discrete-event simulation parameters and
/// infeasible resource operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DesError {
    /// A probability parameter was outside its valid range.
    InvalidProbability {
        /// Parameter name for diagnostics.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A structural parameter was invalid.
    InvalidParameter {
        /// Parameter name for diagnostics.
        name: &'static str,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// A reservation asked for more than is currently free.
    InsufficientResources {
        /// `"qubits"` or `"channels"`.
        what: &'static str,
        /// Node or edge index.
        index: usize,
        /// Units requested.
        need: u32,
        /// Units available.
        free: u32,
    },
}

impl std::fmt::Display for DesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesError::InvalidProbability { name, value } => {
                write!(f, "{name} must be a valid probability, got {value}")
            }
            DesError::InvalidParameter { name, reason } => {
                write!(f, "invalid {name}: {reason}")
            }
            DesError::InsufficientResources {
                what,
                index,
                need,
                free,
            } => write!(
                f,
                "insufficient {what} at index {index}: need {need}, free {free}"
            ),
        }
    }
}

impl std::error::Error for DesError {}

/// Derives the per-attempt success probability `p̃` from a per-slot
/// channel success `p_e` and the attempt window `A`, inverting the
/// paper's `p_e = 1 − (1 − p̃)^A`.
///
/// [`qdn_net::QdnNetwork`] stores only the aggregate `p_e`; the DES needs
/// the per-attempt probability to place link establishment *in time*.
///
/// # Panics
///
/// Panics if `p_slot` is not in `(0, 1)` or `rounds == 0`.
///
/// # Example
///
/// ```
/// use qdn_des::attempt_probability;
///
/// let p_slot = 1.0 - (1.0f64 - 2e-4).powi(4000);
/// let p_attempt = attempt_probability(p_slot, 4000);
/// assert!((p_attempt - 2e-4).abs() < 1e-12);
/// ```
pub fn attempt_probability(p_slot: f64, rounds: u64) -> f64 {
    assert!(
        p_slot > 0.0 && p_slot < 1.0,
        "p_slot must be in (0, 1), got {p_slot}"
    );
    assert!(rounds > 0, "rounds must be positive");
    // p̃ = 1 - (1 - p_slot)^(1/A), computed in log space for stability.
    -((-p_slot).ln_1p() / rounds as f64).exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DesError::InvalidProbability {
            name: "swap_success",
            value: 1.5,
        };
        assert!(e.to_string().contains("swap_success"));
        let e = DesError::InvalidParameter {
            name: "channels",
            reason: "needs at least one",
        };
        assert!(e.to_string().contains("channels"));
        let e = DesError::InsufficientResources {
            what: "qubits",
            index: 3,
            need: 5,
            free: 2,
        };
        let text = e.to_string();
        assert!(text.contains("qubits") && text.contains("need 5") && text.contains("free 2"));
    }

    #[test]
    fn attempt_probability_round_trips() {
        for &(p_attempt, rounds) in &[(2e-4f64, 4000u64), (0.01, 100), (0.3, 7)] {
            let p_slot = -(rounds as f64 * (-p_attempt).ln_1p()).exp_m1();
            let back = attempt_probability(p_slot, rounds);
            assert!(
                (back - p_attempt).abs() < 1e-10,
                "p̃={p_attempt} A={rounds}: got {back}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "p_slot")]
    fn attempt_probability_rejects_degenerate() {
        let _ = attempt_probability(1.0, 10);
    }
}
