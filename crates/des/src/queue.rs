//! A deterministic future-event list.
//!
//! The core data structure of any discrete-event simulator: a priority
//! queue of `(time, payload)` entries popped in time order. Ties are
//! broken by insertion order (FIFO), which makes event processing — and
//! therefore every simulation in this crate — fully deterministic for a
//! given RNG seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event popped from the queue: when it fires and what it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<T> {
    /// The instant the event fires.
    pub time: SimTime,
    /// The event payload.
    pub payload: T,
}

/// Internal heap entry; ordering is reversed so the `BinaryHeap` max-heap
/// behaves as a min-heap on `(time, seq)`.
#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest time (then lowest seq) is the heap maximum.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: events come out in non-decreasing time order,
/// FIFO among equal timestamps.
///
/// # Example
///
/// ```
/// use qdn_des::queue::EventQueue;
/// use qdn_des::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(20), "late");
/// q.schedule(SimTime::from_micros(10), "early");
/// q.schedule(SimTime::from_micros(10), "early-second");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop().map(|e| Scheduled {
            time: e.time,
            payload: e.payload,
        })
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events (the sequence counter keeps advancing so
    /// determinism is preserved across clears).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            q.schedule(SimTime::from_micros(t), t);
        }
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.payload);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(2), 'b');
        q.schedule(SimTime::from_micros(1), 'a');
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1)));
        assert_eq!(q.pop().unwrap().payload, 'a');
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        // Sequence numbers survive the clear: new pushes still FIFO.
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(30), 3);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.schedule(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
    }
}
