//! Continuous-time resource accounting.
//!
//! The slotted model resets capacities every slot; in the event-driven
//! world an execution *holds* its qubits and channels from admission
//! until it resolves (delivery or failure), and concurrent requests
//! contend for what is left. [`ResourceLedger`] tracks the free pool and
//! hands the online router a [`CapacitySnapshot`] of the residual
//! capacities so the per-slot solvers from `qdn-core` can be reused
//! unchanged.

use qdn_graph::Path;
use qdn_net::{CapacitySnapshot, QdnNetwork};

use crate::DesError;

/// Sparse demand list: `(node-or-edge index, units)` pairs.
type Demand = Vec<(usize, u32)>;

/// Free qubits per node and free channels per edge at the current
/// simulation instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceLedger {
    qubits: Vec<u32>,
    channels: Vec<u32>,
}

impl ResourceLedger {
    /// A ledger with every resource free.
    pub fn full(network: &QdnNetwork) -> Self {
        ResourceLedger {
            qubits: network
                .graph()
                .node_ids()
                .map(|v| network.qubit_capacity(v))
                .collect(),
            channels: network
                .graph()
                .edge_ids()
                .map(|e| network.channel_capacity(e))
                .collect(),
        }
    }

    /// The residual capacities as a snapshot the `qdn-core` solvers
    /// understand.
    pub fn snapshot(&self, network: &QdnNetwork) -> CapacitySnapshot {
        CapacitySnapshot::clamped(network, self.qubits.clone(), self.channels.clone())
    }

    /// Free qubits at node index `v`.
    pub fn free_qubits(&self, v: usize) -> u32 {
        self.qubits[v]
    }

    /// Free channels on edge index `e`.
    pub fn free_channels(&self, e: usize) -> u32 {
        self.channels[e]
    }

    /// Total free qubits across the network.
    pub fn total_free_qubits(&self) -> u64 {
        self.qubits.iter().map(|&q| q as u64).sum()
    }

    /// Total free channels across the network.
    pub fn total_free_channels(&self) -> u64 {
        self.channels.iter().map(|&w| w as u64).sum()
    }

    /// Per-node and per-edge demand of an allocation along a route:
    /// `n_e` channels on each route edge, `n_e` qubits at *each* endpoint
    /// (the paper's constraints (4)/(5)).
    fn demand(network: &QdnNetwork, route: &Path, allocation: &[u32]) -> (Demand, Demand) {
        debug_assert_eq!(route.hops(), allocation.len());
        let mut node_demand: Vec<(usize, u32)> = Vec::with_capacity(route.hops() + 1);
        let mut edge_demand: Vec<(usize, u32)> = Vec::with_capacity(route.hops());
        for (&edge, &n) in route.edges().iter().zip(allocation) {
            let (u, v) = network.graph().endpoints(edge);
            push_demand(&mut node_demand, u.index(), n);
            push_demand(&mut node_demand, v.index(), n);
            push_demand(&mut edge_demand, edge.index(), n);
        }
        (node_demand, edge_demand)
    }

    /// Atomically reserves the resources of one execution.
    ///
    /// # Errors
    ///
    /// Returns [`DesError::InsufficientResources`] (and changes nothing)
    /// if any node or edge cannot cover its demand.
    pub fn try_reserve(
        &mut self,
        network: &QdnNetwork,
        route: &Path,
        allocation: &[u32],
    ) -> Result<(), DesError> {
        let (node_demand, edge_demand) = Self::demand(network, route, allocation);
        for &(v, need) in &node_demand {
            if self.qubits[v] < need {
                return Err(DesError::InsufficientResources {
                    what: "qubits",
                    index: v,
                    need,
                    free: self.qubits[v],
                });
            }
        }
        for &(e, need) in &edge_demand {
            if self.channels[e] < need {
                return Err(DesError::InsufficientResources {
                    what: "channels",
                    index: e,
                    need,
                    free: self.channels[e],
                });
            }
        }
        for &(v, need) in &node_demand {
            self.qubits[v] -= need;
        }
        for &(e, need) in &edge_demand {
            self.channels[e] -= need;
        }
        Ok(())
    }

    /// Returns the resources of a finished execution to the pool.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the release would exceed the installed
    /// capacity (a double-release bug).
    pub fn release(&mut self, network: &QdnNetwork, route: &Path, allocation: &[u32]) {
        let (node_demand, edge_demand) = Self::demand(network, route, allocation);
        for &(v, n) in &node_demand {
            self.qubits[v] += n;
            debug_assert!(
                self.qubits[v] <= network.qubit_capacity(qdn_graph::NodeId(v as u32)),
                "double release at node {v}"
            );
        }
        for &(e, n) in &edge_demand {
            self.channels[e] += n;
            debug_assert!(
                self.channels[e] <= network.channel_capacity(qdn_graph::EdgeId(e as u32)),
                "double release at edge {e}"
            );
        }
    }
}

/// Accumulates `n` onto the entry for `index`, coalescing duplicates
/// (routes are simple paths, so the list stays tiny — no hashing needed).
fn push_demand(list: &mut Vec<(usize, u32)>, index: usize, n: u32) {
    if let Some(entry) = list.iter_mut().find(|(i, _)| *i == index) {
        entry.1 += n;
    } else {
        list.push((index, n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_graph::NodeId;
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_physics::link::LinkModel;

    /// Line 0-1-2 with 6 qubits per node and 4 channels per edge.
    fn line() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(6)).collect();
        let l = LinkModel::new(0.5).unwrap();
        b.add_edge(n[0], n[1], 4, l).unwrap();
        b.add_edge(n[1], n[2], 4, l).unwrap();
        b.build()
    }

    fn route(net: &QdnNetwork) -> Path {
        Path::from_nodes(net.graph(), vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap()
    }

    #[test]
    fn full_matches_installed_capacity() {
        let net = line();
        let ledger = ResourceLedger::full(&net);
        assert_eq!(ledger.total_free_qubits(), 18);
        assert_eq!(ledger.total_free_channels(), 8);
        assert_eq!(ledger.snapshot(&net), CapacitySnapshot::full(&net));
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let net = line();
        let mut ledger = ResourceLedger::full(&net);
        let r = route(&net);
        ledger.try_reserve(&net, &r, &[2, 3]).unwrap();
        // Node 1 is on both edges: 2 + 3 = 5 qubits used there.
        assert_eq!(ledger.free_qubits(1), 1);
        assert_eq!(ledger.free_qubits(0), 4);
        assert_eq!(ledger.free_qubits(2), 3);
        assert_eq!(ledger.free_channels(0), 2);
        assert_eq!(ledger.free_channels(1), 1);
        ledger.release(&net, &r, &[2, 3]);
        assert_eq!(ledger, ResourceLedger::full(&net));
    }

    #[test]
    fn reserve_fails_atomically() {
        let net = line();
        let mut ledger = ResourceLedger::full(&net);
        let r = route(&net);
        // Node 1 needs 3+4=7 > 6 qubits: must fail without touching
        // anything.
        let before = ledger.clone();
        let err = ledger.try_reserve(&net, &r, &[3, 4]).unwrap_err();
        assert!(matches!(
            err,
            DesError::InsufficientResources { what: "qubits", .. }
        ));
        assert_eq!(ledger, before);
    }

    #[test]
    fn channel_exhaustion_detected() {
        // Plenty of qubits (20/node) so only the 4-channel edges bind.
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(20)).collect();
        let l = LinkModel::new(0.5).unwrap();
        b.add_edge(n[0], n[1], 4, l).unwrap();
        b.add_edge(n[1], n[2], 4, l).unwrap();
        let net = b.build();
        let mut ledger = ResourceLedger::full(&net);
        let r = route(&net);
        ledger.try_reserve(&net, &r, &[3, 1]).unwrap();
        // Edge 0 has 1 channel left; asking 2 must fail.
        let err = ledger.try_reserve(&net, &r, &[2, 1]).unwrap_err();
        assert!(matches!(
            err,
            DesError::InsufficientResources {
                what: "channels",
                ..
            }
        ));
    }

    #[test]
    fn concurrent_reservations_contend() {
        let net = line();
        let mut ledger = ResourceLedger::full(&net);
        let r = route(&net);
        // Two executions of [1,1] fit ...
        ledger.try_reserve(&net, &r, &[1, 1]).unwrap();
        ledger.try_reserve(&net, &r, &[1, 1]).unwrap();
        // ... a third [2,2] exceeds node 1 (used 4 of 6, needs 4 more).
        assert!(ledger.try_reserve(&net, &r, &[2, 2]).is_err());
        // Releasing one makes room again.
        ledger.release(&net, &r, &[1, 1]);
        assert!(ledger.try_reserve(&net, &r, &[2, 2]).is_ok());
    }

    #[test]
    fn snapshot_reflects_reservations() {
        let net = line();
        let mut ledger = ResourceLedger::full(&net);
        let r = route(&net);
        ledger.try_reserve(&net, &r, &[1, 2]).unwrap();
        let snap = ledger.snapshot(&net);
        assert_eq!(snap.qubits(NodeId(1)), 3);
        assert_eq!(snap.channels(qdn_graph::EdgeId(1)), 2);
    }
}
