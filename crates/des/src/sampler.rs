//! Entanglement attempt processes: when does a link come up?
//!
//! The paper's link model (Eq. 1) is a *per-slot aggregate*: with `n`
//! channels and `A` attempts per channel per slot, a link succeeds with
//! `P_e(n) = 1 − (1 − p̃_e)^{n·A}`. The discrete-event simulator refines
//! this to a point process in time. All `n` channels attempt in lockstep
//! rounds of one attempt duration (the heralding round trip); the link is
//! established in the first round where *any* channel succeeds, i.e. the
//! round index is geometric with per-round success `ρ = 1 − (1 − p̃)^n`.
//!
//! Sampling the geometric by inversion (`⌈ln(1−u)/ln(1−ρ)⌉`) is exact and
//! O(1) per link, versus O(n·A) for simulating each Bernoulli attempt;
//! [`AttemptProcess::sample_bernoulli_within`] keeps the naive chain as a
//! cross-check (see `tests/proptests.rs` and the workspace
//! `des_validation` test). Truncating the geometric at `A` rounds
//! reproduces the paper's per-slot success probability *exactly*:
//! `P(K ≤ A) = 1 − (1 − ρ)^A = 1 − (1 − p̃)^{n·A} = P_e(n)`.

use rand::{Rng, RngExt};

use crate::DesError;

/// The attempt process of one quantum link: `channels` fiber channels,
/// each attempting entanglement with per-attempt success `p_attempt`, in
/// lockstep rounds.
///
/// # Example
///
/// ```
/// use qdn_des::sampler::AttemptProcess;
///
/// # fn main() -> Result<(), qdn_des::DesError> {
/// // Paper defaults: p̃ = 2e-4, three channels.
/// let proc = AttemptProcess::new(2e-4, 3)?;
/// // Matches Eq. 1 with A = 4000: P_e(3) = 1 - (1 - p_e)^3.
/// let p_slot = proc.success_within(4000);
/// assert!((p_slot - 0.9093).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptProcess {
    p_attempt: f64,
    channels: u32,
    /// `ln(1 − ρ) = channels · ln(1 − p_attempt)`, cached for inversion.
    ln_round_failure: f64,
}

impl AttemptProcess {
    /// Creates the process.
    ///
    /// # Errors
    ///
    /// Returns [`DesError::InvalidProbability`] unless
    /// `p_attempt ∈ (0, 1)`, and [`DesError::InvalidParameter`] when
    /// `channels == 0` (a link with no channels can never come up).
    pub fn new(p_attempt: f64, channels: u32) -> Result<Self, DesError> {
        if !(p_attempt > 0.0 && p_attempt < 1.0) {
            return Err(DesError::InvalidProbability {
                name: "per-attempt success probability",
                value: p_attempt,
            });
        }
        if channels == 0 {
            return Err(DesError::InvalidParameter {
                name: "channels",
                reason: "a link needs at least one channel",
            });
        }
        Ok(AttemptProcess {
            p_attempt,
            channels,
            ln_round_failure: channels as f64 * (-p_attempt).ln_1p(),
        })
    }

    /// Per-attempt success probability `p̃`.
    #[inline]
    pub fn p_attempt(&self) -> f64 {
        self.p_attempt
    }

    /// Number of parallel channels `n`.
    #[inline]
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Per-round success probability `ρ = 1 − (1 − p̃)^n`.
    pub fn round_success(&self) -> f64 {
        -self.ln_round_failure.exp_m1()
    }

    /// Probability the link is up within `rounds` rounds:
    /// `1 − (1 − p̃)^{n·rounds}` — the paper's Eq. 1 when
    /// `rounds = A`.
    pub fn success_within(&self, rounds: u64) -> f64 {
        -(rounds as f64 * self.ln_round_failure).exp_m1()
    }

    /// Samples the first-success round index (≥ 1) by inversion. The
    /// result is unbounded; callers enforce their own attempt window.
    pub fn sample_first_success<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // K = ceil(ln(1-u) / ln(1-ρ)); ln(1-u) via ln_1p for stability.
        let u: f64 = rng.random();
        let k = ((-u).ln_1p() / self.ln_round_failure).ceil();
        // u ≈ 1.0 can overflow any integer type; clamp to a round index
        // far beyond any realistic window.
        if k.is_finite() && k < u64::MAX as f64 {
            (k as u64).max(1)
        } else {
            u64::MAX
        }
    }

    /// Samples the first-success round within a window of `max_rounds`
    /// rounds; `None` when every attempt in the window fails.
    pub fn sample_within<R: Rng + ?Sized>(&self, rng: &mut R, max_rounds: u64) -> Option<u64> {
        let k = self.sample_first_success(rng);
        (k <= max_rounds).then_some(k)
    }

    /// The naive O(n·A) sampler: simulates every per-channel Bernoulli
    /// attempt. Distributionally identical to [`Self::sample_within`];
    /// kept as the ground truth the inversion sampler is validated
    /// against (and for tiny windows where exactness of the *stream* of
    /// random draws matters to a caller).
    pub fn sample_bernoulli_within<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        max_rounds: u64,
    ) -> Option<u64> {
        for round in 1..=max_rounds {
            for _ in 0..self.channels {
                let u: f64 = rng.random();
                if u < self.p_attempt {
                    return Some(round);
                }
            }
        }
        None
    }

    /// Expected number of rounds until success, conditioned on nothing
    /// (`1/ρ`; may exceed any practical window for weak links).
    pub fn mean_rounds(&self) -> f64 {
        1.0 / self.round_success()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn new_validates() {
        assert!(AttemptProcess::new(0.0, 1).is_err());
        assert!(AttemptProcess::new(1.0, 1).is_err());
        assert!(AttemptProcess::new(f64::NAN, 1).is_err());
        assert!(AttemptProcess::new(0.5, 0).is_err());
        assert!(AttemptProcess::new(2e-4, 3).is_ok());
    }

    #[test]
    fn round_success_matches_closed_form() {
        let p = AttemptProcess::new(2e-4, 5).unwrap();
        let expected = 1.0 - (1.0 - 2e-4f64).powi(5);
        assert!((p.round_success() - expected).abs() < 1e-15);
    }

    #[test]
    fn success_within_reproduces_paper_eq1() {
        // P(K ≤ A) must equal P_e(n) = 1 - (1 - p̃)^{nA}.
        let proc = AttemptProcess::new(2e-4, 3).unwrap();
        let direct = 1.0 - (1.0 - 2e-4f64).powf(3.0 * 4000.0);
        assert!((proc.success_within(4000) - direct).abs() < 1e-12);
        // And via the physics crate's numerically careful kernel.
        let p_e = qdn_physics::prob::at_least_one(2e-4, 4000.0);
        let link = qdn_physics::prob::at_least_one(p_e, 3.0);
        assert!((proc.success_within(4000) - link).abs() < 1e-9);
    }

    #[test]
    fn sample_always_at_least_one_round() {
        let proc = AttemptProcess::new(0.99, 4).unwrap();
        let mut r = rng(1);
        for _ in 0..100 {
            assert!(proc.sample_first_success(&mut r) >= 1);
        }
    }

    #[test]
    fn sample_within_respects_window() {
        let proc = AttemptProcess::new(0.01, 1).unwrap();
        let mut r = rng(2);
        for _ in 0..500 {
            if let Some(k) = proc.sample_within(&mut r, 50) {
                assert!((1..=50).contains(&k));
            }
        }
    }

    #[test]
    fn empirical_rate_matches_analytic() {
        let proc = AttemptProcess::new(2e-4, 2).unwrap();
        let mut r = rng(3);
        let window = 4000;
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| proc.sample_within(&mut r, window).is_some())
            .count();
        let rate = hits as f64 / trials as f64;
        let expected = proc.success_within(window);
        // 20k trials: 4σ ≈ 4·sqrt(p(1-p)/20000) ≈ 0.013.
        assert!(
            (rate - expected).abs() < 0.015,
            "empirical {rate} vs analytic {expected}"
        );
    }

    #[test]
    fn bernoulli_and_inversion_agree_in_distribution() {
        let proc = AttemptProcess::new(0.05, 2).unwrap();
        let window = 40;
        let trials = 20_000;
        let mean = |samples: Vec<Option<u64>>| {
            let succ: Vec<u64> = samples.into_iter().flatten().collect();
            (
                succ.len() as f64 / trials as f64,
                succ.iter().sum::<u64>() as f64 / succ.len().max(1) as f64,
            )
        };
        let mut r1 = rng(4);
        let (rate_inv, mean_inv) = mean(
            (0..trials)
                .map(|_| proc.sample_within(&mut r1, window))
                .collect(),
        );
        let mut r2 = rng(5);
        let (rate_ber, mean_ber) = mean(
            (0..trials)
                .map(|_| proc.sample_bernoulli_within(&mut r2, window))
                .collect(),
        );
        assert!(
            (rate_inv - rate_ber).abs() < 0.02,
            "success rates diverge: {rate_inv} vs {rate_ber}"
        );
        assert!(
            (mean_inv - mean_ber).abs() < 0.6,
            "mean first-success rounds diverge: {mean_inv} vs {mean_ber}"
        );
    }

    #[test]
    fn more_channels_come_up_faster() {
        let slow = AttemptProcess::new(0.01, 1).unwrap();
        let fast = AttemptProcess::new(0.01, 8).unwrap();
        assert!(fast.mean_rounds() < slow.mean_rounds());
        assert!(fast.success_within(100) > slow.success_within(100));
    }

    #[test]
    fn mean_rounds_matches_geometric_mean() {
        let proc = AttemptProcess::new(0.25, 1).unwrap();
        assert!((proc.mean_rounds() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn extreme_u_does_not_overflow() {
        // Directly exercise the clamp path with a degenerate process.
        let proc = AttemptProcess::new(1e-12, 1).unwrap();
        let mut r = rng(6);
        for _ in 0..1000 {
            let k = proc.sample_first_success(&mut r);
            assert!(k >= 1);
        }
    }
}
