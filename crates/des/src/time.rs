//! Simulation time: a strictly ordered, nanosecond-resolution clock.
//!
//! The slotted simulator (`qdn-sim`) abstracts time into slot indices; the
//! discrete-event simulator needs real timestamps because entanglement
//! attempts (≈ 165 µs), decoherence (≈ 1.46 s) and request arrivals all
//! live on a continuous axis. [`SimTime`] is a nanosecond counter from the
//! start of the simulation — integer, so event ordering is exact and runs
//! are bit-for-bit reproducible (no float-accumulation drift).

use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since the simulation epoch.
///
/// # Example
///
/// ```
/// use qdn_des::time::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_micros(165);
/// assert_eq!(t.as_nanos(), 165_000);
/// assert!(t > SimTime::ZERO);
/// assert_eq!(t - SimTime::ZERO, Duration::from_micros(165));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "never" sentinel for
    /// deadlines that are not scheduled).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time stamp from nanoseconds since the epoch.
    pub fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time stamp from whole microseconds since the epoch.
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros.saturating_mul(1_000))
    }

    /// Creates a time stamp from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "sim time must be finite and non-negative, got {secs}"
        );
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for statistics and display).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The elapsed duration since `earlier`.
    ///
    /// Returns [`Duration::ZERO`] when `earlier` is later than `self`
    /// (saturating, mirroring [`std::time::Instant::saturating_duration_since`]).
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_add(d.as_nanos().min(u64::MAX as u128) as u64),
        )
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// The duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(rhs <= self, "SimTime subtraction went negative");
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_micros(165);
        let b = a + Duration::from_micros(165);
        assert!(b > a);
        assert_eq!(b - a, Duration::from_micros(165));
        assert_eq!(b.as_nanos(), 330_000);
    }

    #[test]
    fn from_secs_round_trips() {
        let t = SimTime::from_secs_f64(1.46);
        assert_eq!(t.as_nanos(), 1_460_000_000);
        assert!((t.as_secs_f64() - 1.46).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-0.1);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::MAX.saturating_add(Duration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_micros(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += Duration::from_millis(2);
        assert_eq!(t.as_nanos(), 2_000_000);
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(SimTime::from_secs_f64(0.5).to_string(), "0.500000s");
    }

    #[test]
    fn default_is_epoch() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
