//! Latency and outcome statistics for event-driven runs.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Summary statistics of a latency sample (time from request admission to
/// end-to-end entanglement delivery).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: usize,
    /// Mean latency in seconds.
    pub mean_secs: f64,
    /// Median (50th percentile) in seconds.
    pub p50_secs: f64,
    /// 90th percentile in seconds.
    pub p90_secs: f64,
    /// 99th percentile in seconds.
    pub p99_secs: f64,
    /// Maximum observed latency in seconds.
    pub max_secs: f64,
}

impl LatencySummary {
    /// Summarizes a latency sample. Returns `None` for an empty sample
    /// (there is no meaningful percentile of nothing).
    pub fn from_durations(sample: &[Duration]) -> Option<Self> {
        if sample.is_empty() {
            return None;
        }
        let mut secs: Vec<f64> = sample.iter().map(Duration::as_secs_f64).collect();
        secs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let mean = secs.iter().sum::<f64>() / secs.len() as f64;
        Some(LatencySummary {
            count: secs.len(),
            mean_secs: mean,
            p50_secs: percentile(&secs, 0.50),
            p90_secs: percentile(&secs, 0.90),
            p99_secs: percentile(&secs, 0.99),
            max_secs: *secs.last().expect("non-empty"),
        })
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4}s p50={:.4}s p90={:.4}s p99={:.4}s max={:.4}s",
            self.count, self.mean_secs, self.p50_secs, self.p90_secs, self.p99_secs, self.max_secs
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted sample, `q ∈ [0, 1]`.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(values: &[u64]) -> Vec<Duration> {
        values.iter().map(|&v| Duration::from_millis(v)).collect()
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(LatencySummary::from_durations(&[]).is_none());
    }

    #[test]
    fn single_observation() {
        let s = LatencySummary::from_durations(&ms(&[100])).unwrap();
        assert_eq!(s.count, 1);
        assert!((s.mean_secs - 0.1).abs() < 1e-12);
        assert_eq!(s.p50_secs, 0.1);
        assert_eq!(s.p99_secs, 0.1);
        assert_eq!(s.max_secs, 0.1);
    }

    #[test]
    fn percentiles_of_uniform_ladder() {
        // 1..=100 ms: p50 = 50 ms, p90 = 90 ms, p99 = 99 ms, max = 100 ms.
        let sample: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_durations(&ms(&sample)).unwrap();
        assert!((s.p50_secs - 0.050).abs() < 1e-12);
        assert!((s.p90_secs - 0.090).abs() < 1e-12);
        assert!((s.p99_secs - 0.099).abs() < 1e-12);
        assert!((s.max_secs - 0.100).abs() < 1e-12);
        assert!((s.mean_secs - 0.0505).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let s = LatencySummary::from_durations(&ms(&[30, 10, 20])).unwrap();
        assert_eq!(s.p50_secs, 0.020);
        assert_eq!(s.max_secs, 0.030);
    }

    #[test]
    fn display_is_compact() {
        let s = LatencySummary::from_durations(&ms(&[10, 20])).unwrap();
        let text = s.to_string();
        assert!(text.starts_with("n=2"));
        assert!(text.contains("p99="));
    }
}
