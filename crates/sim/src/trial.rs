//! Seeded multi-trial execution.
//!
//! The paper averages 5 trials per data point (§V-A-2). Trials are
//! embarrassingly parallel; this module fans them out over OS threads
//! with `std::thread::scope` (no extra dependencies) while keeping
//! results in deterministic trial order.

use qdn_core::policy::RoutingPolicy;
use qdn_net::dynamics::ResourceDynamics;
use qdn_net::workload::Workload;
use qdn_net::QdnNetwork;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::engine::{run, SimConfig};
use crate::metrics::RunMetrics;

/// Everything one trial needs, built fresh from a trial seed.
pub struct TrialSetup {
    /// The network instance (topology + capacities drawn from the seed).
    pub network: QdnNetwork,
    /// The request generator.
    pub workload: Box<dyn Workload>,
    /// The resource-occupancy process.
    pub dynamics: Box<dyn ResourceDynamics>,
    /// The policy under test (fresh state).
    pub policy: Box<dyn RoutingPolicy>,
}

/// Multi-trial parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialConfig {
    /// Number of trials (paper: 5).
    pub trials: usize,
    /// Base seed; trial `i` uses `base_seed + i` for the environment and
    /// a derived stream for the policy.
    pub base_seed: u64,
    /// Per-trial simulation parameters.
    pub sim: SimConfig,
}

impl TrialConfig {
    /// The paper's defaults: 5 trials over 200 slots.
    pub fn paper_default() -> Self {
        TrialConfig {
            trials: 5,
            base_seed: 0x0DD5_EED5,
            sim: SimConfig::paper_default(),
        }
    }
}

impl Default for TrialConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The environment seed of trial `i`.
pub fn trial_seed(base_seed: u64, trial: usize) -> u64 {
    base_seed.wrapping_add(trial as u64)
}

/// Runs `config.trials` independent trials in parallel and returns their
/// metrics in trial order.
///
/// `setup` receives the trial's environment seed and must build the
/// complete [`TrialSetup`]; drawing the network from an RNG seeded with
/// that value guarantees that different policies evaluated through
/// separate `run_trials` calls with the same `base_seed` face identical
/// networks and request sequences.
pub fn run_trials<F>(config: &TrialConfig, setup: F) -> Vec<RunMetrics>
where
    F: Fn(u64) -> TrialSetup + Sync,
{
    let mut results: Vec<Option<RunMetrics>> = (0..config.trials).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (i, slot) in results.iter_mut().enumerate() {
            let setup = &setup;
            let sim = config.sim;
            let seed = trial_seed(config.base_seed, i);
            scope.spawn(move || {
                let mut ts = setup(seed);
                // Environment stream: network build already consumed part
                // of a seed-derived stream inside `setup`; the run uses a
                // continuation seeded deterministically from the trial
                // seed so the sample path is reproducible.
                let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x00E0_0E0E_0E0E_0E0E);
                let mut policy_rng =
                    rand::rngs::StdRng::seed_from_u64(seed ^ 0x7011_C711_57EA_0000);
                *slot = Some(run(
                    &ts.network,
                    ts.workload.as_mut(),
                    ts.dynamics.as_mut(),
                    ts.policy.as_mut(),
                    &sim,
                    &mut env_rng,
                    &mut policy_rng,
                ));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every trial thread completes"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_core::oscar::{OscarConfig, OscarPolicy};
    use qdn_net::dynamics::StaticDynamics;
    use qdn_net::workload::UniformWorkload;
    use qdn_net::NetworkConfig;

    fn oscar_setup(seed: u64) -> TrialSetup {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TrialSetup {
            network: NetworkConfig::paper_default().build(&mut rng).unwrap(),
            workload: Box::new(UniformWorkload::paper_default()),
            dynamics: Box::new(StaticDynamics),
            policy: Box::new(OscarPolicy::new(OscarConfig::paper_default())),
        }
    }

    fn small_config(trials: usize) -> TrialConfig {
        TrialConfig {
            trials,
            base_seed: 99,
            sim: SimConfig {
                horizon: 10,
                realize_outcomes: true,
            },
        }
    }

    #[test]
    fn runs_requested_trials_in_order() {
        let results = run_trials(&small_config(3), oscar_setup);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.slots().len(), 10);
            assert_eq!(r.policy(), "OSCAR");
        }
    }

    #[test]
    fn reproducible_across_invocations() {
        let a = run_trials(&small_config(2), oscar_setup);
        let b = run_trials(&small_config(2), oscar_setup);
        assert_eq!(a, b);
    }

    #[test]
    fn different_trials_differ() {
        let results = run_trials(&small_config(2), oscar_setup);
        // Different seeds -> different networks/workloads -> different
        // trajectories (with overwhelming probability).
        assert_ne!(results[0], results[1]);
    }

    #[test]
    fn same_environment_for_different_policies() {
        let oscar_runs = run_trials(&small_config(2), oscar_setup);
        let mf_runs = run_trials(&small_config(2), |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            TrialSetup {
                network: NetworkConfig::paper_default().build(&mut rng).unwrap(),
                workload: Box::new(UniformWorkload::paper_default()),
                dynamics: Box::new(StaticDynamics),
                policy: Box::new(qdn_core::baselines::MyopicPolicy::fixed()),
            }
        });
        for (o, m) in oscar_runs.iter().zip(&mf_runs) {
            let ro: Vec<usize> = o.slots().iter().map(|s| s.requests).collect();
            let rm: Vec<usize> = m.slots().iter().map(|s| s.requests).collect();
            assert_eq!(ro, rm, "request sample paths must match across policies");
        }
    }

    #[test]
    fn trial_seed_arithmetic() {
        assert_eq!(trial_seed(10, 0), 10);
        assert_eq!(trial_seed(10, 3), 13);
        assert_eq!(trial_seed(u64::MAX, 1), 0); // wrapping
    }
}
