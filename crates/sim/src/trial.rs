//! Seeded multi-trial execution.
//!
//! The paper averages 5 trials per data point (§V-A-2). Trials are
//! embarrassingly parallel; this module fans them out on the shared
//! work-stealing pool (`crates/compat/threadpool`), sized by
//! [`TrialConfig::threads`], while keeping results in deterministic
//! trial order — each trial is a pure function of its seed and results
//! are gathered in trial-index order, so a run's `RunMetrics` are
//! byte-identical at every pool width (see
//! `parallel_trials_byte_identical_to_serial`).

use qdn_core::policy::RoutingPolicy;
use qdn_net::dynamics::ResourceDynamics;
use qdn_net::workload::Workload;
use qdn_net::QdnNetwork;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::engine::{run, SimConfig};
use crate::metrics::RunMetrics;

/// Everything one trial needs, built fresh from a trial seed.
pub struct TrialSetup {
    /// The network instance (topology + capacities drawn from the seed).
    pub network: QdnNetwork,
    /// The request generator.
    pub workload: Box<dyn Workload>,
    /// The resource-occupancy process.
    pub dynamics: Box<dyn ResourceDynamics>,
    /// The policy under test (fresh state).
    pub policy: Box<dyn RoutingPolicy>,
}

/// Multi-trial parameters.
///
/// `threads` is **required** in the wire form (PR 10, deliberately a
/// loud serde break — see MIGRATION.md §PR 10): a trial config now
/// *owns* its execution engine instead of inheriting whatever the host
/// process happened to configure, so the same config file reproduces
/// the same run shape everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialConfig {
    /// Number of trials (paper: 5).
    pub trials: usize,
    /// Base seed; trial `i` uses `base_seed + i` for the environment and
    /// a derived stream for the policy.
    pub base_seed: u64,
    /// Worker threads for the trial fan-out: `0` = one per available
    /// CPU. Results are byte-identical at every width — this knob trades
    /// wall-clock for cores, never determinism.
    pub threads: usize,
    /// Per-trial simulation parameters.
    pub sim: SimConfig,
}

impl TrialConfig {
    /// The paper's defaults: 5 trials over 200 slots, auto-sized pool.
    pub fn paper_default() -> Self {
        TrialConfig {
            trials: 5,
            base_seed: 0x0DD5_EED5,
            threads: 0,
            sim: SimConfig::paper_default(),
        }
    }
}

impl Default for TrialConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The environment seed of trial `i`.
pub fn trial_seed(base_seed: u64, trial: usize) -> u64 {
    base_seed.wrapping_add(trial as u64)
}

/// Runs `config.trials` independent trials in parallel and returns their
/// metrics in trial order.
///
/// `setup` receives the trial's environment seed and must build the
/// complete [`TrialSetup`]; drawing the network from an RNG seeded with
/// that value guarantees that different policies evaluated through
/// separate `run_trials` calls with the same `base_seed` face identical
/// networks and request sequences.
pub fn run_trials<F>(config: &TrialConfig, setup: F) -> Vec<RunMetrics>
where
    F: Fn(u64) -> TrialSetup + Sync,
{
    let sim = config.sim;
    // `global_with` keeps one long-lived pool per width for the process
    // lifetime, so repeated experiment sweeps reuse warm workers instead
    // of respawning threads per call. `map_indexed` gathers in
    // trial-index order; each trial is a pure function of its seed, so
    // the result vector is byte-identical at every pool width.
    threadpool::global_with(config.threads).map_indexed(config.trials, |i| {
        let seed = trial_seed(config.base_seed, i);
        let mut ts = setup(seed);
        // Environment stream: network build already consumed part of a
        // seed-derived stream inside `setup`; the run uses a
        // continuation seeded deterministically from the trial seed so
        // the sample path is reproducible.
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x00E0_0E0E_0E0E_0E0E);
        let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x7011_C711_57EA_0000);
        run(
            &ts.network,
            ts.workload.as_mut(),
            ts.dynamics.as_mut(),
            ts.policy.as_mut(),
            &sim,
            &mut env_rng,
            &mut policy_rng,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_core::oscar::{OscarConfig, OscarPolicy};
    use qdn_net::dynamics::StaticDynamics;
    use qdn_net::workload::UniformWorkload;
    use qdn_net::NetworkConfig;

    fn oscar_setup(seed: u64) -> TrialSetup {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TrialSetup {
            network: NetworkConfig::paper_default().build(&mut rng).unwrap(),
            workload: Box::new(UniformWorkload::paper_default()),
            dynamics: Box::new(StaticDynamics),
            policy: Box::new(OscarPolicy::new(OscarConfig::paper_default())),
        }
    }

    fn small_config(trials: usize) -> TrialConfig {
        TrialConfig {
            trials,
            base_seed: 99,
            threads: 0,
            sim: SimConfig {
                horizon: 10,
                realize_outcomes: true,
            },
        }
    }

    #[test]
    fn runs_requested_trials_in_order() {
        let results = run_trials(&small_config(3), oscar_setup);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.slots().len(), 10);
            assert_eq!(r.policy(), "OSCAR");
        }
    }

    #[test]
    fn reproducible_across_invocations() {
        let a = run_trials(&small_config(2), oscar_setup);
        let b = run_trials(&small_config(2), oscar_setup);
        assert_eq!(a, b);
    }

    #[test]
    fn different_trials_differ() {
        let results = run_trials(&small_config(2), oscar_setup);
        // Different seeds -> different networks/workloads -> different
        // trajectories (with overwhelming probability).
        assert_ne!(results[0], results[1]);
    }

    #[test]
    fn same_environment_for_different_policies() {
        let oscar_runs = run_trials(&small_config(2), oscar_setup);
        let mf_runs = run_trials(&small_config(2), |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            TrialSetup {
                network: NetworkConfig::paper_default().build(&mut rng).unwrap(),
                workload: Box::new(UniformWorkload::paper_default()),
                dynamics: Box::new(StaticDynamics),
                policy: Box::new(qdn_core::baselines::MyopicPolicy::fixed()),
            }
        });
        for (o, m) in oscar_runs.iter().zip(&mf_runs) {
            let ro: Vec<usize> = o.slots().iter().map(|s| s.requests).collect();
            let rm: Vec<usize> = m.slots().iter().map(|s| s.requests).collect();
            assert_eq!(ro, rm, "request sample paths must match across policies");
        }
    }

    #[test]
    fn parallel_trials_byte_identical_to_serial() {
        let mut serial_cfg = small_config(4);
        serial_cfg.threads = 1;
        let mut parallel_cfg = small_config(4);
        parallel_cfg.threads = 4;
        let serial = run_trials(&serial_cfg, oscar_setup);
        let parallel = run_trials(&parallel_cfg, oscar_setup);
        // Compare the serialized wire form: byte-identical, not merely
        // structurally equal.
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }

    #[test]
    fn threads_field_is_required_in_wire_form() {
        // PR 10's deliberate loud break: a config without `threads`
        // must be rejected, not silently defaulted.
        let legacy = r#"{"trials":2,"base_seed":5,"sim":{"horizon":10,"realize_outcomes":true}}"#;
        assert!(serde_json::from_str::<TrialConfig>(legacy).is_err());
        let current = r#"{"trials":2,"base_seed":5,"threads":1,"sim":{"horizon":10,"realize_outcomes":true}}"#;
        let parsed: TrialConfig = serde_json::from_str(current).unwrap();
        assert_eq!(parsed.threads, 1);
    }

    #[test]
    fn trial_seed_arithmetic() {
        assert_eq!(trial_seed(10, 0), 10);
        assert_eq!(trial_seed(10, 3), 13);
        assert_eq!(trial_seed(u64::MAX, 1), 0); // wrapping
    }
}
