//! Summary statistics for experiment outputs.

use serde::{Deserialize, Serialize};

/// Mean/σ/min/max summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample (empty samples produce zeros).
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        };
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Half-width of the ~95% normal confidence interval
    /// (`1.96·σ/√n`; 0 for n < 2).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on the sorted
/// sample. Empty input yields 0.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// A fixed-width histogram over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins over `[lo, hi]`.
    /// Out-of-range samples clamp into the edge bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(values: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "lo must be below hi");
        let mut counts = vec![0u64; bins];
        for &v in values {
            let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            let idx = ((frac * bins as f64) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Histogram {
            lo,
            hi,
            counts,
            total: values.len() as u64,
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin fractions (counts normalised by the total; zeros when empty).
    pub fn fractions(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| {
                if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                }
            })
            .collect()
    }

    /// `(center, count)` pairs for plotting/printing.
    pub fn bars(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }
}

/// Element-wise mean of several equally long series (e.g. averaging a
/// metric across trials).
///
/// # Panics
///
/// Panics if series lengths differ.
pub fn mean_series(series: &[Vec<f64>]) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let len = series[0].len();
    for s in series {
        assert_eq!(s.len(), len, "series must have equal length");
    }
    (0..len)
        .map(|i| series.iter().map(|s| s[i]).sum::<f64>() / series.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn quantiles() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let h = Histogram::new(&[0.05, 0.15, 0.95, 1.5, -0.5], 0.0, 1.0, 10);
        assert_eq!(h.counts()[0], 2); // 0.05 and clamped -0.5
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 2); // 0.95 and clamped 1.5
        let fr = h.fractions();
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let bars = h.bars();
        assert!((bars[0].0 - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(&[], 0.0, 1.0, 0);
    }

    #[test]
    fn mean_series_averages() {
        let s = mean_series(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(s, vec![2.0, 3.0]);
        assert!(mean_series(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mean_series_length_mismatch() {
        let _ = mean_series(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
