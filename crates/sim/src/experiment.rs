//! Serializable experiment descriptions.
//!
//! An [`Experiment`] bundles a network configuration, a workload, a
//! dynamics model, and a set of policies, and runs every policy over the
//! *same* seeded trial environments — the paired design the paper's
//! comparisons rely on.

use qdn_core::baselines::{
    MinimalRandomPolicy, MyopicConfig, MyopicPolicy, ThroughputGreedyPolicy,
};
use qdn_core::oscar::{OscarConfig, OscarPolicy};
use qdn_core::policy::RoutingPolicy;
use qdn_core::route_selection::RouteSelector;
use qdn_net::dynamics::DynamicsConfig;
use qdn_net::routes::RouteLimits;
use qdn_net::workload::WorkloadConfig;
use qdn_net::NetworkConfig;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::metrics::RunMetrics;
use crate::trial::{run_trials, TrialConfig, TrialSetup};

/// A policy selection that can be written to a config file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// OSCAR with the given configuration.
    Oscar(OscarConfig),
    /// A myopic baseline (MF or MA per its `split`).
    Myopic(MyopicConfig),
    /// The random-route, minimal-allocation ablation.
    RandomMin {
        /// Candidate route limits.
        route_limits: RouteLimits,
    },
    /// The budget-oblivious throughput maximizer (capacity-saturating
    /// allocation, no spending cap) — the "what if we ignore cost"
    /// strawman.
    ThroughputGreedy {
        /// Candidate route limits.
        route_limits: RouteLimits,
        /// Route-selection strategy.
        selector: RouteSelector,
    },
}

impl PolicySpec {
    /// Instantiates a fresh policy.
    pub fn build(&self) -> Box<dyn RoutingPolicy> {
        match self {
            PolicySpec::Oscar(cfg) => Box::new(OscarPolicy::new(cfg.clone())),
            PolicySpec::Myopic(cfg) => Box::new(MyopicPolicy::new(cfg.clone())),
            PolicySpec::RandomMin { route_limits } => {
                Box::new(MinimalRandomPolicy::new(*route_limits))
            }
            PolicySpec::ThroughputGreedy {
                route_limits,
                selector,
            } => Box::new(ThroughputGreedyPolicy::new(*route_limits, selector.clone())),
        }
    }

    /// The display name the built policy will report.
    pub fn name(&self) -> String {
        self.build().name()
    }
}

/// A complete experiment: environment × policies × trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Experiment identifier (e.g. `"fig3"`).
    pub name: String,
    /// Network generation parameters.
    pub network: NetworkConfig,
    /// Request workload.
    pub workload: WorkloadConfig,
    /// Resource-occupancy dynamics.
    pub dynamics: DynamicsConfig,
    /// Trials and horizon.
    pub trials: TrialConfig,
    /// The policies to compare.
    pub policies: Vec<PolicySpec>,
}

/// All runs of one experiment, grouped per policy in specification order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResults {
    /// The experiment name.
    pub name: String,
    /// `runs[i]` are the per-trial metrics of `policies[i]`.
    pub runs: Vec<PolicyRuns>,
}

/// The per-trial runs of one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRuns {
    /// Policy display name.
    pub policy: String,
    /// One [`RunMetrics`] per trial.
    pub trials: Vec<RunMetrics>,
}

impl PolicyRuns {
    /// Mean over trials of a per-run scalar.
    pub fn mean_of<F: Fn(&RunMetrics) -> f64>(&self, f: F) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().map(f).sum::<f64>() / self.trials.len() as f64
    }

    /// Trial-averaged series of a per-run series (all trials must share
    /// the horizon).
    pub fn mean_series_of<F: Fn(&RunMetrics) -> Vec<f64>>(&self, f: F) -> Vec<f64> {
        let series: Vec<Vec<f64>> = self.trials.iter().map(f).collect();
        crate::stats::mean_series(&series)
    }

    /// All per-request success probabilities pooled over trials (Fig. 4).
    pub fn pooled_success_probs(&self) -> Vec<f64> {
        self.trials
            .iter()
            .flat_map(RunMetrics::all_success_probs)
            .collect()
    }
}

impl Experiment {
    /// The paper's default environment with the three §V policies
    /// (OSCAR, MF, MA).
    pub fn paper_default(name: impl Into<String>) -> Self {
        Experiment {
            name: name.into(),
            network: NetworkConfig::paper_default(),
            workload: WorkloadConfig::paper_default(),
            dynamics: DynamicsConfig::Static,
            trials: TrialConfig::paper_default(),
            policies: vec![
                PolicySpec::Oscar(OscarConfig::paper_default()),
                PolicySpec::Myopic(MyopicConfig::paper_default(
                    qdn_core::baselines::BudgetSplit::Fixed,
                )),
                PolicySpec::Myopic(MyopicConfig::paper_default(
                    qdn_core::baselines::BudgetSplit::Adaptive,
                )),
            ],
        }
    }

    /// Runs every policy over the same seeded environments.
    pub fn run(&self) -> ExperimentResults {
        let runs = self
            .policies
            .iter()
            .map(|spec| {
                let trials = run_trials(&self.trials, |seed| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                    TrialSetup {
                        network: self
                            .network
                            .build(&mut rng)
                            .expect("experiment network config must be valid"),
                        workload: self.workload.build(),
                        dynamics: self.dynamics.build(),
                        policy: spec.build(),
                    }
                });
                PolicyRuns {
                    policy: spec.name(),
                    trials,
                }
            })
            .collect();
        ExperimentResults {
            name: self.name.clone(),
            runs,
        }
    }
}

impl ExperimentResults {
    /// Looks up a policy's runs by name.
    pub fn policy(&self, name: &str) -> Option<&PolicyRuns> {
        self.runs.iter().find(|r| r.policy == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;

    fn tiny_experiment() -> Experiment {
        let mut e = Experiment::paper_default("test");
        e.trials = TrialConfig {
            trials: 2,
            base_seed: 5,
            threads: 0,
            sim: SimConfig {
                horizon: 6,
                realize_outcomes: true,
            },
        };
        e
    }

    #[test]
    fn runs_all_policies_over_same_environments() {
        let results = tiny_experiment().run();
        assert_eq!(results.runs.len(), 3);
        assert_eq!(results.runs[0].policy, "OSCAR");
        assert_eq!(results.runs[1].policy, "MF");
        assert_eq!(results.runs[2].policy, "MA");
        // Paired environments: request counts match across policies.
        for trial in 0..2 {
            let counts: Vec<Vec<usize>> = results
                .runs
                .iter()
                .map(|p| p.trials[trial].slots().iter().map(|s| s.requests).collect())
                .collect();
            assert_eq!(counts[0], counts[1]);
            assert_eq!(counts[1], counts[2]);
        }
    }

    #[test]
    fn policy_lookup() {
        let results = tiny_experiment().run();
        assert!(results.policy("OSCAR").is_some());
        assert!(results.policy("nope").is_none());
    }

    #[test]
    fn mean_helpers() {
        let results = tiny_experiment().run();
        let oscar = results.policy("OSCAR").unwrap();
        let mean_cost = oscar.mean_of(|r| r.total_cost() as f64);
        assert!(mean_cost > 0.0);
        let series = oscar.mean_series_of(|r| r.running_avg_success());
        assert_eq!(series.len(), 6);
        assert!(!oscar.pooled_success_probs().is_empty());
    }

    #[test]
    fn spec_names() {
        assert_eq!(
            PolicySpec::Oscar(OscarConfig::paper_default()).name(),
            "OSCAR"
        );
        assert_eq!(
            PolicySpec::RandomMin {
                route_limits: RouteLimits::paper_default()
            }
            .name(),
            "Random-Min"
        );
        assert_eq!(
            PolicySpec::ThroughputGreedy {
                route_limits: RouteLimits::paper_default(),
                selector: RouteSelector::default(),
            }
            .name(),
            "Throughput-Greedy"
        );
    }

    #[test]
    fn specs_round_trip_through_json() {
        let specs = vec![
            PolicySpec::Oscar(OscarConfig::paper_default()),
            PolicySpec::RandomMin {
                route_limits: RouteLimits::paper_default(),
            },
            PolicySpec::ThroughputGreedy {
                route_limits: RouteLimits::paper_default(),
                selector: RouteSelector::default(),
            },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: PolicySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }
}
