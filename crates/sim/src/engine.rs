//! The per-slot simulation loop.

use qdn_core::policy::RoutingPolicy;
use qdn_core::types::SlotState;
use qdn_net::dynamics::{ChurnEventKind, ResourceDynamics};
use qdn_net::workload::Workload;
use qdn_net::QdnNetwork;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::audit::audit_decision;
use crate::metrics::{RunMetrics, SlotRecord};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of slots `T`.
    pub horizon: u64,
    /// Additionally draw Bernoulli outcomes per request (the
    /// physical-layer realization; the analytic probabilities are always
    /// recorded).
    pub realize_outcomes: bool,
}

impl SimConfig {
    /// The paper's default horizon `T = 200` with outcome realization.
    pub fn paper_default() -> Self {
        SimConfig {
            horizon: 200,
            realize_outcomes: true,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Runs one policy over one request/capacity sample path.
///
/// Per slot: sample `Φ_t` from the workload and `(Q^t, W^t)` from the
/// dynamics, let the policy decide, audit the decision against the
/// capacity constraints (panicking in debug builds on violation — a
/// policy bug), optionally realize Bernoulli outcomes, and record
/// metrics.
///
/// Randomness is split into two independent streams so experiments can
/// compare policies on *identical* sample paths: `env_rng` drives the
/// workload, the resource dynamics, and outcome realization (exactly one
/// uniform draw per request, regardless of how many requests a policy
/// serves); `policy_rng` drives the policy's internal randomization
/// (Gibbs proposals, tie breaking).
///
/// # Selection-session lifecycle
///
/// Policies own their cross-slot selection state (a
/// `qdn_core::SelectorSession`: evaluator arena, memo epochs, λ
/// warm-start stores, the previous slot's selected profile) and carry
/// it across the `decide` calls of one run — that is the whole point of
/// the session. Trial isolation is the caller's contract: either build
/// a fresh policy per trial (what [`crate::trial::run_trials`] does) or
/// call [`RoutingPolicy::reset`] between runs, which clears the session
/// along with queues and spend.
///
/// # Panics
///
/// Panics (debug builds) when a policy violates the capacity constraints.
pub fn run(
    network: &QdnNetwork,
    workload: &mut dyn Workload,
    dynamics: &mut dyn ResourceDynamics,
    policy: &mut dyn RoutingPolicy,
    config: &SimConfig,
    env_rng: &mut dyn rand::Rng,
    policy_rng: &mut dyn rand::Rng,
) -> RunMetrics {
    let mut metrics = RunMetrics::new(policy.name());
    for t in 0..config.horizon {
        let requests = workload.requests(t, network, env_rng);
        let snapshot = dynamics.snapshot(t, network, env_rng);
        // Classify this slot's cut (if any) by the most severe outage
        // class in the dynamics' failure events, so recovery-time
        // metrics can be reported per class.
        let outage_class = dynamics
            .churn_events()
            .iter()
            .filter(|e| e.t == t && e.kind == ChurnEventKind::Fail)
            .map(|e| e.class)
            .max();
        let slot = SlotState::new(t, requests.clone(), snapshot.clone());
        let decision = policy.decide(network, &slot, policy_rng);

        let violations = audit_decision(network, &snapshot, &decision);
        debug_assert!(
            violations.is_empty(),
            "policy {} violated constraints at slot {t}: {violations:?}",
            policy.name()
        );

        let success_probs = decision.success_probabilities(network);
        let realized_successes = if config.realize_outcomes {
            // One uniform per request keeps env_rng in sync across
            // policies that serve different subsets.
            let mut successes = 0usize;
            for &p in &success_probs {
                let u: f64 = env_rng.random();
                if u < p {
                    successes += 1;
                }
            }
            Some(successes)
        } else {
            None
        };

        let diagnostics = policy.diagnostics();
        metrics.push(SlotRecord {
            t,
            requests: requests.len(),
            served: decision.assignments().len(),
            utility: decision.utility(network),
            cost: decision.total_cost(),
            success_probs,
            realized_successes,
            virtual_queue: diagnostics.virtual_queue,
            churn: diagnostics.churn,
            outage_class,
        });
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_core::baselines::MyopicPolicy;
    use qdn_core::oscar::{OscarConfig, OscarPolicy};
    use qdn_net::dynamics::StaticDynamics;
    use qdn_net::workload::UniformWorkload;
    use qdn_net::NetworkConfig;
    use rand::SeedableRng;

    fn quick_sim(policy: &mut dyn RoutingPolicy, horizon: u64, seed: u64) -> RunMetrics {
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed_f00d);
        let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
        let mut wl = UniformWorkload::paper_default();
        let mut dyn_ = StaticDynamics;
        run(
            &net,
            &mut wl,
            &mut dyn_,
            policy,
            &SimConfig {
                horizon,
                realize_outcomes: true,
            },
            &mut env_rng,
            &mut policy_rng,
        )
    }

    #[test]
    fn records_every_slot() {
        let mut policy = OscarPolicy::new(OscarConfig::paper_default());
        let m = quick_sim(&mut policy, 15, 3);
        assert_eq!(m.slots().len(), 15);
        assert_eq!(m.policy(), "OSCAR");
        for s in m.slots() {
            assert_eq!(s.success_probs.len(), s.requests);
            assert!(s.served <= s.requests);
            assert!(s.realized_successes.unwrap() <= s.requests);
            assert!(s.virtual_queue.is_some());
        }
    }

    #[test]
    fn identical_sample_paths_across_policies() {
        // With the two-stream design, the request counts per slot must be
        // identical for different policies under the same seed.
        let mut oscar = OscarPolicy::new(OscarConfig::paper_default());
        let m1 = quick_sim(&mut oscar, 20, 11);
        let mut mf = MyopicPolicy::fixed();
        let m2 = quick_sim(&mut mf, 20, 11);
        let r1: Vec<usize> = m1.slots().iter().map(|s| s.requests).collect();
        let r2: Vec<usize> = m2.slots().iter().map(|s| s.requests).collect();
        assert_eq!(r1, r2);
    }

    #[test]
    fn oscar_beats_random_utility_on_same_seed() {
        let mut oscar = OscarPolicy::new(OscarConfig::paper_default());
        let m_oscar = quick_sim(&mut oscar, 30, 9);
        let mut random = qdn_core::baselines::MinimalRandomPolicy::default();
        let m_random = quick_sim(&mut random, 30, 9);
        assert!(
            m_oscar.avg_success() > m_random.avg_success(),
            "OSCAR {} should beat Random-Min {}",
            m_oscar.avg_success(),
            m_random.avg_success()
        );
    }

    #[test]
    fn myopic_policies_run_clean() {
        for mut policy in [MyopicPolicy::fixed(), MyopicPolicy::adaptive()] {
            let m = quick_sim(&mut policy, 20, 5);
            assert_eq!(m.slots().len(), 20);
            // Some requests must have been served.
            assert!(m.total_requests() > m.total_unserved());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut p1 = OscarPolicy::new(OscarConfig::paper_default());
        let m1 = quick_sim(&mut p1, 10, 77);
        let mut p2 = OscarPolicy::new(OscarConfig::paper_default());
        let m2 = quick_sim(&mut p2, 10, 77);
        assert_eq!(m1, m2);
    }

    #[test]
    fn warm_session_on_persistent_workload_is_deterministic() {
        use qdn_core::profile_eval::EvalOptions;
        use qdn_core::route_selection::{GibbsConfig, RouteSelector};
        use qdn_net::workload::PersistentWorkload;

        // The temporally-correlated scenario with the full cross-slot
        // machinery on (profile seeding + λ warm starts): repeated runs
        // on the same seeds must agree exactly, and the reset path must
        // restore a replayable policy.
        let warm_cfg = OscarConfig {
            selector: RouteSelector::Gibbs(GibbsConfig {
                evaluator: EvalOptions::warm_seeded(),
                ..GibbsConfig::paper_default()
            }),
            allocation: qdn_core::allocation::AllocationMethod::RelaxAndRound(
                qdn_solve::RelaxedOptions {
                    warm_start: true,
                    ..qdn_solve::RelaxedOptions::default()
                },
            ),
            ..OscarConfig::paper_default()
        };
        let run_once = || {
            let mut env_rng = rand::rngs::StdRng::seed_from_u64(31);
            let mut policy_rng = rand::rngs::StdRng::seed_from_u64(32);
            let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
            let mut wl = PersistentWorkload::paper_scale();
            let mut dyn_ = StaticDynamics;
            let mut policy = OscarPolicy::new(warm_cfg.clone());
            run(
                &net,
                &mut wl,
                &mut dyn_,
                &mut policy,
                &SimConfig {
                    horizon: 12,
                    realize_outcomes: false,
                },
                &mut env_rng,
                &mut policy_rng,
            )
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
        // The sticky workload really is sticky: consecutive slots share
        // pairs, so the per-slot request count is constant at F.
        assert!(a.slots().iter().all(|s| s.requests == 5));
    }

    #[test]
    fn no_realization_mode() {
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut policy_rng = rand::rngs::StdRng::seed_from_u64(4);
        let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
        let mut wl = UniformWorkload::paper_default();
        let mut dyn_ = StaticDynamics;
        let mut policy = OscarPolicy::new(OscarConfig::paper_default());
        let m = run(
            &net,
            &mut wl,
            &mut dyn_,
            &mut policy,
            &SimConfig {
                horizon: 5,
                realize_outcomes: false,
            },
            &mut env_rng,
            &mut policy_rng,
        );
        assert!(m.slots().iter().all(|s| s.realized_successes.is_none()));
        assert_eq!(m.realized_success_rate(), None);
    }
}
