//! Time-slot simulator for quantum data networks.
//!
//! Drives any [`qdn_core::RoutingPolicy`] through the slotted QDN process
//! of the paper's §III/§V:
//!
//! * [`engine`] — the per-slot loop: sample requests and capacities, ask
//!   the policy, audit its decision against the capacity constraints,
//!   realize outcomes, record metrics,
//! * [`audit`] — independent constraint checking (Eq. 4/5) so a buggy
//!   policy cannot silently cheat,
//! * [`metrics`] — per-slot records and the derived series the paper
//!   plots (running average utility, EC success rate, cumulative qubit
//!   usage, per-pair distributions),
//! * [`stats`] — means, standard deviations, quantiles, histograms,
//!   Jain's fairness index,
//! * [`trial`] — seeded multi-trial execution (parallel across threads),
//! * [`experiment`] — serializable experiment descriptions: network ×
//!   workload × policies × sweeps,
//! * [`output`] — CSV/markdown emitters for the bench harness.
//!
//! # Example
//!
//! ```
//! use qdn_core::oscar::{OscarConfig, OscarPolicy};
//! use qdn_net::dynamics::StaticDynamics;
//! use qdn_net::workload::UniformWorkload;
//! use qdn_net::NetworkConfig;
//! use qdn_sim::engine::{run, SimConfig};
//! use rand::SeedableRng;
//!
//! let mut env_rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut policy_rng = rand::rngs::StdRng::seed_from_u64(2);
//! let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
//! let mut policy = OscarPolicy::new(OscarConfig::paper_default());
//! let mut workload = UniformWorkload::paper_default();
//! let mut dynamics = StaticDynamics;
//! let metrics = run(
//!     &net,
//!     &mut workload,
//!     &mut dynamics,
//!     &mut policy,
//!     &SimConfig { horizon: 10, realize_outcomes: true },
//!     &mut env_rng,
//!     &mut policy_rng,
//! );
//! assert_eq!(metrics.slots().len(), 10);
//! ```

#![forbid(unsafe_code)]
pub mod audit;
pub mod engine;
pub mod experiment;
pub mod metrics;
pub mod output;
pub mod stats;
pub mod trial;

pub use engine::{run, SimConfig};
pub use metrics::{RunMetrics, SlotRecord};
