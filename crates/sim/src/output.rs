//! CSV and markdown emitters for experiment results.
//!
//! The bench harness prints each figure as a plain-text series (CSV +
//! aligned table) so the paper's plots can be regenerated with any
//! external tool; nothing here depends on a plotting library.

use std::fmt::Write as _;

/// Renders rows as CSV with the given header.
///
/// # Example
///
/// ```
/// use qdn_sim::output::to_csv;
///
/// let csv = to_csv(&["t", "success"], &[vec!["0".into(), "0.9".into()]]);
/// assert_eq!(csv, "t,success\n0,0.9\n");
/// ```
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Renders rows as a fixed-width aligned table (markdown-compatible).
pub fn to_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
        out.push('|');
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            let _ = write!(out, " {cell:<w$} |");
        }
        out.push('\n');
    };
    render_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    out.push('|');
    for w in &widths {
        let _ = write!(out, "{:-<width$}|", "", width = w + 2);
    }
    out.push('\n');
    for row in rows {
        render_row(row, &widths, &mut out);
    }
    out
}

/// Formats a float with 4 significant decimals for table cells.
pub fn fmt_f(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a series `(x, y₁, y₂, …)` into CSV rows.
pub fn series_rows(xs: &[f64], columns: &[&[f64]]) -> Vec<Vec<String>> {
    xs.iter()
        .enumerate()
        .map(|(i, &x)| {
            let mut row = vec![fmt_f(x)];
            for col in columns {
                row.push(fmt_f(col[i]));
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_format() {
        let csv = to_csv(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(csv, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn table_alignment() {
        let t = to_table(&["name", "v"], &[vec!["oscar".into(), "1".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("|---"));
        assert!(lines[2].contains("oscar"));
        // All lines have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn float_format() {
        assert_eq!(fmt_f(0.123456), "0.1235");
        assert_eq!(fmt_f(2.0), "2.0000");
    }

    #[test]
    fn series_rows_shape() {
        let xs = [1.0, 2.0];
        let y1 = [0.1, 0.2];
        let y2 = [0.3, 0.4];
        let rows = series_rows(&xs, &[&y1, &y2]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec!["1.0000", "0.1000", "0.3000"]);
    }
}
