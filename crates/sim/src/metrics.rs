//! Per-slot records and derived series.

use qdn_core::policy::ChurnDiagnostics;
use qdn_net::dynamics::OutageClass;
use serde::{Deserialize, Serialize};

/// Everything recorded about one simulated slot.
///
/// **Loud compat break (PR 6):** the `churn` field is required when
/// deserializing recorded runs — see MIGRATION.md.
///
/// **Loud compat break (PR 9):** the `outage_class` field is required
/// when deserializing recorded runs — see MIGRATION.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Slot index.
    pub t: u64,
    /// Number of EC requests in `Φ_t`.
    pub requests: usize,
    /// Requests actually served (route + allocation assigned).
    pub served: usize,
    /// Slot utility `Σ_φ log P` over served pairs.
    pub utility: f64,
    /// Per-slot cost `c_t` in qubit-channel units.
    pub cost: u64,
    /// Analytic success probability per request (0 for unserved).
    pub success_probs: Vec<f64>,
    /// Realized (Bernoulli) EC successes, when outcome realization is on.
    pub realized_successes: Option<usize>,
    /// Policy's virtual queue after the slot, if it has one.
    pub virtual_queue: Option<f64>,
    /// Topology-churn handling this slot, for session policies.
    pub churn: Option<ChurnDiagnostics>,
    /// Most severe outage class behind this slot's failure events, from
    /// the dynamics' churn trace (`None`: no classed failure this slot).
    pub outage_class: Option<OutageClass>,
}

/// One failure event and how the policy recovered from it, derived from
/// the per-slot [`ChurnDiagnostics`] by
/// [`RunMetrics::recovery_records`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// Slot at which the cut landed.
    pub cut_slot: u64,
    /// What kind of outage the cut was. Slots whose diagnostics report
    /// failed links without a classed dynamics event (e.g. occupancy
    /// starving a link to zero channels) classify as
    /// [`OutageClass::Link`].
    pub class: OutageClass,
    /// Links that failed in that slot.
    pub failed_edges: u32,
    /// Pairs whose candidate sets the cut touched.
    pub affected_pairs: u32,
    /// Mean slot utility over the pre-cut window (the recovery target).
    pub pre_cut_utility: f64,
    /// Slots from the cut until utility re-entered the tolerance band
    /// around `pre_cut_utility` (0 = the cut slot itself never left it);
    /// `None` if the run ended first.
    pub recovery_slots: Option<u64>,
    /// Evaluation memos the session carried across the cut boundary.
    pub memo_entries_retained: u64,
    /// Evaluation memos the cut invalidated.
    pub memo_entries_flushed: u64,
}

/// The full record of one simulation run for one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    policy: String,
    slots: Vec<SlotRecord>,
}

impl RunMetrics {
    /// Creates an empty record for `policy`.
    pub fn new(policy: impl Into<String>) -> Self {
        RunMetrics {
            policy: policy.into(),
            slots: Vec::new(),
        }
    }

    /// The policy name this run belongs to.
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// Appends a slot record.
    pub fn push(&mut self, record: SlotRecord) {
        self.slots.push(record);
    }

    /// The raw slot records.
    pub fn slots(&self) -> &[SlotRecord] {
        &self.slots
    }

    /// Running average of slot utility up to each `t` (Fig. 3a's series).
    pub fn running_avg_utility(&self) -> Vec<f64> {
        running_mean(self.slots.iter().map(|s| s.utility))
    }

    /// Running average EC success probability over all requests seen so
    /// far (Fig. 3b's series). Unserved requests count as 0.
    pub fn running_avg_success(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.slots.len());
        let mut sum = 0.0;
        let mut count = 0usize;
        for s in &self.slots {
            sum += s.success_probs.iter().sum::<f64>();
            count += s.success_probs.len();
            out.push(if count == 0 { 0.0 } else { sum / count as f64 });
        }
        out
    }

    /// Cumulative qubit usage after each slot (Fig. 3c's series).
    pub fn cumulative_cost(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.slots.len());
        let mut sum = 0u64;
        for s in &self.slots {
            sum += s.cost;
            out.push(sum);
        }
        out
    }

    /// Total qubit usage over the whole run.
    pub fn total_cost(&self) -> u64 {
        self.slots.iter().map(|s| s.cost).sum()
    }

    /// Mean slot utility over the run.
    pub fn avg_utility(&self) -> f64 {
        mean(self.slots.iter().map(|s| s.utility))
    }

    /// Mean success probability over every request of the run.
    pub fn avg_success(&self) -> f64 {
        let probs = self.all_success_probs();
        if probs.is_empty() {
            0.0
        } else {
            probs.iter().sum::<f64>() / probs.len() as f64
        }
    }

    /// Fraction of realized EC successes over all requests (only
    /// meaningful when outcome realization was enabled).
    pub fn realized_success_rate(&self) -> Option<f64> {
        let mut successes = 0usize;
        let mut total = 0usize;
        for s in &self.slots {
            successes += s.realized_successes?;
            total += s.requests;
        }
        if total == 0 {
            Some(0.0)
        } else {
            Some(successes as f64 / total as f64)
        }
    }

    /// Every per-request success probability of the run (Fig. 4's
    /// distribution).
    pub fn all_success_probs(&self) -> Vec<f64> {
        self.slots
            .iter()
            .flat_map(|s| s.success_probs.iter().copied())
            .collect()
    }

    /// Jain's fairness index over the per-request success probabilities:
    /// `(Σx)² / (n·Σx²)`; 1.0 = perfectly even.
    pub fn jain_fairness(&self) -> f64 {
        let probs = self.all_success_probs();
        if probs.is_empty() {
            return 1.0;
        }
        let sum: f64 = probs.iter().sum();
        let sum_sq: f64 = probs.iter().map(|p| p * p).sum();
        if sum_sq == 0.0 {
            1.0
        } else {
            sum * sum / (probs.len() as f64 * sum_sq)
        }
    }

    /// The virtual-queue series (empty entries skipped).
    pub fn queue_series(&self) -> Vec<f64> {
        self.slots.iter().filter_map(|s| s.virtual_queue).collect()
    }

    /// Total number of requests over the run.
    pub fn total_requests(&self) -> usize {
        self.slots.iter().map(|s| s.requests).sum()
    }

    /// Total unserved requests over the run.
    pub fn total_unserved(&self) -> usize {
        self.slots.iter().map(|s| s.requests - s.served).sum()
    }

    /// Extracts one [`RecoveryRecord`] per failure event (a slot whose
    /// churn diagnostics report newly failed links).
    ///
    /// `window` is the number of pre-cut slots averaged into the
    /// recovery target; `tolerance` is the relative band — the run has
    /// recovered at the first slot `t ≥ cut` with
    /// `utility(t) ≥ pre − tolerance·|pre|` (utilities are
    /// log-probability sums, so ≤ 0). Cuts in slot 0 have no baseline
    /// and are skipped; `recovery_slots` is `None` when the run ends
    /// below the band.
    pub fn recovery_records(&self, window: usize, tolerance: f64) -> Vec<RecoveryRecord> {
        let window = window.max(1);
        let mut out = Vec::new();
        for (i, s) in self.slots.iter().enumerate() {
            let Some(churn) = s.churn.filter(|c| c.failed_edges > 0) else {
                continue;
            };
            if i == 0 {
                continue; // no pre-cut baseline to recover to
            }
            let lo = i.saturating_sub(window);
            let pre = mean(self.slots[lo..i].iter().map(|s| s.utility));
            let floor = pre - tolerance * pre.abs();
            let recovery_slots = self.slots[i..]
                .iter()
                .position(|s| s.utility >= floor)
                .map(|d| d as u64);
            out.push(RecoveryRecord {
                cut_slot: s.t,
                class: s.outage_class.unwrap_or(OutageClass::Link),
                failed_edges: churn.failed_edges,
                affected_pairs: churn.affected_pairs,
                pre_cut_utility: pre,
                recovery_slots,
                memo_entries_retained: churn.memo_entries_retained,
                memo_entries_flushed: churn.memo_entries_flushed,
            });
        }
        out
    }

    /// Mean recovery time in slots over the events of
    /// [`RunMetrics::recovery_records`] that did recover; `None` when no
    /// event recovered (or none occurred).
    pub fn mean_recovery_slots(&self, window: usize, tolerance: f64) -> Option<f64> {
        mean_recovered(self.recovery_records(window, tolerance).iter())
    }

    /// [`RunMetrics::recovery_records`] restricted to one outage class,
    /// so recovery-time claims can be made per class (a planned window
    /// with prewarmed repair recovers differently than a surprise
    /// regional blackout).
    pub fn recovery_records_for(
        &self,
        class: OutageClass,
        window: usize,
        tolerance: f64,
    ) -> Vec<RecoveryRecord> {
        self.recovery_records(window, tolerance)
            .into_iter()
            .filter(|r| r.class == class)
            .collect()
    }

    /// Mean recovery time over the events of one outage class; `None`
    /// when no event of that class recovered (or none occurred).
    pub fn mean_recovery_slots_for(
        &self,
        class: OutageClass,
        window: usize,
        tolerance: f64,
    ) -> Option<f64> {
        mean_recovered(self.recovery_records_for(class, window, tolerance).iter())
    }
}

fn mean_recovered<'a, I: Iterator<Item = &'a RecoveryRecord>>(records: I) -> Option<f64> {
    let recovered: Vec<u64> = records.filter_map(|r| r.recovery_slots).collect();
    if recovered.is_empty() {
        None
    } else {
        Some(recovered.iter().sum::<u64>() as f64 / recovered.len() as f64)
    }
}

fn running_mean<I: Iterator<Item = f64>>(values: I) -> Vec<f64> {
    let mut out = Vec::new();
    let mut sum = 0.0;
    for (i, v) in values.enumerate() {
        sum += v;
        out.push(sum / (i + 1) as f64);
    }
    out
}

fn mean<I: Iterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: u64, utility: f64, cost: u64, probs: Vec<f64>) -> SlotRecord {
        SlotRecord {
            t,
            requests: probs.len(),
            served: probs.iter().filter(|&&p| p > 0.0).count(),
            utility,
            cost,
            success_probs: probs,
            realized_successes: None,
            virtual_queue: Some(t as f64),
            churn: None,
            outage_class: None,
        }
    }

    fn cut_record(t: u64, utility: f64, failed: u32) -> SlotRecord {
        SlotRecord {
            churn: Some(ChurnDiagnostics {
                failed_edges: failed,
                affected_pairs: failed,
                memo_entries_retained: 3,
                memo_entries_flushed: 2,
                ..ChurnDiagnostics::default()
            }),
            ..record(t, utility, 0, vec![])
        }
    }

    fn classed_cut(t: u64, utility: f64, class: OutageClass) -> SlotRecord {
        SlotRecord {
            outage_class: Some(class),
            ..cut_record(t, utility, 2)
        }
    }

    fn sample_run() -> RunMetrics {
        let mut m = RunMetrics::new("test");
        m.push(record(0, -1.0, 10, vec![0.9, 0.8]));
        m.push(record(1, -3.0, 20, vec![0.5]));
        m
    }

    #[test]
    fn running_series() {
        let m = sample_run();
        assert_eq!(m.running_avg_utility(), vec![-1.0, -2.0]);
        let s = m.running_avg_success();
        assert!((s[0] - 0.85).abs() < 1e-12);
        assert!((s[1] - (0.9 + 0.8 + 0.5) / 3.0).abs() < 1e-12);
        assert_eq!(m.cumulative_cost(), vec![10, 30]);
    }

    #[test]
    fn aggregates() {
        let m = sample_run();
        assert_eq!(m.total_cost(), 30);
        assert!((m.avg_utility() + 2.0).abs() < 1e-12);
        assert!((m.avg_success() - 2.2 / 3.0).abs() < 1e-12);
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.total_unserved(), 0);
    }

    #[test]
    fn fairness_index() {
        let mut even = RunMetrics::new("even");
        even.push(record(0, 0.0, 0, vec![0.7, 0.7, 0.7]));
        assert!((even.jain_fairness() - 1.0).abs() < 1e-12);

        let mut uneven = RunMetrics::new("uneven");
        uneven.push(record(0, 0.0, 0, vec![1.0, 0.0, 0.0]));
        assert!((uneven.jain_fairness() - 1.0 / 3.0).abs() < 1e-12);

        assert_eq!(RunMetrics::new("empty").jain_fairness(), 1.0);
    }

    #[test]
    fn realized_rate() {
        let mut m = RunMetrics::new("r");
        m.push(SlotRecord {
            realized_successes: Some(1),
            ..record(0, 0.0, 0, vec![0.9, 0.9])
        });
        assert_eq!(m.realized_success_rate(), Some(0.5));

        let no_realization = sample_run();
        assert_eq!(no_realization.realized_success_rate(), None);
    }

    #[test]
    fn queue_series_collected() {
        let m = sample_run();
        assert_eq!(m.queue_series(), vec![0.0, 1.0]);
    }

    #[test]
    fn recovery_records_measure_slots_to_regain_utility() {
        let mut m = RunMetrics::new("r");
        // Steady state at -2, a cut at t=3 dropping utility to -6, then
        // recovery over two slots.
        m.push(record(0, -2.0, 0, vec![]));
        m.push(record(1, -2.0, 0, vec![]));
        m.push(record(2, -2.0, 0, vec![]));
        m.push(cut_record(3, -6.0, 1));
        m.push(record(4, -4.0, 0, vec![]));
        m.push(record(5, -2.05, 0, vec![]));
        let recs = m.recovery_records(3, 0.05);
        assert_eq!(recs.len(), 1);
        let r = recs[0];
        assert_eq!(r.cut_slot, 3);
        assert_eq!(r.failed_edges, 1);
        assert!((r.pre_cut_utility + 2.0).abs() < 1e-12);
        // Band floor is -2.1; regained at t=5, two slots after the cut.
        assert_eq!(r.recovery_slots, Some(2));
        assert_eq!(r.memo_entries_retained, 3);
        assert_eq!(r.memo_entries_flushed, 2);
        assert_eq!(m.mean_recovery_slots(3, 0.05), Some(2.0));
    }

    #[test]
    fn recovery_records_edge_cases() {
        // A run that never recovers reports None; a cut at slot 0 has no
        // baseline and is skipped; cut-free runs produce no records.
        let mut never = RunMetrics::new("n");
        never.push(cut_record(0, -1.0, 2));
        never.push(record(1, -1.0, 0, vec![]));
        never.push(cut_record(2, -9.0, 2));
        never.push(record(3, -9.0, 0, vec![]));
        let recs = never.recovery_records(2, 0.05);
        assert_eq!(recs.len(), 1, "slot-0 cut skipped, slot-2 cut kept");
        assert_eq!(recs[0].cut_slot, 2);
        assert_eq!(recs[0].recovery_slots, None);
        assert_eq!(never.mean_recovery_slots(2, 0.05), None);

        assert!(sample_run().recovery_records(2, 0.05).is_empty());

        // A cut whose slot never left the band recovers in 0 slots.
        let mut instant = RunMetrics::new("i");
        instant.push(record(0, -2.0, 0, vec![]));
        instant.push(cut_record(1, -2.0, 1));
        let recs = instant.recovery_records(4, 0.05);
        assert_eq!(recs[0].recovery_slots, Some(0));
    }

    #[test]
    fn recovery_records_are_classed_per_outage() {
        let mut m = RunMetrics::new("classes");
        m.push(record(0, -2.0, 0, vec![]));
        m.push(record(1, -2.0, 0, vec![]));
        // An unclassed cut (occupancy starvation) counts as Link.
        m.push(cut_record(2, -4.0, 1));
        m.push(record(3, -2.0, 0, vec![]));
        // A node cut recovering in 2 slots and a planned window
        // recovering instantly.
        m.push(classed_cut(4, -8.0, OutageClass::Node));
        m.push(record(5, -5.0, 0, vec![]));
        m.push(record(6, -2.0, 0, vec![]));
        m.push(classed_cut(7, -2.0, OutageClass::Planned));

        let recs = m.recovery_records(2, 0.05);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].class, OutageClass::Link);
        assert_eq!(recs[1].class, OutageClass::Node);
        assert_eq!(recs[2].class, OutageClass::Planned);

        let node = m.recovery_records_for(OutageClass::Node, 2, 0.05);
        assert_eq!(node.len(), 1);
        assert_eq!(node[0].recovery_slots, Some(2));
        assert_eq!(
            m.mean_recovery_slots_for(OutageClass::Node, 2, 0.05),
            Some(2.0)
        );
        assert_eq!(
            m.mean_recovery_slots_for(OutageClass::Planned, 2, 0.05),
            Some(0.0)
        );
        assert_eq!(
            m.mean_recovery_slots_for(OutageClass::Regional, 2, 0.05),
            None
        );
    }

    #[test]
    fn empty_run_defaults() {
        let m = RunMetrics::new("empty");
        assert_eq!(m.avg_utility(), 0.0);
        assert_eq!(m.avg_success(), 0.0);
        assert!(m.running_avg_success().is_empty());
        assert_eq!(m.total_cost(), 0);
    }
}
