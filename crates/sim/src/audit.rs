//! Independent constraint auditing.
//!
//! The engine re-checks every decision against the paper's capacity
//! constraints (Eq. 4/5) using only the network, the slot snapshot, and
//! the decision — none of the policy's internal state. A violation is a
//! policy bug; the engine panics in debug builds and records the
//! violation otherwise.

use qdn_core::types::Decision;
use qdn_net::{CapacitySnapshot, QdnNetwork};

/// A constraint violated by a decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A node's qubit capacity was exceeded (Eq. 4).
    NodeCapacity {
        /// The overloaded node.
        node: qdn_graph::NodeId,
        /// Qubits the decision consumes there.
        used: u64,
        /// Qubits available this slot.
        available: u32,
    },
    /// An edge's channel capacity was exceeded (Eq. 5).
    EdgeCapacity {
        /// The overloaded edge.
        edge: qdn_graph::EdgeId,
        /// Channels the decision consumes there.
        used: u64,
        /// Channels available this slot.
        available: u32,
    },
    /// An allocation entry was zero (violates `n_e ∈ Z₊₊`).
    ZeroAllocation {
        /// Index of the assignment within the decision.
        assignment: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NodeCapacity {
                node,
                used,
                available,
            } => write!(f, "node {node}: used {used} of {available} qubits"),
            Violation::EdgeCapacity {
                edge,
                used,
                available,
            } => write!(f, "edge {edge}: used {used} of {available} channels"),
            Violation::ZeroAllocation { assignment } => {
                write!(
                    f,
                    "assignment {assignment} allocates zero channels to an edge"
                )
            }
        }
    }
}

/// Checks a decision against this slot's capacities.
///
/// Returns every violation found (empty = decision is valid).
pub fn audit_decision(
    network: &QdnNetwork,
    snapshot: &CapacitySnapshot,
    decision: &Decision,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut node_usage = vec![0u64; network.node_count()];
    let mut edge_usage = vec![0u64; network.edge_count()];

    for (i, a) in decision.assignments().iter().enumerate() {
        if a.allocation.contains(&0) {
            violations.push(Violation::ZeroAllocation { assignment: i });
        }
        for (e, &n) in a.route.edges().iter().zip(&a.allocation) {
            let (u, v) = network.graph().endpoints(*e);
            node_usage[u.index()] += n as u64;
            node_usage[v.index()] += n as u64;
            edge_usage[e.index()] += n as u64;
        }
    }
    for v in network.graph().node_ids() {
        let used = node_usage[v.index()];
        let available = snapshot.qubits(v);
        if used > available as u64 {
            violations.push(Violation::NodeCapacity {
                node: v,
                used,
                available,
            });
        }
    }
    for e in network.graph().edge_ids() {
        let used = edge_usage[e.index()];
        let available = snapshot.channels(e);
        if used > available as u64 {
            violations.push(Violation::EdgeCapacity {
                edge: e,
                used,
                available,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_core::types::RouteAssignment;
    use qdn_graph::{NodeId, Path};
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_net::SdPair;
    use qdn_physics::link::LinkModel;

    fn line() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let a = b.add_node(4);
        let m = b.add_node(4);
        let c = b.add_node(4);
        b.add_edge(a, m, 3, LinkModel::new(0.5).unwrap()).unwrap();
        b.add_edge(m, c, 3, LinkModel::new(0.5).unwrap()).unwrap();
        b.build()
    }

    fn route_assignment(net: &QdnNetwork, alloc: Vec<u32>) -> RouteAssignment {
        let pair = SdPair::new(NodeId(0), NodeId(2)).unwrap();
        let route = Path::from_nodes(net.graph(), vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        RouteAssignment::new(pair, route, alloc)
    }

    #[test]
    fn valid_decision_passes() {
        let net = line();
        let snap = CapacitySnapshot::full(&net);
        let d = Decision::new(vec![route_assignment(&net, vec![2, 2])], vec![]);
        assert!(audit_decision(&net, &snap, &d).is_empty());
    }

    #[test]
    fn node_violation_detected() {
        let net = line();
        // Middle node only has 4 qubits but allocation 3+3=6 touches it.
        let snap = CapacitySnapshot::full(&net);
        let d = Decision::new(vec![route_assignment(&net, vec![3, 3])], vec![]);
        let violations = audit_decision(&net, &snap, &d);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::NodeCapacity { node, .. } if *node == NodeId(1))));
    }

    #[test]
    fn edge_violation_detected() {
        let net = line();
        // Reduce edge 0 to a single channel.
        let snap = CapacitySnapshot::clamped(&net, vec![4, 4, 4], vec![1, 3]);
        let d = Decision::new(vec![route_assignment(&net, vec![2, 1])], vec![]);
        let violations = audit_decision(&net, &snap, &d);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::EdgeCapacity { edge, .. } if edge.index() == 0)));
    }

    #[test]
    fn empty_decision_valid() {
        let net = line();
        let snap = CapacitySnapshot::full(&net);
        assert!(audit_decision(&net, &snap, &Decision::empty()).is_empty());
    }

    #[test]
    fn violation_display() {
        let v = Violation::NodeCapacity {
            node: NodeId(1),
            used: 6,
            available: 4,
        };
        assert!(v.to_string().contains("v1"));
    }
}
