//! Property-based tests for the simulator layer.

use proptest::prelude::*;
use qdn_core::baselines::MinimalRandomPolicy;
use qdn_core::oscar::{OscarConfig, OscarPolicy};
use qdn_core::policy::RoutingPolicy;
use qdn_net::dynamics::{StaticDynamics, UniformOccupancy};
use qdn_net::workload::UniformWorkload;
use qdn_net::NetworkConfig;
use qdn_sim::audit::audit_decision;
use qdn_sim::engine::{run, SimConfig};
use qdn_sim::stats::{mean_series, quantile, Histogram, Summary};
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The engine's records are internally consistent for any policy,
    /// seed, and occupancy level: per-slot costs sum to the cumulative
    /// series, served ≤ requests, probabilities are valid.
    #[test]
    fn run_records_consistent(seed in 0u64..5_000, occupancy in 0.0f64..0.6, oscar in proptest::bool::ANY) {
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xDEAD);
        let net = NetworkConfig::paper_default().with_nodes(10).build(&mut env_rng).unwrap();
        let mut policy: Box<dyn RoutingPolicy> = if oscar {
            Box::new(OscarPolicy::new(OscarConfig {
                total_budget: 250.0,
                horizon: 10,
                ..OscarConfig::paper_default()
            }))
        } else {
            Box::new(MinimalRandomPolicy::default())
        };
        let metrics = run(
            &net,
            &mut UniformWorkload::paper_default(),
            &mut UniformOccupancy::new(occupancy),
            policy.as_mut(),
            &SimConfig { horizon: 10, realize_outcomes: true },
            &mut env_rng,
            &mut policy_rng,
        );
        prop_assert_eq!(metrics.slots().len(), 10);
        let total: u64 = metrics.slots().iter().map(|s| s.cost).sum();
        prop_assert_eq!(total, *metrics.cumulative_cost().last().unwrap());
        for s in metrics.slots() {
            prop_assert!(s.served <= s.requests);
            prop_assert_eq!(s.success_probs.len(), s.requests);
            for &p in &s.success_probs {
                prop_assert!((0.0..=1.0).contains(&p));
            }
            prop_assert!(s.realized_successes.unwrap() <= s.requests);
        }
        prop_assert!((0.0..=1.0).contains(&metrics.jain_fairness()));
    }

    /// The engine never lets a shipped policy violate constraints
    /// (re-audited here explicitly, not just via debug_assert).
    #[test]
    fn shipped_policies_pass_explicit_audit(seed in 0u64..5_000) {
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
        let net = NetworkConfig::paper_default().with_nodes(8).build(&mut env_rng).unwrap();
        let mut policy = OscarPolicy::new(OscarConfig {
            total_budget: 200.0,
            horizon: 8,
            ..OscarConfig::paper_default()
        });
        let mut wl = UniformWorkload::paper_default();
        let mut dyn_ = StaticDynamics;
        use qdn_core::types::SlotState;
        use qdn_net::dynamics::ResourceDynamics;
        use qdn_net::workload::Workload;
        for t in 0..8 {
            let requests = wl.requests(t, &net, &mut env_rng);
            let snap = dyn_.snapshot(t, &net, &mut env_rng);
            let slot = SlotState::new(t, requests, snap.clone());
            let d = policy.decide(&net, &slot, &mut policy_rng);
            let violations = audit_decision(&net, &snap, &d);
            prop_assert!(violations.is_empty(), "slot {t}: {violations:?}");
        }
    }

    /// Statistics helpers behave on arbitrary data.
    #[test]
    fn stats_helpers_sound(values in proptest::collection::vec(-100.0f64..100.0, 1..60)) {
        let s = Summary::of(&values);
        prop_assert_eq!(s.n, values.len());
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);

        let q0 = quantile(&values, 0.0);
        let q50 = quantile(&values, 0.5);
        let q100 = quantile(&values, 1.0);
        prop_assert!(q0 <= q50 && q50 <= q100);

        let h = Histogram::new(&values, -100.0, 100.0, 8);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), values.len() as u64);
        let frac_sum: f64 = h.fractions().iter().sum();
        prop_assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    /// `mean_series` is bounded by the point-wise min/max of its inputs.
    #[test]
    fn mean_series_bounded(rows in 1usize..5, cols in 1usize..10, seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let series: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.random_range(-10.0..10.0)).collect())
            .collect();
        let mean = mean_series(&series);
        prop_assert_eq!(mean.len(), cols);
        for i in 0..cols {
            let lo = series.iter().map(|s| s[i]).fold(f64::INFINITY, f64::min);
            let hi = series.iter().map(|s| s[i]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean[i] >= lo - 1e-9 && mean[i] <= hi + 1e-9);
        }
    }
}
