//! Quickstart: build the paper's default QDN, run OSCAR for a handful of
//! slots, and inspect the decisions it makes.
//!
//! Run with: `cargo run --example quickstart`

use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::policy::RoutingPolicy;
use qdn::core::types::SlotState;
use qdn::net::workload::{UniformWorkload, Workload};
use qdn::net::{CapacitySnapshot, NetworkConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 20-node Waxman QDN with the paper's §V-A parameters:
    //    Q_v ~ U[10,16] qubits, W_e ~ U[5,8] channels, p̃ = 2e-4, A = 4000.
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(7);
    let network = NetworkConfig::paper_default().build(&mut env_rng)?;
    println!(
        "network: {} nodes, {} edges, avg degree {:.2}, p_e ≈ {:.3}",
        network.node_count(),
        network.edge_count(),
        network.graph().average_degree(),
        1.0 - (1.0 - network.p_min()),
    );

    // 2. OSCAR with V = 2500, q0 = 10, budget C = 5000 over T = 200 slots.
    let mut policy = OscarPolicy::new(OscarConfig::paper_default());
    let mut workload = UniformWorkload::paper_default();
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(8);

    // 3. Drive a few slots by hand (the `qdn::sim` engine automates this).
    for t in 0..5 {
        let requests = workload.requests(t, &network, &mut env_rng);
        let slot = SlotState::new(t, requests, CapacitySnapshot::full(&network));
        let decision = policy.decide(&network, &slot, &mut policy_rng);

        println!(
            "\nslot {t}: {} request(s), cost {}, queue -> {:.1}",
            slot.requests().len(),
            decision.total_cost(),
            policy.queue_value(),
        );
        for a in decision.assignments() {
            println!(
                "  {}: route {} | channels {:?} | P(success) = {:.3}",
                a.pair,
                a.route,
                a.allocation,
                a.success_probability(&network),
            );
        }
    }
    Ok(())
}
