//! Online entanglement routing: requests served upon arrival.
//!
//! Instead of batching EC requests into 1.46 s slots, a Poisson stream of
//! requests hits the network in continuous time. Each arrival is routed
//! immediately against the *residual* capacities (in-flight executions
//! hold their qubits and channels until they deliver or fail), and the
//! long-term budget is paced by a continuous-time virtual queue — the
//! event-driven analogue of OSCAR's Eq. 7.
//!
//! The example sweeps the arrival rate from the paper's load (≈ 2 req/s)
//! into overload, showing the queue trading success rate for budget
//! adherence exactly as the slotted theory predicts.
//!
//! Run with: `cargo run --release --example online_arrivals`

use std::time::Duration;

use qdn::des::arrivals::PoissonArrivals;
use qdn::des::online::{run_online, OnlineConfig, OnlineRouter};
use qdn::net::NetworkConfig;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let span = Duration::from_secs_f64(200.0 * 1.46); // the paper's horizon
    let config = OnlineConfig::paper_default();
    println!(
        "budget C = {}, paced at {:.2} units/s over {:.0}s",
        config.total_budget,
        config.budget_rate(),
        span.as_secs_f64()
    );
    println!();
    println!("rate   | requests | served | success | spend  | mean lat | p99 lat | thruput");
    println!("-------+----------+--------+---------+--------+----------+---------+--------");

    for rate in [1.0, PoissonArrivals::paper_rate(), 4.0, 8.0] {
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(31);
        let mut policy_rng = rand::rngs::StdRng::seed_from_u64(32);
        let network = NetworkConfig::paper_default().build(&mut env_rng)?;
        let mut router = OnlineRouter::new(config.clone());
        let mut arrivals = PoissonArrivals::new(rate, span)?;
        let metrics = run_online(
            &network,
            &mut router,
            &mut arrivals,
            &mut env_rng,
            &mut policy_rng,
        );
        let latency = metrics.latency_summary();
        println!(
            "{:>5.2} | {:>8} | {:>6} |  {:.4} | {:>6} |  {} |  {} | {:.3}/s",
            rate,
            metrics.total_requests(),
            metrics.served(),
            metrics.realized_success_rate(),
            metrics.total_cost(),
            latency.map_or("   --   ".into(), |l| format!("{:.4}s", l.mean_secs)),
            latency.map_or("   --  ".into(), |l| format!("{:.4}s", l.p99_secs)),
            metrics.throughput_per_sec(),
        );
    }

    println!();
    println!("As the arrival rate climbs past the paced budget, the virtual queue");
    println!("grows and pins admissions to minimum-cost routes: per-request spend");
    println!("falls, total spend tracks the allowance, and the success rate bends");
    println!("down — the same V-mediated trade-off as the slotted Figs. 7/8.");
    Ok(())
}
