//! Plugging a custom policy into the simulator: implement
//! [`RoutingPolicy`] for a simple "shortest route, fixed two channels per
//! edge" strategy and race it against OSCAR through the engine.
//!
//! Run with: `cargo run --release --example custom_policy`

use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::policy::RoutingPolicy;
use qdn::core::types::{Decision, RouteAssignment, SlotState};
use qdn::net::dynamics::StaticDynamics;
use qdn::net::routes::{CandidateRoutes, RouteLimits};
use qdn::net::workload::UniformWorkload;
use qdn::net::{NetworkConfig, QdnNetwork};
use qdn::sim::engine::{run, SimConfig};
use rand::SeedableRng;

/// Always the fewest-hop candidate route with exactly two channels per
/// edge — no budget awareness, no congestion awareness.
#[derive(Debug)]
struct TwoChannelPolicy {
    routes: CandidateRoutes,
}

impl TwoChannelPolicy {
    fn new() -> Self {
        TwoChannelPolicy {
            routes: CandidateRoutes::new(RouteLimits::paper_default()),
        }
    }
}

impl RoutingPolicy for TwoChannelPolicy {
    fn name(&self) -> String {
        "TwoChannel".into()
    }

    fn decide(
        &mut self,
        network: &QdnNetwork,
        slot: &SlotState,
        _rng: &mut dyn rand::Rng,
    ) -> Decision {
        // Track what this slot has already consumed so we stay feasible.
        let mut node_left: Vec<i64> = network
            .graph()
            .node_ids()
            .map(|v| slot.snapshot().qubits(v) as i64)
            .collect();
        let mut edge_left: Vec<i64> = network
            .graph()
            .edge_ids()
            .map(|e| slot.snapshot().channels(e) as i64)
            .collect();

        let mut assignments = Vec::new();
        let mut unserved = Vec::new();
        for &pair in slot.requests() {
            let Some(route) = self.routes.routes(network, pair).first().cloned() else {
                unserved.push(pair);
                continue;
            };
            // Two channels per edge if they fit, else one, else skip.
            let fits = |n: i64, node_left: &[i64], edge_left: &[i64]| {
                route.edges().iter().all(|e| {
                    let (u, v) = network.graph().endpoints(*e);
                    edge_left[e.index()] >= n
                        && node_left[u.index()] >= n
                        && node_left[v.index()] >= n
                })
            };
            let n = if fits(2, &node_left, &edge_left) {
                2
            } else if fits(1, &node_left, &edge_left) {
                1
            } else {
                unserved.push(pair);
                continue;
            };
            for e in route.edges() {
                let (u, v) = network.graph().endpoints(*e);
                edge_left[e.index()] -= n;
                node_left[u.index()] -= n;
                node_left[v.index()] -= n;
            }
            let hops = route.hops();
            assignments.push(RouteAssignment::new(pair, route, vec![n as u32; hops]));
        }
        Decision::new(assignments, unserved)
    }

    fn reset(&mut self) {}
}

fn race(policy: &mut dyn RoutingPolicy, seed: u64) -> qdn::sim::RunMetrics {
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
    let network = NetworkConfig::paper_default()
        .build(&mut env_rng)
        .expect("valid config");
    run(
        &network,
        &mut UniformWorkload::paper_default(),
        &mut StaticDynamics,
        policy,
        &SimConfig {
            horizon: 100,
            realize_outcomes: true,
        },
        &mut env_rng,
        &mut policy_rng,
    )
}

fn main() {
    let mut custom = TwoChannelPolicy::new();
    let mut oscar = OscarPolicy::new(OscarConfig {
        total_budget: 2500.0,
        horizon: 100,
        ..OscarConfig::paper_default()
    });

    println!("custom RoutingPolicy vs OSCAR, identical environments (T=100):\n");
    println!(
        "{:<12} {:>12} {:>10} {:>10}",
        "policy", "avg success", "usage", "unserved"
    );
    for (label, m) in [
        ("TwoChannel", race(&mut custom, 5)),
        ("OSCAR", race(&mut oscar, 5)),
    ] {
        println!(
            "{label:<12} {:>12.4} {:>10} {:>10}",
            m.avg_success(),
            m.total_cost(),
            m.total_unserved(),
        );
    }
    println!("\nThe fixed allocation wastes channels on easy routes and starves");
    println!("hard ones; OSCAR prices every channel against the budget instead.");
}
