//! Stress-testing OSCAR beyond the paper's evaluation: lossy
//! entanglement swapping, bursty co-tenant resource occupancy, and
//! multi-EC request load — separately and combined — against the
//! Myopic-Adaptive baseline on paired sample paths.
//!
//! Run with: `cargo run --release --example harsh_conditions`

use qdn::core::baselines::{BudgetSplit, MyopicConfig, MyopicPolicy};
use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::policy::RoutingPolicy;
use qdn::net::dynamics::{MarkovOccupancy, ResourceDynamics, StaticDynamics};
use qdn::net::workload::{MultiEcWorkload, UniformWorkload, Workload};
use qdn::net::NetworkConfig;
use qdn::sim::engine::{run, SimConfig};
use rand::SeedableRng;

const HORIZON: u64 = 100;
const BUDGET: f64 = 2500.0; // C/T = 25, the paper's operating point

struct Scenario {
    name: &'static str,
    swap_success: f64,
    bursty: bool,
    multi_ec: bool,
}

const SCENARIOS: [Scenario; 5] = [
    Scenario {
        name: "paper baseline",
        swap_success: 1.0,
        bursty: false,
        multi_ec: false,
    },
    Scenario {
        name: "lossy swap (q=0.9)",
        swap_success: 0.9,
        bursty: false,
        multi_ec: false,
    },
    Scenario {
        name: "bursty occupancy",
        swap_success: 1.0,
        bursty: true,
        multi_ec: false,
    },
    Scenario {
        name: "multi-EC (k<=2)",
        swap_success: 1.0,
        bursty: false,
        multi_ec: true,
    },
    Scenario {
        name: "all combined",
        swap_success: 0.9,
        bursty: true,
        multi_ec: true,
    },
];

fn run_policy(scenario: &Scenario, policy: &mut dyn RoutingPolicy, seed: u64) -> (f64, u64) {
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xACE);
    let network = NetworkConfig {
        swap_success: scenario.swap_success,
        ..NetworkConfig::paper_default()
    }
    .build(&mut env_rng)
    .expect("valid config");

    let mut workload: Box<dyn Workload> = if scenario.multi_ec {
        Box::new(MultiEcWorkload::new(UniformWorkload::new(1, 3), 2))
    } else {
        Box::new(UniformWorkload::paper_default())
    };
    let mut dynamics: Box<dyn ResourceDynamics> = if scenario.bursty {
        Box::new(MarkovOccupancy::new(0.2, 0.5, 0.5))
    } else {
        Box::new(StaticDynamics)
    };

    let metrics = run(
        &network,
        workload.as_mut(),
        dynamics.as_mut(),
        policy,
        &SimConfig {
            horizon: HORIZON,
            realize_outcomes: false,
        },
        &mut env_rng,
        &mut policy_rng,
    );
    (metrics.avg_success(), metrics.total_cost())
}

fn main() {
    println!("OSCAR vs Myopic-Adaptive under hostile conditions");
    println!("(C = {BUDGET}, T = {HORIZON}, paired sample paths per scenario)\n");
    println!(
        "{:<22} {:>13} {:>10} {:>13} {:>10} {:>8}",
        "scenario", "OSCAR succ", "usage", "MA succ", "usage", "lead"
    );

    for scenario in &SCENARIOS {
        let mut oscar = OscarPolicy::new(OscarConfig {
            total_budget: BUDGET,
            horizon: HORIZON,
            ..OscarConfig::paper_default()
        });
        let (s_oscar, c_oscar) = run_policy(scenario, &mut oscar, 77);

        let mut ma = MyopicPolicy::new(MyopicConfig {
            total_budget: BUDGET,
            horizon: HORIZON,
            ..MyopicConfig::paper_default(BudgetSplit::Adaptive)
        });
        let (s_ma, c_ma) = run_policy(scenario, &mut ma, 77);

        println!(
            "{:<22} {s_oscar:>13.4} {c_oscar:>10} {s_ma:>13.4} {c_ma:>10} {:>+7.1}%",
            scenario.name,
            (s_oscar - s_ma) * 100.0,
        );
    }

    println!("\nEvery stressor lowers absolute success — fewer usable resources,");
    println!("extra swap-failure product terms, or more requests per budget unit —");
    println!("but OSCAR's long-horizon budget pacing keeps its lead in all of them.");
}
