//! Explore Waxman QDN topologies: degree calibration across sizes,
//! edge-length statistics, and candidate-route structure — the
//! ingredients behind the paper's Fig. 6 setup.
//!
//! Run with: `cargo run --example topology_explorer`

use qdn::graph::connectivity::is_connected;
use qdn::graph::waxman::{calibrate_beta, WaxmanConfig};
use qdn::net::routes::{CandidateRoutes, RouteLimits};
use qdn::net::workload::random_sd_pair;
use qdn::net::NetworkConfig;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    println!("Waxman degree calibration (target average degree 4):\n");
    println!(
        "{:>6} {:>10} {:>12} {:>10}",
        "nodes", "beta", "avg degree", "connected"
    );
    for nodes in [10usize, 15, 20, 25, 30, 40] {
        let cfg = WaxmanConfig::paper_default().with_nodes(nodes);
        let beta = calibrate_beta(&cfg, 4.0, &mut rng);
        let topo = cfg.with_beta(beta).generate(&mut rng);
        println!(
            "{nodes:>6} {beta:>10.4} {:>12.2} {:>10}",
            topo.graph.average_degree(),
            is_connected(&topo.graph),
        );
    }

    println!("\nCandidate routes on the paper-default 20-node QDN:");
    let network = NetworkConfig::paper_default()
        .build(&mut rng)
        .expect("valid config");
    let mut routes = CandidateRoutes::new(RouteLimits::paper_default());
    for _ in 0..5 {
        let pair = random_sd_pair(&mut rng, &network);
        let cands = routes.routes(&network, pair);
        println!("\n  {pair} — {} candidate route(s):", cands.len());
        for (i, r) in cands.iter().enumerate() {
            let p1: f64 = network.route_success(r, &vec![1; r.hops()]);
            let p3: f64 = network.route_success(r, &vec![3; r.hops()]);
            println!(
                "    #{i}: {} hop(s)  {}  P(1/edge)={p1:.3}  P(3/edge)={p3:.3}",
                r.hops(),
                r
            );
        }
    }

    println!("\nEdge-length distribution (fiber model input):");
    let topo = WaxmanConfig::paper_default().generate(&mut rng);
    let mut lengths: Vec<f64> = topo.graph.edge_ids().map(|e| topo.edge_length(e)).collect();
    lengths.sort_by(f64::total_cmp);
    if !lengths.is_empty() {
        println!(
            "  {} edges, min {:.1}, median {:.1}, max {:.1} (units of the 100x100 square)",
            lengths.len(),
            lengths[0],
            lengths[lengths.len() / 2],
            lengths[lengths.len() - 1],
        );
    }
}
