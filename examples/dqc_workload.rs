//! A distributed-quantum-computing scenario: a few large quantum
//! computers (hotspots) serve many small ones, and EC requests arrive as
//! a bursty Poisson-like process. Compares OSCAR against Myopic-Adaptive
//! on identical sample paths.
//!
//! This is the workload the paper's introduction motivates: "distribute
//! computational tasks among several smaller QCs, interconnected through
//! a QDN".
//!
//! Run with: `cargo run --release --example dqc_workload`

use qdn::core::baselines::MyopicPolicy;
use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::policy::RoutingPolicy;
use qdn::net::dynamics::StaticDynamics;
use qdn::net::workload::HotspotWorkload;
use qdn::net::NetworkConfig;
use qdn::sim::engine::{run, SimConfig};
use qdn_graph::NodeId;
use rand::SeedableRng;

const HORIZON: u64 = 120;
const BUDGET: f64 = 3000.0;

fn simulate(policy: &mut dyn RoutingPolicy, seed: u64) -> qdn::sim::RunMetrics {
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
    let network = NetworkConfig::paper_default()
        .build(&mut env_rng)
        .expect("valid config");
    // Two "data-center" QCs attract 70% of the EC traffic.
    let mut workload = HotspotWorkload::new(3, vec![NodeId(0), NodeId(1)], 0.7);
    let mut dynamics = StaticDynamics;
    run(
        &network,
        &mut workload,
        &mut dynamics,
        policy,
        &SimConfig {
            horizon: HORIZON,
            realize_outcomes: true,
        },
        &mut env_rng,
        &mut policy_rng,
    )
}

fn main() {
    let oscar_cfg = OscarConfig {
        total_budget: BUDGET,
        horizon: HORIZON,
        ..OscarConfig::paper_default()
    };
    let mut oscar = OscarPolicy::new(oscar_cfg);
    let mut ma = MyopicPolicy::new(qdn::core::baselines::MyopicConfig {
        total_budget: BUDGET,
        horizon: HORIZON,
        ..qdn::core::baselines::MyopicConfig::paper_default(
            qdn::core::baselines::BudgetSplit::Adaptive,
        )
    });

    println!("DQC hotspot workload: 3 requests/slot, 70% touching 2 data-center QCs");
    println!("budget C = {BUDGET}, horizon T = {HORIZON}\n");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "policy", "avg success", "avg utility", "usage", "realized", "fairness"
    );
    for (name, metrics) in [
        ("OSCAR", simulate(&mut oscar, 42)),
        ("MA", simulate(&mut ma, 42)),
    ] {
        println!(
            "{:<8} {:>12.4} {:>12.4} {:>10} {:>10.4} {:>9.4}",
            name,
            metrics.avg_success(),
            metrics.avg_utility(),
            metrics.total_cost(),
            metrics.realized_success_rate().unwrap_or(0.0),
            metrics.jain_fairness(),
        );
    }
    println!("\nOSCAR spends the same budget where the hotspot contention bites,");
    println!("instead of rationing uniformly across slots like MA.");
}
