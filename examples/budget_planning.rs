//! Operator-facing budget planning: sweep the Lyapunov weight `V` to
//! choose an operating point on the utility / budget-adherence curve,
//! and compare the measured overshoot against Theorem 1's bound.
//!
//! Run with: `cargo run --release --example budget_planning`

use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::theory::{theorem1_violation_bound, BoundParams};
use qdn::net::dynamics::StaticDynamics;
use qdn::net::workload::UniformWorkload;
use qdn::net::NetworkConfig;
use qdn::sim::engine::{run, SimConfig};
use rand::SeedableRng;

const HORIZON: u64 = 100;
const BUDGET: f64 = 2500.0; // keeps C/T at the paper's 25 units/slot

fn main() {
    println!("V sweep: pick the utility/overshoot trade-off (C={BUDGET}, T={HORIZON})\n");
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>14} {:>14}",
        "V", "avg success", "usage", "overshoot", "per-slot viol", "thm1 bound"
    );

    for v in [500.0, 1000.0, 2500.0, 5000.0, 10000.0] {
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut policy_rng = rand::rngs::StdRng::seed_from_u64(22);
        let network = NetworkConfig::paper_default()
            .build(&mut env_rng)
            .expect("valid config");
        let cfg = OscarConfig {
            v,
            total_budget: BUDGET,
            horizon: HORIZON,
            ..OscarConfig::paper_default()
        };
        let mut policy = OscarPolicy::new(cfg);
        let mut workload = UniformWorkload::paper_default();
        let metrics = run(
            &network,
            &mut workload,
            &mut StaticDynamics,
            &mut policy,
            &SimConfig {
                horizon: HORIZON,
                realize_outcomes: false,
            },
            &mut env_rng,
            &mut policy_rng,
        );

        let usage = metrics.total_cost() as f64;
        let overshoot = usage - BUDGET;
        // Time-averaged violation (what Theorem 1 bounds).
        let per_slot_violation = overshoot / HORIZON as f64;
        let max_w = network
            .graph()
            .edge_ids()
            .map(|e| network.channel_capacity(e))
            .max()
            .unwrap_or(8) as f64;
        let bound = theorem1_violation_bound(&BoundParams {
            v,
            f: 5,
            l: 8,
            p_min: network.p_min(),
            budget: BUDGET,
            horizon: HORIZON,
            q0: 10.0,
            c_max: 5.0 * 8.0 * max_w,
        });
        println!(
            "{v:>7.0} {:>12.4} {usage:>10.0} {overshoot:>12.0} {per_slot_violation:>14.3} {bound:>14.1}",
            metrics.avg_success(),
        );
    }

    println!("\nReading the table: larger V buys success rate at the cost of");
    println!("overshooting C; the measured per-slot violation sits far inside");
    println!("Theorem 1's (loose, worst-case) allowance, as the paper predicts.");
}
