//! Attempt-level realization: run OSCAR's decisions through the
//! discrete-event simulator instead of the analytic success model.
//!
//! The slotted engine scores a decision with Eq. 2's probability; the DES
//! plays out every entanglement attempt (165 µs rounds), decoherence
//! deadline, and swap. This example shows the two views agreeing on the
//! success *rate* while the DES adds what the formula cannot say: when
//! connections become available and why the failed ones failed.
//!
//! Run with: `cargo run --release --example attempt_level`

use qdn::core::baselines::MyopicPolicy;
use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::policy::RoutingPolicy;
use qdn::des::slotted::{run_slotted, SlottedDesConfig};
use qdn::net::dynamics::StaticDynamics;
use qdn::net::workload::UniformWorkload;
use qdn::net::NetworkConfig;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("policy     | analytic | realized |   gap  | p50 lat | p99 lat | attempts");
    println!("-----------+----------+----------+--------+---------+---------+---------");
    let mut policies: Vec<Box<dyn RoutingPolicy>> = vec![
        Box::new(OscarPolicy::new(OscarConfig::paper_default())),
        Box::new(MyopicPolicy::fixed()),
        Box::new(MyopicPolicy::adaptive()),
    ];
    for policy in &mut policies {
        // Identical seeds -> identical request/topology sample paths.
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut policy_rng = rand::rngs::StdRng::seed_from_u64(22);
        let network = NetworkConfig::paper_default().build(&mut env_rng)?;
        let mut workload = UniformWorkload::paper_default();
        let mut dynamics = StaticDynamics;
        policy.reset();
        let metrics = run_slotted(
            &network,
            &mut workload,
            &mut dynamics,
            policy.as_mut(),
            &SlottedDesConfig::paper_default(),
            &mut env_rng,
            &mut policy_rng,
        );
        let latency = metrics.latency_summary().expect("some deliveries");
        println!(
            "{:<10} |   {:.4} |   {:.4} | {:.4} | {:.4}s | {:.4}s | {:>8}",
            metrics.policy(),
            metrics.expected_success_rate(),
            metrics.realized_success_rate(),
            metrics.model_gap(),
            latency.p50_secs,
            latency.p99_secs,
            metrics.total_attempts(),
        );
    }

    println!();
    println!("The paper's slot design in action: the 0.66 s attempt window sits");
    println!("inside the 1.46 s memory, so links never decohere and (with q = 1)");
    println!("swaps never fail — the only physical failure mode is a link missing");
    println!("its window, which is exactly what Eq. 1 prices in.");
    Ok(())
}
