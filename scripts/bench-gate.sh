#!/usr/bin/env bash
# Bench regression gate for the profile-evaluation engine.
#
# Re-runs the `profile_eval` criterion bench BENCH_RUNS times (default
# 3), reduces each gated row to the median of its per-run medians, and
# compares against the committed baseline snapshot
# `BENCH_profile_eval.json`. The median-of-N discipline is what PR 3 did
# by hand: this container's small-row noise is ±15%, so single-run
# medians made the 1.25× gate flap — medians-of-medians do not.
#
# The gated row families — the ones that guard the PR-1..PR-6 perf
# work:
#
#   * profile_eval_paper20/incremental_move/*       (memoized re-eval)
#   * profile_eval_paper20/incremental_cold_eval/*  (cold component solves)
#   * profile_eval_wax50/incremental_*              (50-node/25-pair scale)
#   * accel_vs_subgradient/*                        (dual-method cold solves)
#   * dynamic_vs_static_partition/*                 (route-keyed partition)
#   * session_vs_fresh/*                            (200-slot OSCAR e2e,
#                                                    cold vs session)
#   * churn_recovery/*                              (post-cut decide latency,
#                                                    region-scoped vs
#                                                    global-flush invalidation)
#   * node_churn_recovery/*                         (node cuts: PR 9 batch
#                                                    repair + invalidation)
#   * regional_outage_recovery/*                    (whole-corridor blackouts)
#   * serve_throughput/*                            (controller daemon over a
#                                                    Unix socket: 256-slot
#                                                    load-gen replay, wire
#                                                    protocol + shard fan-out)
#   * parallel_gibbs_restarts/*                     (PR 10: 4-chain restarts,
#                                                    serial vs pool width 4)
#   * parallel_trial_fanout/*                       (PR 10: sim trial fan-out,
#                                                    pool width 1 vs 4)
#   * csr_pass_ns_per_row/*                         (PR 10: SIMD-shaped CSR
#                                                    solver passes)
#
# A row FAILS when `fresh_median_of_medians > baseline_median *
# BENCH_GATE_FACTOR`. Getting *faster* never fails — refresh the
# baseline when it happens: run this script (it writes the combined
# median-of-N snapshot to $BENCH_GATE_JSON) and copy it over:
#
#     ./scripts/bench-gate.sh
#     cp target/bench-gate/BENCH_profile_eval.json BENCH_profile_eval.json
#
# Knobs (environment variables):
#   BENCH_RUNS           bench repetitions per comparison, default 3.
#                        Use 1 for a quick (noisier) single-run check.
#   BENCH_GATE_FACTOR    allowed slowdown ratio, default 1.25 (= +25%).
#                        Loosen on shared/noisy runners.
#   CRITERION_TARGET_MS  per-sample calibration target for the criterion
#                        shim (default 40 ms). The CI smoke job uses a
#                        small value (e.g. 4) for a fast, coarse run —
#                        note coarse runs are noisier, so pair reduced
#                        targets with a looser BENCH_GATE_FACTOR.
#   BENCH_GATE_JSON      where the combined fresh snapshot is written,
#                        default target/bench-gate/BENCH_profile_eval.json
#                        (per-run snapshots land next to it as *.runN).
#
# Invoked by `scripts/ci-gate.sh --bench` (see there); usable standalone:
#
#     ./scripts/bench-gate.sh
#     BENCH_GATE_FACTOR=1.5 CRITERION_TARGET_MS=4 ./scripts/bench-gate.sh
#
# `--compare-only` skips the bench runs and compares an existing snapshot
# at $BENCH_GATE_JSON against the baseline (the CI smoke job uses this
# to report, non-fatally, on the snapshot it just produced).
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${BENCH_RUNS:-3}"
FACTOR="${BENCH_GATE_FACTOR:-1.25}"
OUT="${BENCH_GATE_JSON:-target/bench-gate/BENCH_profile_eval.json}"
BASELINE="BENCH_profile_eval.json"
compare_only=0
[[ "${1:-}" == "--compare-only" ]] && compare_only=1

if [[ ! -f "$BASELINE" ]]; then
    echo "bench-gate: no baseline $BASELINE — nothing to compare against" >&2
    exit 1
fi

# "name median_ns" pairs, keeping only the LAST occurrence of each name
# (snapshots are append-mode).
extract() {
    sed -n 's/.*"bench":"\([^"]*\)".*"median_ns":\([0-9.]*\).*/\1 \2/p' "$1" \
        | awk '{last[$1] = $2} END {for (n in last) print n, last[n]}'
}

if [[ "$compare_only" -eq 1 ]]; then
    if [[ ! -f "$OUT" ]]; then
        echo "bench-gate: --compare-only but no snapshot at $OUT" >&2
        exit 1
    fi
    echo "==> bench-gate: comparing existing snapshot $OUT"
else
    mkdir -p "$(dirname "$OUT")"
    run_files=()
    for i in $(seq 1 "$RUNS"); do
        run_file="$OUT.run$i"
        rm -f "$run_file"
        echo "==> bench-gate: profile_eval run $i/$RUNS (CRITERION_TARGET_MS=${CRITERION_TARGET_MS:-40})"
        # Relative paths are fine: the criterion shim resolves them
        # against the workspace root (we cd'd there above), not the
        # bench binary's cwd.
        CRITERION_JSON="$run_file" cargo bench -p qdn_bench --bench profile_eval
        run_files+=("$run_file")
    done
    # Combine: per row, the median of the per-run medians (insertion
    # sort in portable awk; even counts average the two middles).
    rm -f "$OUT"
    for f in "${run_files[@]}"; do extract "$f"; done | awk -v runs="$RUNS" '
        {vals[$1] = vals[$1] " " $2; n[$1]++}
        END {
            for (name in vals) {
                m = split(vals[name], a, " ")
                for (i = 2; i <= m; i++) {
                    v = a[i] + 0
                    for (j = i - 1; j >= 1 && a[j] + 0 > v; j--) a[j + 1] = a[j]
                    a[j + 1] = v
                }
                if (m % 2 == 1) med = a[(m + 1) / 2]
                else med = (a[m / 2] + a[m / 2 + 1]) / 2
                # %.1f, not %s: numeric awk values stringify via CONVFMT
                # ("%.6g"), which turns medians above 1e6 into scientific
                # notation that the sed extractor would truncate at "e".
                printf "{\"bench\":\"%s\",\"median_ns\":%.1f,\"runs\":%d}\n", name, med, runs
            }
        }' | sort > "$OUT"
    echo "==> bench-gate: combined median-of-$RUNS snapshot at $OUT"
fi

fail=0
checked=0
while read -r name base_med; do
    case "$name" in
        profile_eval_paper20/incremental_move/* | \
            profile_eval_paper20/incremental_cold_eval/* | \
            profile_eval_wax50/incremental_move/* | \
            profile_eval_wax50/incremental_cold_eval/* | \
            dynamic_vs_static_partition/* | \
            session_vs_fresh/* | \
            churn_recovery/* | \
            node_churn_recovery/* | \
            regional_outage_recovery/* | \
            serve_throughput/* | \
            parallel_gibbs_restarts/* | \
            parallel_trial_fanout/* | \
            csr_pass_ns_per_row/* | \
            accel_vs_subgradient/*) ;;
        *) continue ;;
    esac
    fresh_med="$(extract "$OUT" | awk -v n="$name" '$1 == n {print $2}')"
    if [[ -z "$fresh_med" ]]; then
        echo "bench-gate: FAIL $name missing from fresh run"
        fail=1
        continue
    fi
    checked=$((checked + 1))
    verdict="$(awk -v f="$fresh_med" -v b="$base_med" -v t="$FACTOR" \
        'BEGIN {printf "%s %.3f", (f <= b * t) ? "OK" : "FAIL", f / b}')"
    status="${verdict%% *}"
    ratio="${verdict##* }"
    echo "bench-gate: ${status}  ${name}  ${ratio}x of baseline (fresh ${fresh_med} ns vs base ${base_med} ns, limit ${FACTOR}x)"
    [[ "$status" == "OK" ]] || fail=1
done < <(extract "$BASELINE")

if [[ "$checked" -eq 0 ]]; then
    echo "bench-gate: FAIL no gated rows found in $BASELINE"
    fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    echo "bench-gate: REGRESSION (>${FACTOR}x on a gated row)"
    exit 1
fi
echo "bench-gate: OK (${checked} rows within ${FACTOR}x)"
