#!/usr/bin/env bash
# Bench regression gate for the profile-evaluation engine.
#
# Re-runs the `profile_eval` criterion bench and compares per-row medians
# against the committed baseline snapshot `BENCH_profile_eval.json`.
# Three row families are gated — the ones that guard the PR-1/PR-2/PR-3
# perf work:
#
#   * profile_eval_paper20/incremental_move/*       (memoized re-eval)
#   * profile_eval_paper20/incremental_cold_eval/*  (cold component solves)
#   * accel_vs_subgradient/*                        (dual-method cold solves)
#
# A row FAILS when `fresh_median > baseline_median * BENCH_GATE_FACTOR`.
# Getting *faster* never fails — refresh the baseline when it happens
# (relative CRITERION_JSON paths resolve against the workspace root —
# the criterion shim reads CARGO_WORKSPACE_DIR from .cargo/config.toml):
#
#     rm BENCH_profile_eval.json
#     CRITERION_JSON=BENCH_profile_eval.json \
#         cargo bench -p qdn_bench --bench profile_eval
#
# Knobs (environment variables):
#   BENCH_GATE_FACTOR    allowed slowdown ratio, default 1.25 (= +25%).
#                        Loosen on shared/noisy runners.
#   CRITERION_TARGET_MS  per-sample calibration target for the criterion
#                        shim (default 40 ms). The CI smoke job uses a
#                        small value (e.g. 4) for a fast, coarse run —
#                        note coarse runs are noisier, so pair reduced
#                        targets with a looser BENCH_GATE_FACTOR.
#   BENCH_GATE_JSON      where the fresh snapshot is written, default
#                        target/bench-gate/BENCH_profile_eval.json.
#
# Invoked by `scripts/ci-gate.sh --bench` (see there); usable standalone:
#
#     ./scripts/bench-gate.sh
#     BENCH_GATE_FACTOR=1.5 CRITERION_TARGET_MS=4 ./scripts/bench-gate.sh
#
# `--compare-only` skips the bench run and compares an existing snapshot
# at $BENCH_GATE_JSON against the baseline (the CI smoke job uses this
# to report, non-fatally, on the snapshot it just produced).
set -euo pipefail
cd "$(dirname "$0")/.."

FACTOR="${BENCH_GATE_FACTOR:-1.25}"
OUT="${BENCH_GATE_JSON:-target/bench-gate/BENCH_profile_eval.json}"
BASELINE="BENCH_profile_eval.json"
compare_only=0
[[ "${1:-}" == "--compare-only" ]] && compare_only=1

if [[ ! -f "$BASELINE" ]]; then
    echo "bench-gate: no baseline $BASELINE — nothing to compare against" >&2
    exit 1
fi

if [[ "$compare_only" -eq 1 ]]; then
    if [[ ! -f "$OUT" ]]; then
        echo "bench-gate: --compare-only but no snapshot at $OUT" >&2
        exit 1
    fi
    echo "==> bench-gate: comparing existing snapshot $OUT"
else
    mkdir -p "$(dirname "$OUT")"
    rm -f "$OUT"
    echo "==> bench-gate: running profile_eval (CRITERION_TARGET_MS=${CRITERION_TARGET_MS:-40})"
    # Relative $OUT is fine: the criterion shim resolves it against the
    # workspace root (we cd'd there above), not the bench binary's cwd.
    CRITERION_JSON="$OUT" cargo bench -p qdn_bench --bench profile_eval
fi

# "name median_ns" pairs, keeping only the LAST occurrence of each name
# (snapshots are append-mode).
extract() {
    sed -n 's/.*"bench":"\([^"]*\)".*"median_ns":\([0-9.]*\).*/\1 \2/p' "$1" \
        | awk '{last[$1] = $2} END {for (n in last) print n, last[n]}'
}

fail=0
checked=0
while read -r name base_med; do
    case "$name" in
        profile_eval_paper20/incremental_move/* | \
            profile_eval_paper20/incremental_cold_eval/* | \
            accel_vs_subgradient/*) ;;
        *) continue ;;
    esac
    fresh_med="$(extract "$OUT" | awk -v n="$name" '$1 == n {print $2}')"
    if [[ -z "$fresh_med" ]]; then
        echo "bench-gate: FAIL $name missing from fresh run"
        fail=1
        continue
    fi
    checked=$((checked + 1))
    verdict="$(awk -v f="$fresh_med" -v b="$base_med" -v t="$FACTOR" \
        'BEGIN {printf "%s %.3f", (f <= b * t) ? "OK" : "FAIL", f / b}')"
    status="${verdict%% *}"
    ratio="${verdict##* }"
    echo "bench-gate: ${status}  ${name}  ${ratio}x of baseline (fresh ${fresh_med} ns vs base ${base_med} ns, limit ${FACTOR}x)"
    [[ "$status" == "OK" ]] || fail=1
done < <(extract "$BASELINE")

if [[ "$checked" -eq 0 ]]; then
    echo "bench-gate: FAIL no gated rows found in $BASELINE"
    fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    echo "bench-gate: REGRESSION (>${FACTOR}x on a gated row)"
    exit 1
fi
echo "bench-gate: OK (${checked} rows within ${FACTOR}x)"
