#!/usr/bin/env bash
# Lint + format + (optionally) build/test/bench gate for the QDN
# workspace.
#
# Run before pushing any change (especially perf refactors, which tend to
# accumulate lint debt):
#
#     ./scripts/ci-gate.sh                  # lint + fmt only (fast)
#     ./scripts/ci-gate.sh --full           # also build + tier-1 tests
#     ./scripts/ci-gate.sh --full --bench   # also the bench regression
#                                           # gate (scripts/bench-gate.sh)
#
# `--bench` re-runs the profile_eval bench and fails on >25% median
# regression against the committed BENCH_profile_eval.json baseline on
# the memoized-re-eval and cold-solve rows; tune with BENCH_GATE_FACTOR /
# CRITERION_TARGET_MS (documented in scripts/bench-gate.sh). It is not
# part of plain `--full` because wall-clock medians are only meaningful
# on a quiet machine — CI instead runs a reduced-iteration smoke of the
# same bench and archives the snapshot (see .github/workflows/ci.yml).
#
# The gate is intentionally strict: clippy warnings are errors across all
# targets (lib, tests, benches, examples, bins), formatting must match
# rustfmt exactly, and the workspace invariant checker (qdn-lint — see
# crates/lint/README.md) must report zero errors. The lint JSON report
# lands in target/lint-report.json for CI to archive.
set -euo pipefail
cd "$(dirname "$0")/.."

full=0
bench=0
for arg in "$@"; do
    case "$arg" in
        --full) full=1 ;;
        --bench) bench=1 ;;
        *)
            echo "ci-gate: unknown flag $arg (expected --full and/or --bench)" >&2
            exit 2
            ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

# Workspace-wide clippy, minus the vendored compat shims (they mirror
# upstream APIs verbatim and are pinned by their own behavior tests —
# same carve-out as lint.toml's skip list).
echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace \
    --exclude serde --exclude serde_derive --exclude serde_json \
    --exclude rand --exclude proptest --exclude criterion \
    --exclude threadpool --exclude wide \
    --all-targets -- -D warnings

echo "==> qdn-lint --report target/lint-report.json"
cargo run -q -p qdn_lint --bin qdn-lint -- --report target/lint-report.json

if [[ "$full" -eq 1 ]]; then
    echo "==> cargo build --release"
    cargo build --release
    echo "==> cargo test -q"
    cargo test -q

    # The parallel execution engine: tier-1 core tests again with the
    # shared pool on, including the bit-identity proptest
    # (parallel_matches_serial_bit_identical at widths 1/2/4).
    echo "==> cargo test -q -p qdn_core --features parallel"
    cargo test -q -p qdn_core --features parallel

    # Serve smoke: boot the controller daemon on a Unix socket, replay
    # 64 slots through the load generator, require a clean shutdown and
    # a nonzero decision count in the report.
    echo "==> serve smoke (qdn-served + qdn-serve-load, 64 slots, --kill-node 3)"
    smoke_sock="$(mktemp -u /tmp/qdn-ci-smoke-XXXXXX.sock)"
    ./target/release/qdn-served --socket "$smoke_sock" --seed 7 --shards 4 &
    served_pid=$!
    trap 'kill "$served_pid" 2>/dev/null || true; rm -f "$smoke_sock"' EXIT
    for _ in $(seq 1 50); do
        [[ -S "$smoke_sock" ]] && break
        sleep 0.1
    done
    [[ -S "$smoke_sock" ]] || { echo "ci-gate: daemon never bound $smoke_sock" >&2; exit 1; }
    # --kill-node injects an unplanned node outage over the middle
    # third of the run, exercising the advisory/degraded path end to
    # end on every full gate.
    smoke_report="$(./target/release/qdn-serve-load \
        --socket "$smoke_sock" --slots 64 --workload uniform \
        --kill-node 3 --shutdown)"
    wait "$served_pid"
    trap - EXIT
    rm -f "$smoke_sock"
    echo "$smoke_report"
    decided="$(echo "$smoke_report" \
        | sed -n 's/.*"served": \([0-9]*\).*/\1/p' | head -n1)"
    if [[ -z "$decided" || "$decided" -eq 0 ]]; then
        echo "ci-gate: serve smoke decided nothing" >&2
        exit 1
    fi
fi

if [[ "$bench" -eq 1 ]]; then
    ./scripts/bench-gate.sh
fi

echo "ci-gate: OK"
