#!/usr/bin/env bash
# Lint + format gate for the QDN workspace.
#
# Run before pushing any change (especially perf refactors, which tend to
# accumulate lint debt):
#
#     ./scripts/ci-gate.sh          # lint + fmt only (fast)
#     ./scripts/ci-gate.sh --full   # also build + run the tier-1 tests
#
# The gate is intentionally strict: clippy warnings are errors across all
# targets (lib, tests, benches, examples, bins), and formatting must
# match rustfmt exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

if [[ "${1:-}" == "--full" ]]; then
    echo "==> cargo build --release"
    cargo build --release
    echo "==> cargo test -q"
    cargo test -q
fi

echo "ci-gate: OK"
