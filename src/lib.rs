//! Facade crate for the QDN OSCAR reproduction.
//!
//! Re-exports every workspace crate under one roof. See the README for a
//! tour and `examples/` for runnable programs.

#![forbid(unsafe_code)]
pub use qdn_core as core;
pub use qdn_des as des;
pub use qdn_graph as graph;
pub use qdn_net as net;
pub use qdn_physics as physics;
pub use qdn_sim as sim;
pub use qdn_solve as solve;
