//! `qdn-cli` — run entanglement-routing experiments from JSON configs.
//!
//! ```console
//! $ qdn-cli template > experiment.json   # write a starter config
//! $ qdn-cli run experiment.json          # run it, print the summary
//! $ qdn-cli run experiment.json --output results.json
//! $ qdn-cli summarize results.json       # re-print a saved run
//! $ qdn-cli online --rate 2.05 --seconds 292   # event-driven online mode
//! ```
//!
//! The config format is the serde form of [`qdn_sim::experiment::Experiment`];
//! everything the library can express (policies, workloads, dynamics,
//! trial counts, fidelity targets) is reachable from the file. The
//! `online` subcommand runs the event-driven per-arrival router from
//! `qdn-des` instead of the slotted engine.

use std::process::ExitCode;
use std::time::Duration;

use qdn_des::arrivals::PoissonArrivals;
use qdn_des::online::{run_online, OnlineConfig, OnlineRouter};
use qdn_net::NetworkConfig;
use qdn_sim::experiment::{Experiment, ExperimentResults};
use qdn_sim::output::{fmt_f, to_table};
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("template") => template(),
        Some("run") => run(&args[1..]),
        Some("summarize") => summarize(&args[1..]),
        Some("online") => online(&args[1..]),
        _ => {
            eprintln!(
                "usage: qdn-cli <template | run CONFIG [--output FILE] | summarize RESULTS \
                 | online [--rate R] [--seconds S] [--budget C] [--v V] [--q0 Q] [--seed N]>"
            );
            ExitCode::FAILURE
        }
    }
}

/// Parses `--name value` as an `f64`, with a default.
fn flag_f64(args: &[String], name: &str, default: f64) -> Result<f64, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map_err(|e| format!("invalid {name}: {e}")),
    }
}

fn online(args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<(f64, f64, OnlineConfig, u64), String> {
        let rate = flag_f64(args, "--rate", PoissonArrivals::paper_rate())?;
        let seconds = flag_f64(args, "--seconds", 200.0 * 1.46)?;
        let mut config = OnlineConfig::paper_default();
        config.total_budget = flag_f64(args, "--budget", config.total_budget)?;
        config.v = flag_f64(args, "--v", config.v)?;
        config.q0 = flag_f64(args, "--q0", config.q0)?;
        config.budget_span = Duration::from_secs_f64(seconds);
        let seed = flag_f64(args, "--seed", 7.0)? as u64;
        Ok((rate, seconds, config, seed))
    })();
    let (rate, seconds, config, seed) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0571);
    let network = match NetworkConfig::paper_default().build(&mut env_rng) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: cannot build network: {e}");
            return ExitCode::FAILURE;
        }
    };
    let arrivals = match PoissonArrivals::new(rate, Duration::from_secs_f64(seconds)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "online run: {rate:.2} req/s for {seconds:.0}s, C = {}, V = {}, q0 = {}",
        config.total_budget, config.v, config.q0
    );
    let mut router = OnlineRouter::new(config);
    let mut arrivals = arrivals;
    let m = run_online(
        &network,
        &mut router,
        &mut arrivals,
        &mut env_rng,
        &mut policy_rng,
    );
    let latency = m.latency_summary();
    let rows = vec![vec![
        m.total_requests().to_string(),
        m.served().to_string(),
        fmt_f(m.realized_success_rate()),
        fmt_f(m.expected_success_rate()),
        m.total_cost().to_string(),
        fmt_f(m.throughput_per_sec()),
        latency.map_or("--".into(), |l| fmt_f(l.mean_secs)),
        latency.map_or("--".into(), |l| fmt_f(l.p99_secs)),
    ]];
    println!(
        "{}",
        to_table(
            &[
                "requests",
                "served",
                "success",
                "expected",
                "spend",
                "thruput/s",
                "mean_lat_s",
                "p99_lat_s"
            ],
            &rows
        )
    );
    ExitCode::SUCCESS
}

fn template() -> ExitCode {
    let experiment = Experiment::paper_default("my-experiment");
    match serde_json::to_string_pretty(&experiment) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: failed to serialize template: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> ExitCode {
    let Some(config_path) = args.first() else {
        eprintln!("usage: qdn-cli run CONFIG [--output FILE]");
        return ExitCode::FAILURE;
    };
    let output_path = args
        .iter()
        .position(|a| a == "--output")
        .and_then(|i| args.get(i + 1));

    let config = match std::fs::read_to_string(config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot read {config_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let experiment: Experiment = match serde_json::from_str(&config) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: invalid experiment config: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "running '{}': {} policies × {} trials × {} slots…",
        experiment.name,
        experiment.policies.len(),
        experiment.trials.trials,
        experiment.trials.sim.horizon
    );
    let results = experiment.run();
    print_summary(&results);

    if let Some(path) = output_path {
        match serde_json::to_string(&results) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("full results written to {path}");
            }
            Err(e) => {
                eprintln!("error: failed to serialize results: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn summarize(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: qdn-cli summarize RESULTS");
        return ExitCode::FAILURE;
    };
    let data = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match serde_json::from_str::<ExperimentResults>(&data) {
        Ok(results) => {
            print_summary(&results);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: invalid results file: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_summary(results: &ExperimentResults) {
    let rows: Vec<Vec<String>> = results
        .runs
        .iter()
        .map(|p| {
            vec![
                p.policy.clone(),
                fmt_f(p.mean_of(|r| r.avg_success())),
                fmt_f(p.mean_of(|r| r.avg_utility())),
                fmt_f(p.mean_of(|r| r.total_cost() as f64)),
                fmt_f(p.mean_of(|r| r.jain_fairness())),
                fmt_f(p.mean_of(|r| r.total_unserved() as f64)),
            ]
        })
        .collect();
    println!("experiment: {}", results.name);
    println!(
        "{}",
        to_table(
            &[
                "policy",
                "avg_success",
                "avg_utility",
                "mean_usage",
                "jain",
                "unserved"
            ],
            &rows
        )
    );
}
