//! Empirical validation of the paper's theoretical results on real
//! topologies: Prop. 2's Δ-optimality of Algorithm 2, Theorem 1's budget
//! violation bound, and the Gibbs-vs-exhaustive comparison behind
//! Algorithm 3.

use qdn::core::allocation::AllocationMethod;
use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::problem::PerSlotContext;
use qdn::core::profile_eval::EvalOptions;
use qdn::core::route_selection::{exhaustive, Candidates, GibbsConfig, RouteSelector};
use qdn::core::theory::{delta_bound, theorem1_violation_bound, BoundParams};
use qdn::net::dynamics::StaticDynamics;
use qdn::net::routes::{CandidateRoutes, RouteLimits};
use qdn::net::workload::{random_sd_pair, UniformWorkload};
use qdn::net::{CapacitySnapshot, NetworkConfig};
use qdn::sim::engine::{run, SimConfig};
use qdn_solve::brute::brute_force_best;
use rand::SeedableRng;

/// Prop. 2 on real per-slot instances: relax-and-round is within
/// Δ = V·F·L·ln(2 − p_min) of the exact integer optimum.
#[test]
fn prop2_delta_optimality_on_real_slots() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(88);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let mut routes = CandidateRoutes::new(RouteLimits::paper_default());
    let v = 500.0;

    for trial in 0..10 {
        // One or two pairs so brute force stays tractable.
        let pairs: Vec<_> = (0..1 + trial % 2)
            .map(|_| random_sd_pair(&mut rng, &net))
            .collect();
        let profile: Vec<_> = pairs
            .iter()
            .map(|&p| (p, routes.routes(&net, p)[0].clone()))
            .collect();
        let profile_refs: Vec<_> = profile.iter().map(|(p, r)| (*p, r)).collect();
        let ctx = PerSlotContext::oscar(&net, &snap, v, 5.0);
        let Ok(instance) = ctx.build_instance(&profile_refs) else {
            continue;
        };
        let rounded = AllocationMethod::relax_and_round()
            .allocate(&instance)
            .expect("feasible instance");
        let (_, opt) = brute_force_best(&instance, 6);
        let got = instance.objective_int(&rounded);
        let l = profile.iter().map(|(_, r)| r.hops()).max().unwrap_or(1);
        let delta = delta_bound(v, profile.len(), l, net.p_min());
        assert!(
            opt - got <= delta + 1e-6,
            "trial {trial}: gap {} exceeds Δ = {delta}",
            opt - got
        );
    }
}

/// Theorem 1 on a full OSCAR run: the time-averaged budget violation is
/// below the analytic bound.
#[test]
fn theorem1_violation_bound_holds_empirically() {
    let horizon = 50u64;
    let budget = 1250.0;
    for seed in [1u64, 2, 3] {
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed + 1000);
        let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
        let cfg = OscarConfig {
            total_budget: budget,
            horizon,
            ..OscarConfig::paper_default()
        };
        let mut policy = OscarPolicy::new(cfg.clone());
        let metrics = run(
            &net,
            &mut UniformWorkload::paper_default(),
            &mut StaticDynamics,
            &mut policy,
            &SimConfig {
                horizon,
                realize_outcomes: false,
            },
            &mut env_rng,
            &mut policy_rng,
        );
        let avg_violation = (metrics.total_cost() as f64 - budget) / horizon as f64;
        let max_w = net
            .graph()
            .edge_ids()
            .map(|e| net.channel_capacity(e))
            .max()
            .unwrap() as f64;
        let bound = theorem1_violation_bound(&BoundParams {
            v: cfg.v,
            f: 5,
            l: 8,
            p_min: net.p_min(),
            budget,
            horizon,
            q0: cfg.q0,
            c_max: 5.0 * 8.0 * max_w,
        });
        assert!(
            avg_violation <= bound,
            "seed {seed}: violation {avg_violation:.2} exceeds Theorem 1 bound {bound:.2}"
        );
    }
}

/// The virtual queue series is consistent with Eq. 7 replayed from the
/// recorded costs.
#[test]
fn virtual_queue_matches_recursion() {
    let horizon = 30u64;
    let budget = 750.0;
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(10);
    let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
    let cfg = OscarConfig {
        total_budget: budget,
        horizon,
        ..OscarConfig::paper_default()
    };
    let q0 = cfg.q0;
    let allowance = budget / horizon as f64;
    let mut policy = OscarPolicy::new(cfg);
    let metrics = run(
        &net,
        &mut UniformWorkload::paper_default(),
        &mut StaticDynamics,
        &mut policy,
        &SimConfig {
            horizon,
            realize_outcomes: false,
        },
        &mut env_rng,
        &mut policy_rng,
    );
    let mut q = q0;
    for slot in metrics.slots() {
        q = (q + slot.cost as f64 - allowance).max(0.0);
        let recorded = slot.virtual_queue.expect("OSCAR reports its queue");
        assert!(
            (q - recorded).abs() < 1e-9,
            "slot {}: replayed queue {q} vs recorded {recorded}",
            slot.t
        );
    }
}

/// Algorithm 3 (Gibbs) reaches the exhaustive optimum on small real
/// instances with annealing.
#[test]
fn gibbs_matches_exhaustive_on_real_topology() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let mut routes = CandidateRoutes::new(RouteLimits::paper_default());
    let ctx = PerSlotContext::oscar(&net, &snap, 1000.0, 10.0);
    let method = AllocationMethod::default();

    let mut wins = 0usize;
    const TRIALS: usize = 5;
    for _ in 0..TRIALS {
        let pairs: Vec<_> = (0..2).map(|_| random_sd_pair(&mut rng, &net)).collect();
        let owned: Vec<_> = pairs
            .iter()
            .map(|&p| (p, routes.routes(&net, p).to_vec()))
            .collect();
        let cands: Vec<Candidates> = owned
            .iter()
            .map(|(pair, routes)| Candidates {
                pair: *pair,
                routes,
            })
            .collect();
        let Some(exact) = exhaustive::search(&ctx, &cands, &method, EvalOptions::default()) else {
            continue;
        };
        let gibbs = RouteSelector::Gibbs(GibbsConfig {
            iterations: 100,
            gamma: 50.0,
            gamma_decay: 0.93,
            parallel_isolated: false,
            max_init_attempts: 8,
            restarts: 1,
            warm_iterations: 100,
            evaluator: EvalOptions::default(),
        })
        .select(&ctx, &cands, &method, &mut rng)
        .expect("feasible");
        // Within 1% of the exhaustive optimum counts as matching.
        let tol = 0.01 * (1.0 + exact.evaluation.objective.abs());
        if gibbs.evaluation.objective >= exact.evaluation.objective - tol {
            wins += 1;
        }
    }
    assert!(
        wins >= TRIALS - 1,
        "Gibbs matched exhaustive on only {wins}/{TRIALS} instances"
    );
}
