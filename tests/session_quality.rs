//! End-to-end quality contract of persistent selection sessions.
//!
//! The session path with warm seeding enabled trades the Gibbs chain's
//! full mixing budget for a warm start at the previous slot's selection
//! (`GibbsConfig::warm_iterations`) plus cross-slot λ seeds. That trade
//! is only admissible if it does not buy speed with solution quality:
//! this test runs the 200-slot OSCAR loop on the temporally-correlated
//! `PersistentWorkload` (the regime warm seeding targets) and on the
//! paper's uniform workload, and asserts the warm session's aggregate
//! utility and spend stay within a tight band of the cold
//! fresh-per-slot path. (Bit-identity with seeding *off* is enforced
//! separately by the `session_matches_fresh_per_slot` proptest.)

use qdn_core::allocation::AllocationMethod;
use qdn_core::oscar::{OscarConfig, OscarPolicy};
use qdn_core::profile_eval::EvalOptions;
use qdn_core::route_selection::{GibbsConfig, RouteSelector};
use qdn_net::dynamics::StaticDynamics;
use qdn_net::workload::{PersistentWorkload, UniformWorkload, Workload};
use qdn_net::NetworkConfig;
use qdn_sim::engine::{run, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn warm_config() -> OscarConfig {
    OscarConfig {
        selector: RouteSelector::Gibbs(GibbsConfig {
            evaluator: EvalOptions::warm_seeded(),
            ..GibbsConfig::paper_default()
        }),
        allocation: AllocationMethod::RelaxAndRound(qdn_solve::RelaxedOptions {
            warm_start: true,
            ..qdn_solve::RelaxedOptions::default()
        }),
        ..OscarConfig::paper_default()
    }
}

fn run_oscar(cfg: OscarConfig, workload: &mut dyn Workload, seed: u64) -> (f64, u64) {
    let mut env_rng = StdRng::seed_from_u64(seed);
    let mut policy_rng = StdRng::seed_from_u64(seed ^ 0x5e55_10f5);
    let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
    let mut policy = OscarPolicy::new(cfg);
    let mut dynamics = StaticDynamics;
    let metrics = run(
        &net,
        workload,
        &mut dynamics,
        &mut policy,
        &SimConfig {
            horizon: 200,
            realize_outcomes: false,
        },
        &mut env_rng,
        &mut policy_rng,
    );
    let utility: f64 = metrics.slots().iter().map(|s| s.utility).sum();
    let cost: u64 = metrics.slots().iter().map(|s| s.cost).sum();
    (utility, cost)
}

/// On the sticky workload — where warm seeding engages nearly every
/// slot and the chain budget drops to `warm_iterations` — the session
/// path must match the cold path's utility within 3% and must not
/// overspend. This is the quality side of the `session_vs_fresh`
/// bench's ≥2× speedup claim.
#[test]
fn warm_session_matches_cold_quality_on_persistent_workload() {
    for seed in [11u64, 47] {
        let mut wl_cold = PersistentWorkload::paper_scale();
        let (cold_utility, cold_cost) = run_oscar(OscarConfig::paper_default(), &mut wl_cold, seed);
        let mut wl_warm = PersistentWorkload::paper_scale();
        let (warm_utility, warm_cost) = run_oscar(warm_config(), &mut wl_warm, seed);

        // Utilities are sums of log-probabilities (negative; closer to
        // zero is better).
        let tol = 0.03 * cold_utility.abs();
        assert!(
            warm_utility >= cold_utility - tol,
            "seed {seed}: warm utility {warm_utility} vs cold {cold_utility} (tol {tol})"
        );
        assert!(
            (warm_cost as f64) <= 1.05 * cold_cost as f64,
            "seed {seed}: warm cost {warm_cost} vs cold {cold_cost}"
        );
    }
}

/// On the paper's uniform workload pairs rarely repeat across slots, so
/// the majority-coverage rule keeps warm seeding disengaged almost
/// everywhere and the session path stays a full-budget search: quality
/// must be indistinguishable from cold there too.
#[test]
fn warm_session_matches_cold_quality_on_uniform_workload() {
    let mut wl_cold = UniformWorkload::paper_default();
    let (cold_utility, cold_cost) = run_oscar(OscarConfig::paper_default(), &mut wl_cold, 23);
    let mut wl_warm = UniformWorkload::paper_default();
    let (warm_utility, warm_cost) = run_oscar(warm_config(), &mut wl_warm, 23);
    let tol = 0.03 * cold_utility.abs();
    assert!(
        warm_utility >= cold_utility - tol,
        "warm utility {warm_utility} vs cold {cold_utility} (tol {tol})"
    );
    assert!((warm_cost as f64) <= 1.05 * cold_cost as f64);
}
