//! Tests of the paper's §III-C multi-EC extension: "the extension to
//! multiple EC requests from a single SD pair is straightforward. In such
//! cases, we can treat each entanglement connection request as a separate
//! SD pair, each with a single EC request."
//!
//! The routing stack is positional, so repeated `SdPair` values in a
//! slot's request set are independent requests that may receive different
//! routes and allocations; these tests exercise that path end to end.

use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::policy::RoutingPolicy;
use qdn::core::types::SlotState;
use qdn::graph::NodeId;
use qdn::net::network::QdnNetworkBuilder;
use qdn::net::workload::{MultiEcWorkload, UniformWorkload, Workload, WorkloadConfig};
use qdn::net::{CapacitySnapshot, NetworkConfig, QdnNetwork, SdPair};
use qdn::physics::link::LinkModel;
use qdn::sim::audit::audit_decision;
use qdn::sim::engine::SimConfig;
use qdn::sim::experiment::Experiment;
use qdn::sim::trial::TrialConfig;
use rand::SeedableRng;

/// Diamond 0-1-3 / 0-2-3 with symmetric links.
fn diamond(qubits: u32, channels: u32) -> QdnNetwork {
    let mut b = QdnNetworkBuilder::new();
    let n: Vec<_> = (0..4).map(|_| b.add_node(qubits)).collect();
    let l = LinkModel::new(0.5).unwrap();
    b.add_edge(n[0], n[1], channels, l).unwrap();
    b.add_edge(n[1], n[3], channels, l).unwrap();
    b.add_edge(n[0], n[2], channels, l).unwrap();
    b.add_edge(n[2], n[3], channels, l).unwrap();
    b.build()
}

#[test]
fn duplicate_requests_each_get_an_assignment() {
    let net = diamond(20, 10);
    let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
    let requests = vec![pair; 3];
    let snap = CapacitySnapshot::full(&net);
    let slot = SlotState::new(0, requests, snap.clone());
    let mut policy = OscarPolicy::new(OscarConfig::paper_default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let d = policy.decide(&net, &slot, &mut rng);
    assert_eq!(d.assignments().len(), 3, "ample capacity serves all copies");
    assert!(d.assignments().iter().all(|a| a.pair == pair));
    assert!(audit_decision(&net, &snap, &d).is_empty());
}

#[test]
fn duplicates_split_capacity_across_disjoint_routes() {
    // Node 1 (and node 2) can hold only 2 qubits, so a single 2-hop route
    // through it carries at most 1 channel per edge. Two copies of the
    // 0->3 request can both be served only by splitting across the two
    // disjoint routes; a third copy must be dropped.
    let net = diamond(2, 10);
    let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let mut policy = OscarPolicy::new(OscarConfig::paper_default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);

    let slot = SlotState::new(0, vec![pair; 2], snap.clone());
    let d = policy.decide(&net, &slot, &mut rng);
    assert_eq!(
        d.assignments().len(),
        2,
        "two copies fit on disjoint routes"
    );
    let mid_nodes: Vec<NodeId> = d.assignments().iter().map(|a| a.route.nodes()[1]).collect();
    assert_ne!(
        mid_nodes[0], mid_nodes[1],
        "copies must take the two disjoint routes"
    );
    assert!(audit_decision(&net, &snap, &d).is_empty());

    policy.reset();
    let slot = SlotState::new(0, vec![pair; 3], snap.clone());
    let d = policy.decide(&net, &slot, &mut rng);
    assert_eq!(d.assignments().len(), 2, "third copy cannot fit");
    assert_eq!(d.unserved().len(), 1);
    assert!(audit_decision(&net, &snap, &d).is_empty());
}

#[test]
fn multi_ec_workload_through_simulator() {
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(18);
    let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
    let mut wl = MultiEcWorkload::new(UniformWorkload::new(1, 2), 3);
    assert_eq!(wl.max_pairs(), 6);
    let mut dynamics = qdn::net::dynamics::StaticDynamics;
    let mut policy = OscarPolicy::new(OscarConfig::paper_default());
    let metrics = qdn::sim::run(
        &net,
        &mut wl,
        &mut dynamics,
        &mut policy,
        &SimConfig {
            horizon: 30,
            realize_outcomes: true,
        },
        &mut env_rng,
        &mut policy_rng,
    );
    assert_eq!(metrics.slots().len(), 30);
    // The workload must actually produce multi-request slots.
    assert!(
        metrics.slots().iter().any(|s| s.requests > 2),
        "some slot should exceed the base workload's max of 2 pairs"
    );
    assert!(metrics.avg_success() > 0.0);
}

#[test]
fn multi_ec_experiment_config_round_trips() {
    let mut e = Experiment::paper_default("multi-ec");
    e.workload = WorkloadConfig::MultiEc {
        base: Box::new(WorkloadConfig::Uniform {
            min_pairs: 1,
            max_pairs: 2,
        }),
        max_requests_per_pair: 2,
    };
    e.trials = TrialConfig {
        trials: 2,
        base_seed: 9,
        threads: 0,
        sim: SimConfig {
            horizon: 8,
            realize_outcomes: true,
        },
    };
    let json = serde_json::to_string(&e).expect("serialize");
    let back: Experiment = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(e, back);
    let r1 = e.run();
    let r2 = back.run();
    assert_eq!(r1, r2, "round-tripped config reproduces identical results");
}

#[test]
fn oscar_dominates_mf_under_multi_ec_load() {
    let mut e = Experiment::paper_default("multi-ec-dominance");
    e.workload = WorkloadConfig::MultiEc {
        base: Box::new(WorkloadConfig::Uniform {
            min_pairs: 1,
            max_pairs: 3,
        }),
        max_requests_per_pair: 2,
    };
    e.trials = TrialConfig {
        trials: 2,
        base_seed: 21,
        threads: 0,
        sim: SimConfig {
            horizon: 40,
            realize_outcomes: true,
        },
    };
    let results = e.run();
    let oscar = results
        .policy("OSCAR")
        .unwrap()
        .mean_of(|r| r.avg_success());
    let mf = results.policy("MF").unwrap().mean_of(|r| r.avg_success());
    assert!(
        oscar > mf - 1e-9,
        "OSCAR {oscar:.4} should dominate MF {mf:.4} under multi-EC load"
    );
}
