//! Tests of the imperfect-swapping extension: the paper assumes swap
//! success ≈ 1 (§II-4) but notes the failure probability "can also be
//! considered as part of the overall failure probability of establishing
//! entanglement connections, just incorporating a product term in
//! Equation 2". These tests verify that product term flows through route
//! evaluation, route selection, and full OSCAR runs.

use qdn::core::allocation::AllocationMethod;
use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::policy::RoutingPolicy;
use qdn::core::problem::PerSlotContext;
use qdn::core::route_selection::{Candidates, RouteSelector};
use qdn::core::types::SlotState;
use qdn::graph::{NodeId, Path};
use qdn::net::network::QdnNetworkBuilder;
use qdn::net::workload::{UniformWorkload, Workload};
use qdn::net::{CapacitySnapshot, NetworkConfig, QdnNetwork, SdPair};
use qdn::physics::link::LinkModel;
use qdn::physics::swap::SwapModel;
use rand::SeedableRng;

/// Two routes 0→4: a 2-hop route over mediocre links (0-1-4, p = 0.6)
/// and a 3-hop route over excellent links (0-2-3-4, p = 0.9). Channel
/// capacity 1 everywhere pins the allocation, isolating the swap factor.
fn two_route_network(swap_success: f64) -> QdnNetwork {
    let mut b = QdnNetworkBuilder::new();
    let n: Vec<_> = (0..5).map(|_| b.add_node(4)).collect();
    let mediocre = LinkModel::new(0.6).unwrap();
    let excellent = LinkModel::new(0.9).unwrap();
    b.add_edge(n[0], n[1], 1, mediocre).unwrap();
    b.add_edge(n[1], n[4], 1, mediocre).unwrap();
    b.add_edge(n[0], n[2], 1, excellent).unwrap();
    b.add_edge(n[2], n[3], 1, excellent).unwrap();
    b.add_edge(n[3], n[4], 1, excellent).unwrap();
    b.set_swap(SwapModel::new(swap_success).unwrap());
    b.build()
}

fn routes(net: &QdnNetwork) -> (Path, Path) {
    let short = Path::from_nodes(net.graph(), vec![NodeId(0), NodeId(1), NodeId(4)]).unwrap();
    let long = Path::from_nodes(
        net.graph(),
        vec![NodeId(0), NodeId(2), NodeId(3), NodeId(4)],
    )
    .unwrap();
    (short, long)
}

#[test]
fn swap_factor_multiplies_route_success() {
    let net = two_route_network(0.5);
    let (short, long) = routes(&net);
    // 2 hops -> 1 swap, 3 hops -> 2 swaps.
    let p_short = net.route_success(&short, &[1, 1]);
    assert!((p_short - 0.5 * 0.36).abs() < 1e-12);
    let p_long = net.route_success(&long, &[1, 1, 1]);
    assert!((p_long - 0.25 * 0.729).abs() < 1e-12);
}

#[test]
fn lossy_swap_flips_the_preferred_route() {
    // Perfect swapping: the 3-hop excellent route wins (0.729 > 0.36).
    // At swap success 0.4: short = 0.4·0.36 = 0.144 beats
    // long = 0.16·0.729 ≈ 0.117 — route selection must flip.
    let pair = SdPair::new(NodeId(0), NodeId(4)).unwrap();
    let selector = RouteSelector::exhaustive(16);
    let mut chosen_hops = Vec::new();
    for swap_success in [1.0, 0.4] {
        let net = two_route_network(swap_success);
        let (short, long) = routes(&net);
        let all = vec![short, long];
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 1000.0, 0.0);
        let cands = vec![Candidates { pair, routes: &all }];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sel = selector
            .select(&ctx, &cands, &AllocationMethod::default(), &mut rng)
            .expect("feasible");
        chosen_hops.push(all[sel.indices[0]].hops());
    }
    assert_eq!(
        chosen_hops[0], 3,
        "perfect swap prefers the excellent links"
    );
    assert_eq!(chosen_hops[1], 2, "lossy swap prefers fewer swaps");
}

#[test]
fn oscar_runs_clean_under_lossy_swap() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let cfg = NetworkConfig {
        swap_success: 0.9,
        ..NetworkConfig::paper_default()
    };
    let net = cfg.build(&mut rng).unwrap();
    assert!((net.swap().success() - 0.9).abs() < 1e-12);

    let mut policy = OscarPolicy::new(OscarConfig::paper_default());
    let mut wl = UniformWorkload::paper_default();
    let mut served = 0usize;
    for t in 0..25 {
        let requests = wl.requests(t, &net, &mut rng);
        let snap = CapacitySnapshot::full(&net);
        let slot = SlotState::new(t, requests, snap.clone());
        let d = policy.decide(&net, &slot, &mut rng);
        served += d.assignments().len();
        assert!(qdn::sim::audit::audit_decision(&net, &snap, &d).is_empty());
        for a in d.assignments() {
            let p = a.success_probability(&net);
            // Swap loss caps success below the swap factor for the hops.
            let cap = 0.9f64.powi(a.route.hops() as i32 - 1);
            assert!(
                p <= cap + 1e-12,
                "slot {t}: success {p} exceeds the swap ceiling {cap}"
            );
        }
    }
    assert!(served > 0);
}

#[test]
fn success_decreases_monotonically_in_swap_loss() {
    // Same topology/requests; only the swap model varies.
    let pair = SdPair::new(NodeId(0), NodeId(4)).unwrap();
    let mut last = f64::INFINITY;
    for swap_success in [1.0, 0.95, 0.9, 0.8, 0.6] {
        let net = two_route_network(swap_success);
        let mut policy = OscarPolicy::new(OscarConfig::paper_default());
        let slot = SlotState::new(0, vec![pair], CapacitySnapshot::full(&net));
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let d = policy.decide(&net, &slot, &mut rng);
        assert_eq!(d.assignments().len(), 1);
        let p = d.assignments()[0].success_probability(&net);
        assert!(
            p <= last + 1e-12,
            "success should fall with swap loss: {p} after {last}"
        );
        last = p;
    }
}
