//! Cross-crate integration tests: full OSCAR/baseline runs through the
//! simulator with budget and dominance assertions.
//!
//! These run in debug mode under `cargo test`, so horizons are kept small;
//! the full paper-scale reproduction lives in `qdn-bench` (release).

use qdn::core::baselines::{BudgetSplit, MyopicConfig};
use qdn::core::oscar::OscarConfig;
use qdn::sim::engine::SimConfig;
use qdn::sim::experiment::{Experiment, PolicySpec};
use qdn::sim::trial::TrialConfig;

const HORIZON: u64 = 40;
const BUDGET: f64 = 1000.0; // keeps C/T = 25 at the short horizon

fn small_experiment() -> Experiment {
    let mut e = Experiment::paper_default("integration");
    e.trials = TrialConfig {
        trials: 2,
        base_seed: 314,
        threads: 0,
        sim: SimConfig {
            horizon: HORIZON,
            realize_outcomes: true,
        },
    };
    e.policies = vec![
        PolicySpec::Oscar(OscarConfig {
            total_budget: BUDGET,
            horizon: HORIZON,
            ..OscarConfig::paper_default()
        }),
        PolicySpec::Myopic(MyopicConfig {
            total_budget: BUDGET,
            horizon: HORIZON,
            ..MyopicConfig::paper_default(BudgetSplit::Fixed)
        }),
        PolicySpec::Myopic(MyopicConfig {
            total_budget: BUDGET,
            horizon: HORIZON,
            ..MyopicConfig::paper_default(BudgetSplit::Adaptive)
        }),
    ];
    e
}

#[test]
fn oscar_dominates_baselines_on_paired_environments() {
    let results = small_experiment().run();
    let oscar = results.policy("OSCAR").unwrap();
    let mf = results.policy("MF").unwrap();
    let ma = results.policy("MA").unwrap();

    let s_oscar = oscar.mean_of(|r| r.avg_success());
    let s_mf = mf.mean_of(|r| r.avg_success());
    let s_ma = ma.mean_of(|r| r.avg_success());
    assert!(
        s_oscar > s_mf - 1e-9,
        "OSCAR success {s_oscar:.4} should be >= MF {s_mf:.4}"
    );
    assert!(
        s_oscar > s_ma - 1e-9,
        "OSCAR success {s_oscar:.4} should be >= MA {s_ma:.4}"
    );

    let u_oscar = oscar.mean_of(|r| r.avg_utility());
    let u_mf = mf.mean_of(|r| r.avg_utility());
    assert!(
        u_oscar > u_mf,
        "OSCAR utility {u_oscar:.4} should exceed MF {u_mf:.4}"
    );
}

#[test]
fn myopic_policies_never_exceed_budget() {
    let results = small_experiment().run();
    for name in ["MF", "MA"] {
        let runs = results.policy(name).unwrap();
        for (i, r) in runs.trials.iter().enumerate() {
            assert!(
                r.total_cost() as f64 <= BUDGET + 1e-9,
                "{name} trial {i} spent {} > {BUDGET}",
                r.total_cost()
            );
        }
    }
}

#[test]
fn oscar_overshoot_is_bounded() {
    // OSCAR may exceed C for finite T (Theorem 1), but not wildly: at the
    // paper-like operating point the overshoot stays within ~30% here.
    let results = small_experiment().run();
    let oscar = results.policy("OSCAR").unwrap();
    for (i, r) in oscar.trials.iter().enumerate() {
        let usage = r.total_cost() as f64;
        assert!(
            usage <= BUDGET * 1.3,
            "trial {i}: OSCAR usage {usage} too far above budget {BUDGET}"
        );
        assert!(
            usage >= BUDGET * 0.5,
            "trial {i}: OSCAR usage {usage} suspiciously low vs budget {BUDGET}"
        );
    }
}

#[test]
fn mf_leaves_budget_unused() {
    // MF wastes allowance in light slots: strictly below the budget.
    let results = small_experiment().run();
    let mf = results.policy("MF").unwrap();
    let usage = mf.mean_of(|r| r.total_cost() as f64);
    assert!(
        usage < BUDGET,
        "MF mean usage {usage} should under-spend {BUDGET}"
    );
}

#[test]
fn every_served_request_has_positive_success() {
    let results = small_experiment().run();
    for runs in &results.runs {
        for r in &runs.trials {
            for slot in r.slots() {
                let positive = slot.success_probs.iter().filter(|&&p| p > 0.0).count();
                assert_eq!(
                    positive, slot.served,
                    "served pairs must have positive success probability"
                );
            }
        }
    }
}

#[test]
fn experiment_config_round_trips_through_json() {
    let e = small_experiment();
    let json = serde_json::to_string_pretty(&e).expect("serialize");
    let back: Experiment = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(e, back);

    // And a round-tripped experiment reproduces identical results.
    let r1 = e.run();
    let r2 = back.run();
    assert_eq!(r1, r2);
}
