//! Failure-injection tests: hostile environments the paper's evaluation
//! never produces (disconnected topologies, resource blackouts, starved
//! capacities) must degrade the policies gracefully — requests go
//! unserved, constraints stay intact, nothing panics, and the virtual
//! queue keeps obeying Eq. 7.

use qdn::core::baselines::MyopicPolicy;
use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::policy::RoutingPolicy;
use qdn::core::types::SlotState;
use qdn::graph::NodeId;
use qdn::net::dynamics::TraceDynamics;
use qdn::net::network::QdnNetworkBuilder;
use qdn::net::workload::TraceWorkload;
use qdn::net::{CapacitySnapshot, QdnNetwork, SdPair};
use qdn::physics::link::LinkModel;
use qdn::sim::audit::audit_decision;
use qdn::sim::engine::SimConfig;
use rand::SeedableRng;

/// Two line components: 0-1-2 and 3-4-5, no edge between them.
fn split_network() -> QdnNetwork {
    let mut b = QdnNetworkBuilder::new();
    let n: Vec<_> = (0..6).map(|_| b.add_node(8)).collect();
    let l = LinkModel::new(0.6).unwrap();
    b.add_edge(n[0], n[1], 4, l).unwrap();
    b.add_edge(n[1], n[2], 4, l).unwrap();
    b.add_edge(n[3], n[4], 4, l).unwrap();
    b.add_edge(n[4], n[5], 4, l).unwrap();
    b.build()
}

#[test]
fn disconnected_pair_is_unserved_not_fatal() {
    let net = split_network();
    let cross = SdPair::new(NodeId(0), NodeId(5)).unwrap();
    let local = SdPair::new(NodeId(0), NodeId(2)).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let slot = SlotState::new(0, vec![cross, local], snap.clone());
    let mut policy = OscarPolicy::new(OscarConfig::paper_default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let d = policy.decide(&net, &slot, &mut rng);
    assert_eq!(d.assignments().len(), 1, "the connected pair is served");
    assert_eq!(d.assignments()[0].pair, local);
    assert_eq!(d.unserved(), &[cross]);
    assert!(audit_decision(&net, &snap, &d).is_empty());
}

#[test]
fn disconnected_pairs_through_the_engine() {
    // A full run where every other slot asks for an impossible pair.
    let net = split_network();
    let cross = SdPair::new(NodeId(2), NodeId(3)).unwrap();
    let local = SdPair::new(NodeId(3), NodeId(5)).unwrap();
    let trace: Vec<Vec<SdPair>> = (0..12)
        .map(|t| {
            if t % 2 == 0 {
                vec![cross]
            } else {
                vec![local, cross]
            }
        })
        .collect();
    let mut wl = TraceWorkload::new(trace);
    let mut dynamics = qdn::net::dynamics::StaticDynamics;
    let mut policy = OscarPolicy::new(OscarConfig {
        total_budget: 120.0,
        horizon: 12,
        ..OscarConfig::paper_default()
    });
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(3);
    let metrics = qdn::sim::run(
        &net,
        &mut wl,
        &mut dynamics,
        &mut policy,
        &SimConfig {
            horizon: 12,
            realize_outcomes: true,
        },
        &mut env_rng,
        &mut policy_rng,
    );
    // Even slots: nothing served; odd slots: exactly one pair served.
    for s in metrics.slots() {
        if s.t % 2 == 0 {
            assert_eq!(s.served, 0, "slot {}: impossible pair served", s.t);
            assert_eq!(s.cost, 0);
        } else {
            assert_eq!(s.served, 1);
            assert!(s.cost >= 2);
        }
    }
    // The impossible pair appears once in every one of the 12 slots.
    assert_eq!(metrics.total_unserved(), 12);
}

/// Trace dynamics alternating between full capacity and total blackout.
#[test]
fn blackout_slots_serve_nothing_and_queue_drains() {
    let net = split_network();
    let full = CapacitySnapshot::full(&net);
    let dark =
        CapacitySnapshot::clamped(&net, vec![0; net.node_count()], vec![0; net.edge_count()]);
    // 3 dark slots, then light.
    let mut dynamics = TraceDynamics::new(vec![dark.clone(), dark.clone(), dark, full]);
    let pair = SdPair::new(NodeId(0), NodeId(2)).unwrap();
    let mut wl = TraceWorkload::new(vec![vec![pair]; 6]);
    let budget = 60.0;
    let horizon = 6;
    let mut policy = OscarPolicy::new(OscarConfig {
        total_budget: budget,
        horizon,
        q0: 30.0,
        ..OscarConfig::paper_default()
    });
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(6);
    let metrics = qdn::sim::run(
        &net,
        &mut wl,
        &mut dynamics,
        &mut policy,
        &SimConfig {
            horizon,
            realize_outcomes: false,
        },
        &mut env_rng,
        &mut policy_rng,
    );
    let slots = metrics.slots();
    for s in &slots[..3] {
        assert_eq!(s.served, 0, "blackout slot {} served something", s.t);
        assert_eq!(s.cost, 0);
    }
    for s in &slots[3..] {
        assert_eq!(s.served, 1, "slot {} should serve after recovery", s.t);
    }
    // During the blackout the queue drains by C/T = 10 per slot from q0=30.
    let queues: Vec<f64> = slots.iter().map(|s| s.virtual_queue.unwrap()).collect();
    assert!((queues[0] - 20.0).abs() < 1e-9);
    assert!((queues[1] - 10.0).abs() < 1e-9);
    assert!((queues[2] - 0.0).abs() < 1e-9);
}

#[test]
fn starved_line_drops_excess_duplicates() {
    // Line 0-1-2 with channel capacity 1: a single route instance per
    // slot. Five duplicate requests -> one served, four unserved.
    let mut b = QdnNetworkBuilder::new();
    let n: Vec<_> = (0..3).map(|_| b.add_node(2)).collect();
    let l = LinkModel::new(0.7).unwrap();
    b.add_edge(n[0], n[1], 1, l).unwrap();
    b.add_edge(n[1], n[2], 1, l).unwrap();
    let net = b.build();
    let pair = SdPair::new(NodeId(0), NodeId(2)).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let slot = SlotState::new(0, vec![pair; 5], snap.clone());
    let mut policy = OscarPolicy::new(OscarConfig::paper_default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let d = policy.decide(&net, &slot, &mut rng);
    assert_eq!(d.assignments().len(), 1);
    assert_eq!(d.unserved().len(), 4);
    assert!(audit_decision(&net, &snap, &d).is_empty());
}

#[test]
fn one_hop_pair_has_no_swap_penalty() {
    // Adjacent nodes: the route is a single edge, zero swaps, so success
    // equals the link model exactly even under terrible swapping.
    let mut b = QdnNetworkBuilder::new();
    let u = b.add_node(4);
    let v = b.add_node(4);
    b.add_edge(u, v, 2, LinkModel::new(0.6).unwrap()).unwrap();
    b.set_swap(qdn::physics::swap::SwapModel::new(0.1).unwrap());
    let net = b.build();
    let pair = SdPair::new(u, v).unwrap();
    let slot = SlotState::new(0, vec![pair], CapacitySnapshot::full(&net));
    let mut policy = OscarPolicy::new(OscarConfig::paper_default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let d = policy.decide(&net, &slot, &mut rng);
    assert_eq!(d.assignments().len(), 1);
    let a = &d.assignments()[0];
    assert_eq!(a.route.hops(), 1);
    let expected = match a.allocation[0] {
        1 => 0.6,
        2 => 1.0 - 0.4f64 * 0.4,
        n => panic!("unexpected allocation {n}"),
    };
    assert!((a.success_probability(&net) - expected).abs() < 1e-12);
}

#[test]
fn myopic_with_exhausted_budget_serves_nothing() {
    // MA's allowance can hit zero once the whole budget is spent; further
    // slots must serve nothing rather than overdraw.
    let net = split_network();
    let pair = SdPair::new(NodeId(0), NodeId(2)).unwrap();
    let mut policy = MyopicPolicy::new(qdn::core::baselines::MyopicConfig {
        total_budget: 4.0, // exactly two slots of a 2-hop minimal route
        horizon: 2,        // allowance 2/slot; slots beyond T keep allowance 0
        ..qdn::core::baselines::MyopicConfig::paper_default(
            qdn::core::baselines::BudgetSplit::Adaptive,
        )
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let mut served = 0;
    let mut unserved = 0;
    for t in 0..6 {
        let slot = SlotState::new(t, vec![pair], CapacitySnapshot::full(&net));
        let d = policy.decide(&net, &slot, &mut rng);
        served += d.assignments().len();
        unserved += d.unserved().len();
    }
    assert!(served >= 2, "the funded slots are served");
    assert!(unserved >= 2, "post-budget slots must starve, not overdraw");
    assert!(
        policy.diagnostics().budget_spent.unwrap() <= 4,
        "budget must never be overdrawn"
    );
}

#[test]
fn session_survives_mid_trial_link_cut_and_repair() {
    // The session decision path (route cache + selector session carried
    // across slots) driven straight through a mid-trial cut of the 0–1
    // link and its repair two slots later. The disconnected pair goes
    // unserved, every decision audits clean, and the churn diagnostics
    // show the untouched component's memos surviving the cut.
    let net = split_network();
    let left = SdPair::new(NodeId(0), NodeId(2)).unwrap();
    let right = SdPair::new(NodeId(3), NodeId(5)).unwrap();
    let full = CapacitySnapshot::full(&net);
    // Edge 0 (the 0–1 link) down: zero channels for the slot.
    let cut = CapacitySnapshot::clamped(&net, vec![8; 6], vec![0, 4, 4, 4]);
    // q0 = 0 and per-slot spending far below C/T keep the queue (and so
    // the evaluator's shared price) pinned at zero: memo retention across
    // slots is exactly the region-scoped story, not price luck.
    let mut policy = OscarPolicy::new(OscarConfig {
        total_budget: 240.0,
        horizon: 6,
        q0: 0.0,
        ..OscarConfig::paper_default()
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    for t in 0..6u64 {
        let snap = if (2..4).contains(&t) { &cut } else { &full };
        let slot = SlotState::new(t, vec![left, right], snap.clone());
        let d = policy.decide(&net, &slot, &mut rng);
        assert!(
            audit_decision(&net, snap, &d).is_empty(),
            "slot {t} violated capacities"
        );
        let churn = policy
            .diagnostics()
            .churn
            .expect("session policies report churn diagnostics");
        if (2..4).contains(&t) {
            assert_eq!(d.assignments().len(), 1, "slot {t}");
            assert_eq!(d.unserved(), &[left], "slot {t}: cut pair must starve");
        } else {
            assert_eq!(d.assignments().len(), 2, "slot {t}");
        }
        match t {
            2 => {
                assert_eq!(churn.failed_edges, 1);
                assert_eq!(churn.affected_pairs, 1);
                assert!(
                    churn.memo_entries_retained >= 1,
                    "the intact component's memos must survive the cut: {churn:?}"
                );
            }
            4 => {
                assert_eq!(churn.restored_edges, 1);
                assert_eq!(churn.affected_pairs, 1);
                // The repaired component comes back with its exact
                // pre-cut routes and capacities, so even its parked
                // region revalidates — nothing is flushed.
                assert_eq!(churn.regions, 2, "{churn:?}");
                assert_eq!(churn.regions_flushed, 0, "{churn:?}");
            }
            _ => {
                assert_eq!(churn.failed_edges, 0);
                assert_eq!(churn.restored_edges, 0);
            }
        }
    }
}

#[test]
fn churn_dynamics_end_to_end_records_recovery() {
    // Random link failures/repairs from `ChurnDynamics` through the full
    // engine: nothing panics, every slot carries churn diagnostics, and
    // the recovery extraction yields a record per observed cut.
    let net = split_network();
    let mut wl = qdn::net::workload::PinnedWorkload::new(vec![
        SdPair::new(NodeId(0), NodeId(2)).unwrap(),
        SdPair::new(NodeId(3), NodeId(5)).unwrap(),
    ]);
    let mut dynamics = qdn::net::dynamics::ChurnDynamics::new(
        0.6,
        2.0,
        17,
        Box::new(qdn::net::dynamics::StaticDynamics),
    );
    let mut policy = OscarPolicy::new(OscarConfig {
        total_budget: 600.0,
        horizon: 30,
        ..OscarConfig::paper_default()
    });
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(40);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(41);
    let metrics = qdn::sim::run(
        &net,
        &mut wl,
        &mut dynamics,
        &mut policy,
        &SimConfig {
            horizon: 30,
            realize_outcomes: true,
        },
        &mut env_rng,
        &mut policy_rng,
    );
    assert!(metrics.slots().iter().all(|s| s.churn.is_some()));
    let cuts = metrics
        .slots()
        .iter()
        .filter(|s| s.churn.unwrap().failed_edges > 0)
        .count();
    assert!(cuts >= 1, "this seed's trace must contain failures");
    let recs = metrics.recovery_records(4, 0.05);
    assert!(!recs.is_empty());
    for r in &recs {
        assert!(r.failed_edges >= 1);
        assert!(r.pre_cut_utility <= 0.0);
        if let Some(d) = r.recovery_slots {
            assert!(r.cut_slot + d < 30);
        }
    }
}

#[test]
fn empty_request_slots_cost_nothing() {
    let net = split_network();
    let mut wl = TraceWorkload::new(vec![vec![]; 5]);
    let mut dynamics = qdn::net::dynamics::StaticDynamics;
    let mut policy = OscarPolicy::new(OscarConfig {
        total_budget: 50.0,
        horizon: 5,
        q0: 7.0,
        ..OscarConfig::paper_default()
    });
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(30);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(31);
    let metrics = qdn::sim::run(
        &net,
        &mut wl,
        &mut dynamics,
        &mut policy,
        &SimConfig {
            horizon: 5,
            realize_outcomes: true,
        },
        &mut env_rng,
        &mut policy_rng,
    );
    assert!(metrics.slots().iter().all(|s| s.cost == 0 && s.served == 0));
    // Queue decayed from 7 by C/T = 10: already zero after the 1st slot.
    assert_eq!(metrics.slots().last().unwrap().virtual_queue, Some(0.0));
}
