//! Acceptance test for the accelerated dual method (ROADMAP item h): on
//! paper-scale instances — the joint coupling component 10 random SD
//! pairs form on the 20-node Waxman topology — cold
//! `DualMethod::Accelerated` solves must certify the strict
//! `gap_tolerance = 1e-4` *without* exhausting the iteration budget,
//! where the subgradient iteration historically burned all 600
//! iterations and returned `converged: false`.

use qdn::core::problem::PerSlotContext;
use qdn::core::route_selection::{profile_of, Candidates};
use qdn::graph::Path;
use qdn::net::routes::{CandidateRoutes, RouteLimits};
use qdn::net::workload::random_sd_pair;
use qdn::net::{CapacitySnapshot, NetworkConfig, QdnNetwork, SdPair};
use qdn::solve::relaxed::{solve_relaxed, DualMethod, RelaxedOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_candidates(net: &QdnNetwork, n_pairs: usize, seed: u64) -> Vec<(SdPair, Vec<Path>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
    let mut out: Vec<(SdPair, Vec<Path>)> = Vec::new();
    while out.len() < n_pairs {
        let pair = random_sd_pair(&mut rng, net);
        if out.iter().any(|(p, _)| *p == pair) {
            continue;
        }
        let routes = cr.routes(net, pair).to_vec();
        if routes.is_empty() {
            continue;
        }
        out.push((pair, routes));
    }
    out
}

#[test]
fn accelerated_certifies_strict_gap_at_paper_scale() {
    // Same construction as the `dual_solver_paper20` bench rows.
    let mut rng = StdRng::seed_from_u64(3);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
    let owned = paper_candidates(&net, 10, 11);
    let cands: Vec<Candidates> = owned
        .iter()
        .map(|(pair, routes)| Candidates {
            pair: *pair,
            routes,
        })
        .collect();

    for profile_idx in 0..2usize {
        let indices: Vec<usize> = cands
            .iter()
            .map(|c| profile_idx.min(c.routes.len() - 1))
            .collect();
        let inst = ctx.build_instance(&profile_of(&cands, &indices)).unwrap();

        let accel = solve_relaxed(
            &inst,
            &RelaxedOptions {
                method: DualMethod::Accelerated,
                ..RelaxedOptions::default()
            },
        )
        .unwrap();
        assert!(
            accel.converged,
            "profile {profile_idx}: relative gap {} after {} iterations",
            accel.relative_gap(),
            accel.iterations
        );
        assert!(
            accel.iterations < 600,
            "profile {profile_idx}: exhausted the budget ({} iterations)",
            accel.iterations
        );
        assert!(accel.relative_gap() <= 1e-4 + 1e-12);
        assert!(inst.is_feasible_real(&accel.x, 1e-6));

        // The two methods agree within their certified gaps.
        let sub = solve_relaxed(
            &inst,
            &RelaxedOptions {
                method: DualMethod::Subgradient,
                ..RelaxedOptions::default()
            },
        )
        .unwrap();
        let tol = accel.gap().abs() + sub.gap().abs() + 1e-9 * (1.0 + sub.primal_value.abs());
        assert!(
            (accel.primal_value - sub.primal_value).abs() <= tol,
            "profile {profile_idx}: accelerated {} vs subgradient {} (tol {tol})",
            accel.primal_value,
            sub.primal_value
        );
        // And the accelerated bound is at least as tight.
        assert!(
            accel.relative_gap() <= sub.relative_gap() + 1e-12,
            "profile {profile_idx}: accelerated gap {} looser than subgradient {}",
            accel.relative_gap(),
            sub.relative_gap()
        );
    }
}
