//! Cross-crate physical-layer validation: the analytic success model the
//! optimizer uses agrees with attempt-level Monte-Carlo simulation on
//! real topologies, and the simulator's realized outcomes track the
//! analytic probabilities.

use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::net::dynamics::{MarkovOccupancy, UniformOccupancy};
use qdn::net::routes::{CandidateRoutes, RouteLimits};
use qdn::net::workload::{random_sd_pair, UniformWorkload};
use qdn::net::NetworkConfig;
use qdn::physics::monte_carlo::{estimate_probability, simulate_route};
use qdn::sim::engine::{run, SimConfig};
use rand::SeedableRng;

/// The analytic `P(route, N)` (Eq. 2) matches the Monte-Carlo estimate of
/// the underlying attempt process on network-derived routes.
#[test]
fn analytic_route_success_matches_monte_carlo() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(123);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let mut routes = CandidateRoutes::new(RouteLimits::paper_default());

    for trial in 0..4 {
        let pair = random_sd_pair(&mut rng, &net);
        let route = routes.routes(&net, pair)[0].clone();
        let alloc: Vec<u32> = (0..route.hops()).map(|i| 1 + (i as u32 % 3)).collect();
        let analytic = net.route_success(&route, &alloc);

        let links: Vec<_> = route
            .edges()
            .iter()
            .zip(&alloc)
            .map(|(&e, &n)| (*net.link(e), n))
            .collect();
        let estimated = estimate_probability(&mut rng, 20_000, |r| {
            simulate_route(r, links.iter().copied(), net.swap())
        });
        assert!(
            (analytic - estimated).abs() < 0.02,
            "trial {trial}: analytic {analytic:.4} vs Monte Carlo {estimated:.4}"
        );
    }
}

/// The engine's realized success rate converges to the mean analytic
/// probability over a long run.
#[test]
fn realized_rate_tracks_analytic_probabilities() {
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(31);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(32);
    let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
    let mut policy = OscarPolicy::new(OscarConfig {
        total_budget: 2500.0,
        horizon: 100,
        ..OscarConfig::paper_default()
    });
    let metrics = run(
        &net,
        &mut UniformWorkload::paper_default(),
        &mut MarkovOccupancy::new(0.1, 0.5, 0.6),
        &mut policy,
        &SimConfig {
            horizon: 100,
            realize_outcomes: true,
        },
        &mut env_rng,
        &mut policy_rng,
    );
    let analytic = metrics.avg_success();
    let realized = metrics.realized_success_rate().unwrap();
    assert!(
        (analytic - realized).abs() < 0.06,
        "analytic mean {analytic:.4} vs realized {realized:.4}"
    );
}

/// Policies stay feasible under genuinely time-varying capacities (the
/// audit inside the engine debug-asserts this; here we assert outcomes
/// recorded under dynamics are sane).
#[test]
fn time_varying_capacities_respected() {
    for seed in [5u64, 6] {
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed + 50);
        let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
        let mut policy = OscarPolicy::new(OscarConfig {
            total_budget: 1000.0,
            horizon: 40,
            ..OscarConfig::paper_default()
        });
        let metrics = run(
            &net,
            &mut UniformWorkload::paper_default(),
            &mut UniformOccupancy::new(0.7),
            &mut policy,
            &SimConfig {
                horizon: 40,
                realize_outcomes: true,
            },
            &mut env_rng,
            &mut policy_rng,
        );
        assert_eq!(metrics.slots().len(), 40);
        // Under heavy occupancy some requests may go unserved, but the
        // run must remain productive overall.
        assert!(metrics.avg_success() > 0.3, "seed {seed}");
    }
}
