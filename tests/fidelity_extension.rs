//! Tests of the paper's §III-C fidelity-constraint extension: "we can
//! easily integrate a constraint into P1, which calculates the fidelity
//! of the chosen route and ensures it [meets] the fidelity target in each
//! time slot."

use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::policy::RoutingPolicy;
use qdn::core::types::SlotState;
use qdn::net::workload::{UniformWorkload, Workload};
use qdn::net::{CapacitySnapshot, NetworkConfig};
use qdn::physics::fidelity::Fidelity;
use rand::SeedableRng;

fn lossy_network(seed: u64) -> qdn::net::QdnNetwork {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cfg = NetworkConfig::paper_default();
    cfg.elementary_fidelity = 0.95; // Werner fidelity per elementary link
    cfg.build(&mut rng).unwrap()
}

#[test]
fn network_exposes_route_fidelity() {
    let net = lossy_network(1);
    for e in net.graph().edge_ids() {
        assert_eq!(net.link_fidelity(e), Fidelity::new(0.95).unwrap());
    }
    // A multi-hop route composes Werner parameters: strictly below 0.95.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut routes =
        qdn::net::routes::CandidateRoutes::new(qdn::net::routes::RouteLimits::paper_default());
    let pair = qdn::net::workload::random_sd_pair(&mut rng, &net);
    for route in routes.routes(&net, pair) {
        let f = net.route_fidelity(route);
        if route.hops() > 1 {
            assert!(f.value() < 0.95);
        } else {
            assert!((f.value() - 0.95).abs() < 1e-12);
        }
    }
}

#[test]
fn fidelity_target_filters_long_routes() {
    let net = lossy_network(2);
    // With F_link = 0.95, a 2-hop route has F ≈ 0.9075+..., 3-hop ≈ 0.866.
    // A 0.9 target therefore allows at most 2 hops.
    let two_hop_fidelity = {
        let w = Fidelity::new(0.95).unwrap().werner_parameter();
        (3.0 * w * w + 1.0) / 4.0
    };
    assert!(two_hop_fidelity > 0.9);

    let cfg = OscarConfig::paper_default().with_fidelity_target(0.9);
    let mut policy = OscarPolicy::new(cfg);
    let mut wl = UniformWorkload::paper_default();
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(8);

    let mut served_any = false;
    for t in 0..15 {
        let requests = wl.requests(t, &net, &mut env_rng);
        let slot = SlotState::new(t, requests, CapacitySnapshot::full(&net));
        let d = policy.decide(&net, &slot, &mut policy_rng);
        for a in d.assignments() {
            served_any = true;
            assert!(
                net.route_fidelity(&a.route).value() >= 0.9,
                "slot {t}: route {} violates the fidelity target",
                a.route
            );
            assert!(a.route.hops() <= 2, "0.9 target admits at most 2 hops");
        }
    }
    assert!(served_any, "some short-route pairs must still be servable");
}

#[test]
fn impossible_target_serves_nothing() {
    let net = lossy_network(3);
    let cfg = OscarConfig::paper_default().with_fidelity_target(0.99);
    let mut policy = OscarPolicy::new(cfg);
    let mut wl = UniformWorkload::paper_default();
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(12);
    let requests = wl.requests(0, &net, &mut env_rng);
    let n = requests.len();
    let slot = SlotState::new(0, requests, CapacitySnapshot::full(&net));
    let d = policy.decide(&net, &slot, &mut policy_rng);
    assert!(d.assignments().is_empty());
    assert_eq!(d.unserved().len(), n);
}

#[test]
fn purification_planner_qualifies_rejected_routes() {
    // A route that misses the fidelity target can still be qualified by
    // nested purification; the planner prices what that would cost in
    // elementary pairs — the hook for a purification-aware extension of
    // the §III-C fidelity constraint.
    use qdn::physics::fidelity::plan_purification;

    let net = lossy_network(6);
    let target = 0.93;
    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
    let mut routes =
        qdn::net::routes::CandidateRoutes::new(qdn::net::routes::RouteLimits::paper_default());
    let mut qualified_any = false;
    for _ in 0..20 {
        let pair = qdn::net::workload::random_sd_pair(&mut rng, &net);
        for route in routes.routes(&net, pair) {
            let f = net.route_fidelity(route);
            if f.value() >= target {
                continue; // already admissible; no purification needed
            }
            let Some(plan) = plan_purification(f, target, 16) else {
                // Separable or fixed-point-limited routes stay rejected.
                assert!(
                    !f.is_entangled() || route.hops() >= 4,
                    "short entangled routes should be purifiable (F = {f})"
                );
                continue;
            };
            qualified_any = true;
            assert!(plan.rounds >= 1);
            assert!(plan.final_fidelity.value() >= target);
            // Purification is never free: each level doubles pair usage.
            assert!(plan.expected_pairs >= 2.0f64.powi(plan.rounds as i32));
            // Longer routes start lower, so they need at least as many
            // rounds as the best (1-hop) case.
            if route.hops() >= 3 {
                assert!(plan.rounds >= 2, "3+ hops at F0.95/link sit far below 0.93");
            }
        }
    }
    assert!(qualified_any, "some multi-hop route must need purification");
}

#[test]
fn no_target_keeps_default_behaviour() {
    // With perfect links (paper default), any target up to 1.0 is vacuous.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let constrained = OscarConfig::paper_default().with_fidelity_target(1.0);
    let mut p1 = OscarPolicy::new(constrained);
    let mut p2 = OscarPolicy::new(OscarConfig::paper_default());
    let mut wl = UniformWorkload::paper_default();
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(13);
    let requests = wl.requests(0, &net, &mut env_rng);
    let slot = SlotState::new(0, requests, CapacitySnapshot::full(&net));
    let mut rng_a = rand::rngs::StdRng::seed_from_u64(99);
    let mut rng_b = rand::rngs::StdRng::seed_from_u64(99);
    let d1 = p1.decide(&net, &slot, &mut rng_a);
    let d2 = p2.decide(&net, &slot, &mut rng_b);
    assert_eq!(d1, d2);
}
