//! Cross-crate validation of the attempt-level discrete-event simulator
//! against the paper's analytic model.
//!
//! The paper scores entanglement routing with Eq. 1–2:
//! `P_e(n) = 1 − (1 − p̃)^{n·A}` per link, the product across a route.
//! `qdn-des` simulates the process those formulas abstract — per-channel
//! attempt races, decoherence, swap chains. These tests close the loop:
//! the realized frequencies of the DES must converge to the analytic
//! rates, for single links, for multi-hop routes, and for full OSCAR
//! runs; and the online (per-arrival) mode must reach the same service
//! quality as the slotted mode under equal load.

use std::time::Duration;

use qdn::core::baselines::MyopicPolicy;
use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::des::arrivals::PoissonArrivals;
use qdn::des::attempt_probability;
use qdn::des::exec::{execute_route, EdgeTask, ExecutionConfig};
use qdn::des::online::{run_online, OnlineConfig, OnlineRouter};
use qdn::des::slotted::{run_slotted, SlottedDesConfig};
use qdn::des::time::SimTime;
use qdn::graph::EdgeId;
use qdn::net::dynamics::StaticDynamics;
use qdn::net::workload::UniformWorkload;
use qdn::net::NetworkConfig;
use qdn::physics::link::LinkModel;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// DES link success frequency converges to Eq. 1 at the paper's physical
/// parameters (p̃ = 2×10⁻⁴, A = 4000).
#[test]
fn des_link_success_matches_eq1() {
    let mut r = rng(101);
    let cfg = ExecutionConfig::paper_default();
    for channels in [1u32, 2, 4] {
        let task = vec![EdgeTask::new(EdgeId(0), 2e-4, channels).unwrap()];
        let analytic = LinkModel::paper_default().success(channels);
        let trials = 4_000;
        let hits = (0..trials)
            .filter(|_| execute_route(SimTime::ZERO, &task, &cfg, &mut r).success)
            .count();
        let rate = hits as f64 / trials as f64;
        // 4σ ≈ 4·sqrt(0.25/4000) ≈ 0.032.
        assert!(
            (rate - analytic).abs() < 0.035,
            "n={channels}: DES {rate:.4} vs Eq.1 {analytic:.4}"
        );
    }
}

/// DES route success converges to Eq. 2 (the product of link successes)
/// on a 3-hop route with mixed allocations.
#[test]
fn des_route_success_matches_eq2() {
    let mut r = rng(102);
    let cfg = ExecutionConfig::paper_default();
    let allocations = [2u32, 1, 3];
    let tasks: Vec<EdgeTask> = allocations
        .iter()
        .enumerate()
        .map(|(i, &n)| EdgeTask::new(EdgeId(i as u32), 2e-4, n).unwrap())
        .collect();
    let link = LinkModel::paper_default();
    let analytic: f64 = allocations.iter().map(|&n| link.success(n)).product();
    let trials = 4_000;
    let hits = (0..trials)
        .filter(|_| execute_route(SimTime::ZERO, &tasks, &cfg, &mut r).success)
        .count();
    let rate = hits as f64 / trials as f64;
    assert!(
        (rate - analytic).abs() < 0.035,
        "DES {rate:.4} vs Eq.2 {analytic:.4}"
    );
}

/// `attempt_probability` and the network's stored per-slot probabilities
/// compose consistently: reconstructing p̃ from a built network's links
/// and pushing it back through the attempt window reproduces the stored
/// success probability on every edge.
#[test]
fn attempt_probability_is_consistent_across_the_network() {
    let mut r = rng(103);
    let net = NetworkConfig::paper_default().build(&mut r).unwrap();
    for e in net.graph().edge_ids() {
        let p_slot = net.link(e).channel_success();
        let p_attempt = attempt_probability(p_slot, 4000);
        let back = -(4000f64 * (-p_attempt).ln_1p()).exp_m1();
        assert!((back - p_slot).abs() < 1e-9, "edge {e}: {back} vs {p_slot}");
    }
}

/// A full OSCAR run realized at the attempt level: the realized success
/// rate must track the analytic expectation within Monte-Carlo noise,
/// and the latency distribution must fit inside the attempt window.
#[test]
fn oscar_attempt_level_run_matches_analytic_rates() {
    let mut env_rng = rng(104);
    let mut policy_rng = rng(105);
    let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
    let mut wl = UniformWorkload::paper_default();
    let mut dynamics = StaticDynamics;
    let mut policy = OscarPolicy::new(OscarConfig::paper_default());
    let config = SlottedDesConfig {
        horizon: 200,
        ..SlottedDesConfig::paper_default()
    };
    let m = run_slotted(
        &net,
        &mut wl,
        &mut dynamics,
        &mut policy,
        &config,
        &mut env_rng,
        &mut policy_rng,
    );
    assert!(m.total_requests() > 400);
    // ~600 requests: 4σ ≈ 4·sqrt(0.25/600) ≈ 0.082.
    assert!(
        m.model_gap() < 0.09,
        "realized {:.4} vs analytic {:.4}",
        m.realized_success_rate(),
        m.expected_success_rate()
    );
    // OSCAR at the paper's defaults delivers most connections.
    assert!(m.realized_success_rate() > 0.7);
    let latency = m.latency_summary().expect("some deliveries");
    assert!(latency.max_secs <= 0.66 + 1e-9, "within the attempt window");
    assert!(latency.mean_secs > 0.0);
    // Perfect swapping + window < memory: only window expiry can fail.
    let (_, decohered, swap_failed) = m.failure_histogram();
    assert_eq!((decohered, swap_failed), (0, 0));
}

/// The slotted DES and the analytic engine agree policy-by-policy: OSCAR
/// keeps its lead over MF when decisions are realized physically.
#[test]
fn policy_ranking_survives_physical_realization() {
    let run = |policy: &mut dyn qdn::core::RoutingPolicy, seed: u64| {
        let mut env_rng = rng(seed);
        let mut policy_rng = rng(seed ^ 0xf00d);
        let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
        let mut wl = UniformWorkload::paper_default();
        let mut dynamics = StaticDynamics;
        let config = SlottedDesConfig {
            horizon: 200,
            ..SlottedDesConfig::paper_default()
        };
        run_slotted(
            &net,
            &mut wl,
            &mut dynamics,
            policy,
            &config,
            &mut env_rng,
            &mut policy_rng,
        )
    };
    let mut oscar = OscarPolicy::new(OscarConfig::paper_default());
    let mut mf = MyopicPolicy::fixed();
    let m_oscar = run(&mut oscar, 42);
    let m_mf = run(&mut mf, 42);
    assert!(
        m_oscar.realized_success_rate() > m_mf.realized_success_rate(),
        "OSCAR {:.4} must beat MF {:.4} at the attempt level",
        m_oscar.realized_success_rate(),
        m_mf.realized_success_rate()
    );
}

/// Online (per-arrival) routing at the paper's load reaches a service
/// quality comparable to the slotted mode, and its budget pacing works:
/// the spend stays within a modest factor of the paced allowance.
#[test]
fn online_mode_matches_slotted_service_quality() {
    let mut env_rng = rng(106);
    let mut policy_rng = rng(107);
    let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
    let mut router = OnlineRouter::new(OnlineConfig::paper_default());
    let span = Duration::from_secs_f64(200.0 * 1.46);
    let mut arrivals = PoissonArrivals::new(PoissonArrivals::paper_rate(), span).unwrap();
    let m = run_online(
        &net,
        &mut router,
        &mut arrivals,
        &mut env_rng,
        &mut policy_rng,
    );

    assert!(m.total_requests() > 400, "got {}", m.total_requests());
    // The slotted OSCAR reference sits at ≈ 0.9 expected success; the
    // online router with the same V, budget, and load must land in the
    // same regime.
    assert!(
        m.expected_success_rate() > 0.75,
        "online expected success {:.4}",
        m.expected_success_rate()
    );
    assert!(
        (m.realized_success_rate() - m.expected_success_rate()).abs() < 0.09,
        "online realized {:.4} vs analytic {:.4}",
        m.realized_success_rate(),
        m.expected_success_rate()
    );
    // Budget adherence: within 25% of C = 5000 (the queue is a soft cap).
    let spend = m.total_cost() as f64;
    assert!(
        spend < 5000.0 * 1.25,
        "online spend {spend} strays too far from C = 5000"
    );
    // Latency: every delivery within one attempt window of its arrival.
    let latency = m.latency_summary().expect("some deliveries");
    assert!(latency.max_secs <= 0.66 + 1e-9);
}

/// Imperfect swapping degrades realized success exactly like the paper's
/// "product term in Equation 2": DES rate ≈ analytic × q^(hops−1).
#[test]
fn imperfect_swapping_matches_product_term() {
    let mut r = rng(108);
    let q = 0.9f64;
    let cfg =
        ExecutionConfig::paper_default().with_swap(qdn::physics::swap::SwapModel::new(q).unwrap());
    let allocations = [2u32, 2, 2];
    let tasks: Vec<EdgeTask> = allocations
        .iter()
        .enumerate()
        .map(|(i, &n)| EdgeTask::new(EdgeId(i as u32), 2e-4, n).unwrap())
        .collect();
    let link = LinkModel::paper_default();
    let links_analytic: f64 = allocations.iter().map(|&n| link.success(n)).product();
    let analytic = links_analytic * q.powi(2); // 3 hops -> 2 swaps
    let trials = 4_000;
    let hits = (0..trials)
        .filter(|_| execute_route(SimTime::ZERO, &tasks, &cfg, &mut r).success)
        .count();
    let rate = hits as f64 / trials as f64;
    assert!(
        (rate - analytic).abs() < 0.035,
        "DES {rate:.4} vs product-term model {analytic:.4}"
    );
}
