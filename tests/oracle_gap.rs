//! Empirical Theorem-2 story: OSCAR's time-averaged utility sits within
//! the analytic optimality gap of an offline hindsight baseline that
//! knows the whole request trace in advance.
//!
//! The oracle is only an *approximation* of the true offline optimum
//! `OPT` (it plans budgets proportionally to demand, then acts myopically
//! per slot), so it can only make the test easier to fail — if OSCAR
//! stays within the Theorem 2 gap of the oracle, the theorem's claim is
//! consistent with measurement.

use qdn::core::baselines::OraclePolicy;
use qdn::core::oscar::{OscarConfig, OscarPolicy};
use qdn::core::route_selection::RouteSelector;
use qdn::core::theory::{theorem2_optimality_gap, BoundParams};
use qdn::net::dynamics::StaticDynamics;
use qdn::net::routes::RouteLimits;
use qdn::net::workload::{TraceWorkload, UniformWorkload, Workload};
use qdn::net::NetworkConfig;
use qdn::sim::engine::{run, SimConfig};
use rand::SeedableRng;

const HORIZON: u64 = 60;
const BUDGET: f64 = 1500.0;

#[test]
fn oscar_within_theorem2_gap_of_hindsight_oracle() {
    for seed in [3u64, 17] {
        // Pre-sample the environment so the oracle can see the future.
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
        let mut sampler = UniformWorkload::paper_default();
        let mut trace_rng = rand::rngs::StdRng::seed_from_u64(seed + 7000);
        let trace: Vec<_> = (0..HORIZON)
            .map(|t| sampler.requests(t, &net, &mut trace_rng))
            .collect();

        let sim = SimConfig {
            horizon: HORIZON,
            realize_outcomes: false,
        };

        // Oracle run.
        let mut oracle = OraclePolicy::plan(
            &net,
            &trace,
            BUDGET,
            RouteLimits::paper_default(),
            RouteSelector::default(),
        );
        let mut env1 = rand::rngs::StdRng::seed_from_u64(seed + 1);
        let mut pol1 = rand::rngs::StdRng::seed_from_u64(seed + 2);
        let mut wl1 = TraceWorkload::new(trace.clone());
        let m_oracle = run(
            &net,
            &mut wl1,
            &mut StaticDynamics,
            &mut oracle,
            &sim,
            &mut env1,
            &mut pol1,
        );

        // OSCAR run on the identical trace, no future knowledge.
        let cfg = OscarConfig {
            total_budget: BUDGET,
            horizon: HORIZON,
            ..OscarConfig::paper_default()
        };
        let v = cfg.v;
        let q0 = cfg.q0;
        let mut oscar = OscarPolicy::new(cfg);
        let mut env2 = rand::rngs::StdRng::seed_from_u64(seed + 1);
        let mut pol2 = rand::rngs::StdRng::seed_from_u64(seed + 2);
        let mut wl2 = TraceWorkload::new(trace.clone());
        let m_oscar = run(
            &net,
            &mut wl2,
            &mut StaticDynamics,
            &mut oscar,
            &sim,
            &mut env2,
            &mut pol2,
        );

        let max_w = net
            .graph()
            .edge_ids()
            .map(|e| net.channel_capacity(e))
            .max()
            .unwrap() as f64;
        let gap = theorem2_optimality_gap(&BoundParams {
            v,
            f: 5,
            l: 8,
            p_min: net.p_min(),
            budget: BUDGET,
            horizon: HORIZON,
            q0,
            c_max: 5.0 * 8.0 * max_w,
        });
        let u_oscar = m_oscar.avg_utility();
        let u_oracle = m_oracle.avg_utility();
        assert!(
            u_oscar >= u_oracle - gap,
            "seed {seed}: OSCAR {u_oscar:.3} below oracle {u_oracle:.3} minus gap {gap:.3}"
        );
    }
}

#[test]
fn oracle_with_full_knowledge_is_competitive_with_mf() {
    // Sanity: the hindsight plan should not lose to the blind fixed split
    // on the same trace.
    let seed = 11u64;
    let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
    let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
    let mut sampler = UniformWorkload::paper_default();
    let mut trace_rng = rand::rngs::StdRng::seed_from_u64(seed + 7000);
    let trace: Vec<_> = (0..HORIZON)
        .map(|t| sampler.requests(t, &net, &mut trace_rng))
        .collect();
    let sim = SimConfig {
        horizon: HORIZON,
        realize_outcomes: false,
    };

    let mut oracle = OraclePolicy::plan(
        &net,
        &trace,
        BUDGET,
        RouteLimits::paper_default(),
        RouteSelector::default(),
    );
    let mut env1 = rand::rngs::StdRng::seed_from_u64(seed + 1);
    let mut pol1 = rand::rngs::StdRng::seed_from_u64(seed + 2);
    let m_oracle = run(
        &net,
        &mut TraceWorkload::new(trace.clone()),
        &mut StaticDynamics,
        &mut oracle,
        &sim,
        &mut env1,
        &mut pol1,
    );

    let mut mf = qdn::core::baselines::MyopicPolicy::new(qdn::core::baselines::MyopicConfig {
        total_budget: BUDGET,
        horizon: HORIZON,
        ..qdn::core::baselines::MyopicConfig::paper_default(
            qdn::core::baselines::BudgetSplit::Fixed,
        )
    });
    let mut env2 = rand::rngs::StdRng::seed_from_u64(seed + 1);
    let mut pol2 = rand::rngs::StdRng::seed_from_u64(seed + 2);
    let m_mf = run(
        &net,
        &mut TraceWorkload::new(trace),
        &mut StaticDynamics,
        &mut mf,
        &sim,
        &mut env2,
        &mut pol2,
    );

    assert!(
        m_oracle.avg_utility() >= m_mf.avg_utility() - 0.05,
        "oracle {:.3} should not lose to MF {:.3}",
        m_oracle.avg_utility(),
        m_mf.avg_utility()
    );
}
