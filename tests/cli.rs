//! End-to-end tests of the `qdn-cli` binary: template generation, config
//! execution, result persistence, and the summarize round trip — driven
//! through the real executable.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qdn-cli"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdn-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = cli().output().expect("spawn qdn-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn template_emits_valid_experiment_json() {
    let out = cli().arg("template").output().expect("spawn qdn-cli");
    assert!(out.status.success());
    let experiment: qdn::sim::experiment::Experiment =
        serde_json::from_str(&stdout_of(&out)).expect("template must parse back");
    assert_eq!(experiment.policies.len(), 3);
    assert_eq!(experiment.trials.sim.horizon, 200);
}

#[test]
fn run_missing_config_fails_cleanly() {
    let out = cli()
        .args(["run", "/nonexistent/experiment.json"])
        .output()
        .expect("spawn qdn-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn run_invalid_json_fails_cleanly() {
    let dir = tmp_dir("badjson");
    let path = dir.join("bad.json");
    std::fs::write(&path, "{ not json").unwrap();
    let out = cli()
        .args(["run", path.to_str().unwrap()])
        .output()
        .expect("spawn qdn-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid experiment config"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn template_run_summarize_round_trip() {
    let dir = tmp_dir("roundtrip");
    let config_path = dir.join("experiment.json");
    let results_path = dir.join("results.json");

    // Template, shrunk to a fast configuration.
    let out = cli().arg("template").output().expect("spawn qdn-cli");
    assert!(out.status.success());
    let mut experiment: qdn::sim::experiment::Experiment =
        serde_json::from_str(&stdout_of(&out)).unwrap();
    experiment.trials.trials = 1;
    experiment.trials.sim.horizon = 5;
    // Pro-rate the budget so C/T stays at the paper's operating point.
    for spec in &mut experiment.policies {
        match spec {
            qdn::sim::experiment::PolicySpec::Oscar(cfg) => {
                cfg.horizon = 5;
                cfg.total_budget = 125.0;
            }
            qdn::sim::experiment::PolicySpec::Myopic(cfg) => {
                cfg.horizon = 5;
                cfg.total_budget = 125.0;
            }
            qdn::sim::experiment::PolicySpec::RandomMin { .. } => {}
            qdn::sim::experiment::PolicySpec::ThroughputGreedy { .. } => {}
        }
    }
    std::fs::write(&config_path, serde_json::to_string(&experiment).unwrap()).unwrap();

    // Run with persisted results.
    let out = cli()
        .args([
            "run",
            config_path.to_str().unwrap(),
            "--output",
            results_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn qdn-cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run_summary = stdout_of(&out);
    assert!(run_summary.contains("OSCAR"));
    assert!(run_summary.contains("MF"));
    assert!(run_summary.contains("MA"));

    // The persisted results parse and summarize identically.
    let saved: qdn::sim::experiment::ExperimentResults =
        serde_json::from_str(&std::fs::read_to_string(&results_path).unwrap()).unwrap();
    assert_eq!(saved.runs.len(), 3);
    let out = cli()
        .args(["summarize", results_path.to_str().unwrap()])
        .output()
        .expect("spawn qdn-cli");
    assert!(out.status.success());
    assert_eq!(stdout_of(&out), run_summary);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn online_subcommand_runs_and_reports() {
    let out = cli()
        .args(["online", "--rate", "2", "--seconds", "30", "--seed", "3"])
        .output()
        .expect("spawn qdn-cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = stdout_of(&out);
    assert!(stdout.contains("requests"));
    assert!(stdout.contains("thruput/s"));
    // ~60 arrivals expected; the table row must carry a real count.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("online run"));
}

#[test]
fn online_subcommand_rejects_bad_rate() {
    let out = cli()
        .args(["online", "--rate", "-1"])
        .output()
        .expect("spawn qdn-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("rate"));
}

#[test]
fn online_subcommand_rejects_unparseable_flag() {
    let out = cli()
        .args(["online", "--rate", "fast"])
        .output()
        .expect("spawn qdn-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid --rate"));
}

#[test]
fn summarize_rejects_non_results_file() {
    let dir = tmp_dir("notresults");
    let path = dir.join("weird.json");
    std::fs::write(&path, "[1, 2, 3]").unwrap();
    let out = cli()
        .args(["summarize", path.to_str().unwrap()])
        .output()
        .expect("spawn qdn-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid results file"));
    std::fs::remove_dir_all(&dir).ok();
}
